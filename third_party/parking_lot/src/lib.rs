//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with
//! parking_lot's poison-free API, backed by the standard library locks.
//! (A panicked holder's poison flag is discarded, which is exactly
//! parking_lot's behaviour.)

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex(..)")
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}
