//! No-op `Serialize`/`Deserialize` derives for the vendored `serde`
//! facade (see `third_party/serde`). The build environment has no
//! network access to crates.io, and nothing in this workspace actually
//! serializes — the derives exist so types can declare the capability —
//! so the derives expand to nothing and the traits are blanket-satisfied.
//! Field-level `#[serde(...)]` attributes (e.g. `#[serde(skip)]`) are
//! accepted and ignored, exactly as upstream accepts them.

use proc_macro::TokenStream;

/// Derives the (empty) `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (empty) `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
