//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Collection sizes: either an exact length or a half-open range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.end > self.start, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and size `R`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Generates vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

/// Generates ordered sets whose elements come from `element`; the
/// target size is drawn from `size` (duplicates are redrawn a bounded
/// number of times, so a narrow element domain may yield fewer items).
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    BTreeSetStrategy { element, size }
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut tries = 0usize;
        while out.len() < target && tries < target * 10 + 100 {
            out.insert(self.element.generate(rng));
            tries += 1;
        }
        out
    }
}
