//! Value-generation strategies: the composable core of the framework.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let width = (self.end as i128) - (self.start as i128);
                    assert!(width > 0, "empty range strategy");
                    let offset = rng.below(width as u64) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
