//! The case runner: configuration and the deterministic RNG cases are
//! drawn from.

/// How many cases each property test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to draw and run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// xorshift64* generator; deterministic and platform-independent so any
/// failing case reproduces bit-for-bit.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform value in `0..bound` (`bound` must be positive).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range in strategy");
        self.next_u64() % bound
    }
}
