//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no network access to crates.io, so this
//! crate reimplements the subset of proptest's API the workspace uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, integer
//! range and tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `prop_map`, and the `collection::{vec, btree_set}` builders.
//!
//! Differences from upstream are deliberate and small: cases are drawn
//! from a deterministic per-test RNG (seeded from the test's module
//! path, so failures reproduce exactly across runs and machines), and
//! there is no shrinking — a failing case panics with the assertion
//! message directly. The strategy combinators compose the same way, so
//! swapping the real proptest back in requires no test changes.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` test expects in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Deterministic 64-bit seed derived from a test's fully-qualified name.
pub fn rng_seed(name: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash | 1
}

/// Declares property tests: an optional `#![proptest_config(..)]`
/// attribute followed by `#[test] fn name(arg in strategy, ..) { .. }`
/// items. Each test body runs once per case with freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::rng_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($arm) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}
