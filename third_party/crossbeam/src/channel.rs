//! Bounded and unbounded MPMC channels with crossbeam-compatible
//! surface: cloneable senders *and* receivers, blocking `send`/`recv`,
//! disconnection errors, and draining iteration.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is returned inside.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl Error for TryRecvError {}

/// Error returned by [`Sender::try_send`]; the unsent message is
/// returned inside.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> Error for TrySendError<T> {}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `capacity` in-flight messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

fn lock<'a, T>(shared: &'a Shared<T>) -> std::sync::MutexGuard<'a, State<T>> {
    shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> Sender<T> {
    /// Blocks until there is queue space, then enqueues `msg`. Fails
    /// only when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.shared);
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Enqueues `msg` if there is space, without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = lock(&self.shared);
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
        if full {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently in flight (an instantaneous snapshot).
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the channel currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender(..)")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives. Fails when the channel is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.shared);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Blocks until a message arrives or `timeout` elapses. Fails with
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and
    /// every sender has been dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            state = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Dequeues a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.shared);
        if let Some(msg) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// A blocking iterator that drains the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Messages currently in flight (an instantaneous snapshot).
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the channel currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver(..)")
    }
}

/// Borrowing iterator over received messages (see [`Receiver::iter`]).
#[derive(Debug)]
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_send_recv_round_trips() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn full_channel_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for v in rx.iter() {
                got.push(v);
            }
            assert_eq!(got, (0..100).collect::<Vec<i32>>());
        });
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn len_tracks_queue_occupancy_from_both_halves() {
        let (tx, rx) = bounded(4);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!((tx.len(), rx.len()), (2, 2));
        rx.recv().unwrap();
        assert_eq!((tx.len(), rx.len()), (1, 1));
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let total: u64 = std::thread::scope(|s| {
            for t in 0..3u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut handles = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                handles.push(s.spawn(move || rx.iter().count() as u64));
            }
            drop(rx);
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 150);
    }
}
