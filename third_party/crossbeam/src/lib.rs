//! Offline stand-in for the `crossbeam` facade.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the two pieces the workspace uses — bounded MPMC
//! channels ([`channel`]) and scoped threads ([`scope`]) — on top of
//! the standard library. The channel is a Mutex + Condvar ring with the
//! same blocking semantics crossbeam's has (send blocks when full,
//! recv blocks when empty, disconnection surfaces as `Err`); scoped
//! threads delegate to `std::thread::scope`.

pub mod channel;

use std::marker::PhantomData;

/// A scope handle mirroring `crossbeam::thread::Scope`.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (to match
    /// crossbeam's signature) and may borrow from the enclosing stack
    /// frame.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
        'env: 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
            _marker: PhantomData,
        }
    }
}

/// Join handle for a scoped thread.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// threads are joined before this returns. Matches `crossbeam::scope`'s
/// `Result` wrapper (a child panic propagates as a panic here, so the
/// `Err` arm is never constructed — callers' `.expect()` still works).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
