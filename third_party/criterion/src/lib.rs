//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the slice of criterion's API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `iter`, `iter_batched`, and `BatchSize` — with a
//! deliberately simple measurement loop: each benchmark is warmed up
//! once and then timed over a fixed number of iterations, reporting the
//! mean per-iteration time. That is enough to (a) keep `cargo bench`
//! compiling and running offline and (b) give coarse relative numbers;
//! it makes no statistical claims the way real criterion does.

use std::time::{Duration, Instant};

/// How `iter_batched` routines receive their setup value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The measurement driver handed to each bench closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` value per call; setup time
    /// is excluded from the reported duration.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std::hint::black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!(
            "{}/{}: {:>12.3} µs/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e6,
            b.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level harness object.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size.max(50);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export matching criterion's; prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
