//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach crates.io, and the workspace uses
//! serde only to *mark* types as serializable (`#[derive(Serialize,
//! Deserialize)]`); no code path actually serializes. This crate keeps
//! those declarations compiling: the traits are empty markers satisfied
//! by blanket impls, and the derives (re-exported from the sibling
//! `serde_derive` stub) expand to nothing. Swapping the real serde back
//! in later only requires repointing the workspace dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
