//! The end-to-end parallelization facade.

use crate::annotations::{apply_commutative, apply_ybranch};
use crate::dswp::{partition, Partition, Stage};
use crate::error::ParallelizeError;
use crate::invariants::prune_constant_carried_edges;
use crate::reductions::apply_reductions;
use crate::report::{ParallelizationReport, Technique};
use crate::speculation::{select, SpecKind, SpeculationConfig, SpeculationSet};
use seqpar_analysis::lint::{self, LintInput, LintReport, SpeculatedDep, StagePlan};
use seqpar_analysis::pdg::LoopPdg;
use seqpar_analysis::profile::LoopProfile;
use seqpar_ir::{FuncId, LoopForest, LoopId, Program};
use seqpar_runtime::ExecutionPlan;

/// The result of parallelizing one loop: the stage partition, the
/// speculation set, the `seqpar-lint` soundness audit, and a
/// techniques report.
#[derive(Clone, Debug)]
pub struct ParallelizedLoop {
    partition: Partition,
    speculation: SpeculationSet,
    report: ParallelizationReport,
    pdg: LoopPdg,
    stage_plan: StagePlan,
    speculated: Vec<SpeculatedDep>,
    lint: LintReport,
}

impl ParallelizedLoop {
    /// The three-phase stage assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The speculations the parallelization relies on.
    pub fn speculation(&self) -> &SpeculationSet {
        &self.speculation
    }

    /// The techniques report (one row of the paper's Table 1).
    pub fn report(&self) -> &ParallelizationReport {
        &self.report
    }

    /// The pruned dependence graph the partition was computed over.
    pub fn pdg(&self) -> &LoopPdg {
        &self.pdg
    }

    /// The partition in `seqpar-lint`'s compiler-neutral form.
    pub fn stage_plan(&self) -> &StagePlan {
        &self.stage_plan
    }

    /// The chosen speculations in `seqpar-lint`'s neutral form.
    pub fn speculated_deps(&self) -> &[SpeculatedDep] {
        &self.speculated
    }

    /// The `seqpar-lint` audit of the partition (plan shape excluded —
    /// no plan exists yet at partition time; see [`Self::lint_plan`]).
    pub fn lint_report(&self) -> &LintReport {
        &self.lint
    }

    /// Re-audits with a concrete execution plan: the stored partition
    /// findings plus plan-shape checks for `plan`.
    pub fn lint_plan(&self, plan: &ExecutionPlan) -> LintReport {
        let mut report = self.lint.clone();
        report.merge(lint::check_plan_shape(&self.stage_plan, plan));
        report
    }

    /// The execution plan for a machine with `cores` cores.
    ///
    /// When both the partition audit and the plan-shape check are
    /// clean, the plan is stamped as linted; the native executor
    /// debug-asserts the stamp still matches at run time.
    pub fn plan(&self, cores: usize) -> ExecutionPlan {
        let mut plan = ExecutionPlan::three_phase(cores);
        if self.lint.is_clean() && lint::check_plan_shape(&self.stage_plan, &plan).is_clean() {
            plan.stamp_linted();
        }
        plan
    }
}

/// Orchestrates analysis, annotation application, speculation selection,
/// and partitioning over whole programs.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Parallelizer<'p> {
    program: &'p Program,
    spec_config: SpeculationConfig,
    profile: Option<LoopProfile>,
    nested: bool,
    reductions: bool,
    allow_unsound: bool,
}

impl<'p> Parallelizer<'p> {
    /// Creates a parallelizer over `program` with default configuration.
    pub fn new(program: &'p Program) -> Self {
        Self {
            program,
            spec_config: SpeculationConfig::default(),
            profile: None,
            nested: false,
            reductions: false,
            allow_unsound: false,
        }
    }

    /// Sets the speculation configuration (builder style).
    pub fn speculation(mut self, config: SpeculationConfig) -> Self {
        self.spec_config = config;
        self
    }

    /// Supplies profile data for the target loop (builder style).
    pub fn profile(mut self, profile: LoopProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Marks this parallelization as nested (multiple loop levels or
    /// unrolled recursion, as in 186.crafty) for reporting purposes.
    pub fn nested(mut self, nested: bool) -> Self {
        self.nested = nested;
        self
    }

    /// Enables reduction expansion (§2.1): associative accumulator cycles
    /// are privatized per thread instead of serializing the loop.
    pub fn expand_reductions(mut self, enabled: bool) -> Self {
        self.reductions = enabled;
        self
    }

    /// Permits partitions that fail `seqpar-lint` at deny level to be
    /// returned anyway (the findings stay available via
    /// [`ParallelizedLoop::lint_report`]). For debugging checkers and
    /// deliberately-broken fixtures; plans from an unsound result are
    /// never stamped as linted.
    pub fn allow_unsound(mut self, allowed: bool) -> Self {
        self.allow_unsound = allowed;
        self
    }

    /// Parallelizes the outermost (largest) loop of `func`.
    ///
    /// The paper found that useful parallelism lives at or near the
    /// outermost application loop (§2.2), so this is the default entry
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelizeError::NoLoop`] if the function has no loop.
    pub fn parallelize_outermost(
        &self,
        func: FuncId,
    ) -> Result<ParallelizedLoop, ParallelizeError> {
        let f = self.program.function(func);
        let forest = LoopForest::build(f);
        let outermost = forest
            .loops()
            .filter(|(_, l)| l.depth == 0)
            .max_by_key(|(_, l)| l.blocks.len())
            .map(|(id, _)| id)
            .ok_or_else(|| ParallelizeError::NoLoop {
                function: f.name.clone(),
            })?;
        self.parallelize(func, &forest, outermost)
    }

    /// Parallelizes a specific loop of `func`.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelizeError::UnknownLoop`] if `loop_id` is not in
    /// `forest`.
    pub fn parallelize(
        &self,
        func: FuncId,
        forest: &LoopForest,
        loop_id: LoopId,
    ) -> Result<ParallelizedLoop, ParallelizeError> {
        if loop_id.0 as usize >= forest.len() {
            return Err(ParallelizeError::UnknownLoop);
        }
        let mut pdg = LoopPdg::build(self.program, func, forest, loop_id, self.profile.as_ref());

        // 1. Sequential-model extensions remove declared-removable deps.
        let ybranch = apply_ybranch(self.program, &mut pdg);
        let commutative = apply_commutative(&mut pdg);
        // 1b. Sound value-fact pruning: constant carried values never
        // order iterations.
        let invariant_pruned = prune_constant_carried_edges(self.program, &mut pdg);
        let _ = invariant_pruned;
        // 1c. Classic transformations: reduction expansion (§2.1).
        let reductions = if self.reductions {
            apply_reductions(self.program, &mut pdg)
        } else {
            crate::reductions::ReductionOutcome::default()
        };
        // 2. Profile-guided speculation removes rarely-manifesting deps.
        let speculation = select(
            self.program,
            &mut pdg,
            self.profile.as_ref(),
            &self.spec_config,
        );
        // 3. PS-DSWP partitions what remains.
        let part = partition(&pdg);

        // 4. seqpar-lint audits the claim that this partition preserves
        // sequential semantics.
        let stage_plan = StagePlan::three_phase(part.stages().iter().map(|s| *s as u8).collect());
        let speculated: Vec<SpeculatedDep> = speculation
            .chosen
            .iter()
            .map(|s| SpeculatedDep {
                src: s.edge.src,
                dst: s.edge.dst,
                kind: s.edge.kind,
                carried: s.edge.carried,
                misspec_rate: s.misspec_rate,
                // Every SpecKind lowers to a runtime SpecDep that is
                // replayed against the oracle at commit time.
                commit_validated: true,
            })
            .collect();
        let lint_report = lint::run(&LintInput {
            program: self.program,
            pdg: &pdg,
            stages: &stage_plan,
            speculated: &speculated,
            privatized: &reductions.privatized_nodes,
            plan: None,
        });
        if !lint_report.is_clean() && !self.allow_unsound {
            return Err(ParallelizeError::Unsound {
                codes: lint_report
                    .deny_codes()
                    .iter()
                    .map(|c| c.as_str().to_string())
                    .collect(),
            });
        }

        let mut techniques = vec![Technique::Dswp];
        if !speculation.is_empty() || part.has_parallel_stage() {
            // Any parallel execution relies on versioned memory for
            // privatization, even without explicit speculation.
            techniques.push(Technique::TlsMemory);
        }
        if speculation.uses(SpecKind::Alias) {
            techniques.push(Technique::AliasSpeculation);
        }
        if speculation.uses(SpecKind::Value) {
            techniques.push(Technique::ValueSpeculation);
        }
        if speculation.uses(SpecKind::Control) {
            techniques.push(Technique::ControlSpeculation);
        }
        if speculation.uses(SpecKind::SilentStore) {
            techniques.push(Technique::SilentStoreSpeculation);
        }
        if commutative.edges_removed > 0 {
            techniques.push(Technique::Commutative);
        }
        if ybranch.edges_removed > 0 {
            techniques.push(Technique::YBranch);
        }
        if self.nested {
            techniques.push(Technique::Nested);
        }
        if reductions.any() {
            techniques.push(Technique::ReductionExpansion);
        }
        techniques.sort();
        techniques.dedup();

        let report = ParallelizationReport {
            function: self.program.function(func).name.clone(),
            techniques,
            stage_weights: [
                part.weight(Stage::A),
                part.weight(Stage::B),
                part.weight(Stage::C),
            ],
            expected_misspec: speculation.misspec_per_iteration(),
            annotation_edges_removed: ybranch.edges_removed + commutative.edges_removed,
            speculated_edges: speculation.len(),
        };
        Ok(ParallelizedLoop {
            partition: part,
            speculation,
            report,
            pdg,
            stage_plan,
            speculated,
            lint: lint_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{CommGroupId, ExternEffect, FunctionBuilder, Opcode};

    /// The 300.twolf shape: a loop whose cross-iteration dependences are
    /// a commutative RNG plus heavy pure work.
    fn twolf_like(commutative: bool) -> (Program, FuncId) {
        let mut p = Program::new("twolf");
        let seed = p.add_global("randVarS", 1);
        let out = p.add_global("out", 1);
        p.declare_extern(
            "Yacm_random",
            ExternEffect {
                reads: vec![seed],
                writes: vec![seed],
                ..Default::default()
            },
        );
        p.declare_extern("ucxx2", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("uloop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let group = commutative.then_some(CommGroupId(0));
        let r = b.call_ext("Yacm_random", &[], group);
        let cost = b.call_ext("ucxx2", &[r], None);
        let ao = b.global_addr(out);
        let old = b.load(ao);
        let merged = b.binop(Opcode::Add, old, cost);
        b.store(ao, merged);
        // Loop control depends only on the RNG draw (phase-A shaped), not
        // on the heavy work — as in twolf, where `uloop`'s trip count is
        // an annealing schedule, not a function of the swap evaluations.
        let done = b.binop(Opcode::CmpLe, r, r);
        let _ = merged;
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        (p, f)
    }

    #[test]
    fn commutative_unlocks_the_parallel_stage() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        assert!(result.partition().has_parallel_stage());
        assert!(result.report().uses(Technique::Commutative));
        assert!(result.report().uses(Technique::Dswp));
        assert!(result.report().parallel_fraction() > 0.3);
    }

    #[test]
    fn without_commutative_the_rng_serializes() {
        let (p, f) = twolf_like(false);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        // The RNG's seed recurrence chains every call; the heavy work can
        // still pipeline but the RNG call cannot replicate.
        assert!(!result.report().uses(Technique::Commutative));
        let with = {
            let (p2, f2) = twolf_like(true);
            Parallelizer::new(&p2)
                .parallelize_outermost(f2)
                .unwrap()
                .report()
                .parallel_fraction()
        };
        assert!(result.report().parallel_fraction() <= with);
    }

    #[test]
    fn straight_line_function_has_no_loop() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::new("flat");
        b.ret(None);
        let f = b.finish(&mut p);
        let err = Parallelizer::new(&p).parallelize_outermost(f).unwrap_err();
        assert_eq!(
            err,
            ParallelizeError::NoLoop {
                function: "flat".into()
            }
        );
    }

    #[test]
    fn unknown_loop_id_is_rejected() {
        let (p, f) = twolf_like(true);
        let forest = LoopForest::build(p.function(f));
        let err = Parallelizer::new(&p)
            .parallelize(f, &forest, seqpar_ir::LoopId(99))
            .unwrap_err();
        assert_eq!(err, ParallelizeError::UnknownLoop);
    }

    #[test]
    fn nested_flag_is_reported() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p)
            .nested(true)
            .parallelize_outermost(f)
            .unwrap();
        assert!(result.report().uses(Technique::Nested));
    }

    #[test]
    fn reduction_expansion_is_opt_in_and_reported() {
        // A loop whose only recurrence is a memory accumulator.
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("sum");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let x = b.call_ext("f", &[], None);
        let a = b.global_addr(acc);
        let cur = b.load(a);
        let next = b.binop(Opcode::Add, cur, x);
        b.store(a, next);
        let zero = b.const_(0);
        let done = b.binop(Opcode::CmpEq, x, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let without = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        let with = Parallelizer::new(&p)
            .expand_reductions(true)
            .parallelize_outermost(f)
            .unwrap();
        assert!(!without.report().uses(Technique::ReductionExpansion));
        assert!(with.report().uses(Technique::ReductionExpansion));
        assert!(with.report().parallel_fraction() > without.report().parallel_fraction());
    }

    #[test]
    fn plan_matches_trace_stage_count() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        let plan = result.plan(8);
        assert_eq!(plan.stage_count(), 3);
        assert_eq!(plan.cores_required(), 8);
    }

    /// twolf_like with an unannotated extern that reads the RNG seed:
    /// the Commutative claim on `Yacm_random` no longer owns its state.
    fn twolf_like_with_seed_leak() -> (Program, FuncId) {
        let mut p = Program::new("twolf");
        let seed = p.add_global("randVarS", 1);
        p.declare_extern(
            "Yacm_random",
            ExternEffect {
                reads: vec![seed],
                writes: vec![seed],
                ..Default::default()
            },
        );
        p.declare_extern(
            "peek_seed",
            ExternEffect {
                reads: vec![seed],
                ..Default::default()
            },
        );
        let mut b = FunctionBuilder::new("uloop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let r = b.call_ext("Yacm_random", &[], Some(CommGroupId(0)));
        let s = b.call_ext("peek_seed", &[], None);
        let done = b.binop(Opcode::CmpLe, r, s);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        (p, f)
    }

    #[test]
    fn non_commuting_annotation_is_refused_at_deny_level() {
        let (p, f) = twolf_like_with_seed_leak();
        let err = Parallelizer::new(&p).parallelize_outermost(f).unwrap_err();
        assert_eq!(
            err,
            ParallelizeError::Unsound {
                codes: vec!["SP0005".into()]
            }
        );
    }

    #[test]
    fn allow_unsound_returns_the_partition_with_its_findings() {
        let (p, f) = twolf_like_with_seed_leak();
        let result = Parallelizer::new(&p)
            .allow_unsound(true)
            .parallelize_outermost(f)
            .unwrap();
        let report = result.lint_report();
        assert!(!report.is_clean());
        assert!(report
            .deny_codes()
            .contains(&seqpar_analysis::lint::LintCode::NonCommutative));
        // Plans from an unsound result are never stamped as linted.
        assert!(!result.plan(4).is_linted());
    }

    #[test]
    fn clean_results_stamp_their_plans_as_linted() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        assert!(result.lint_report().is_clean());
        let plan = result.plan(4);
        assert!(plan.is_linted());
        assert!(plan.lint_stamp_intact());
    }

    #[test]
    fn lint_plan_rejects_a_plan_with_the_wrong_stage_count() {
        use seqpar_runtime::StageAssignment;
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        let two_stage =
            ExecutionPlan::new(vec![StageAssignment::serial(0), StageAssignment::serial(1)]);
        let report = result.lint_plan(&two_stage);
        assert!(report
            .deny_codes()
            .contains(&seqpar_analysis::lint::LintCode::PlanShape));
        // The partition findings themselves stay clean.
        assert!(result.lint_report().is_clean());
    }
}
