//! The end-to-end parallelization facade.

use crate::annotations::{apply_commutative, apply_ybranch};
use crate::dswp::{partition, Partition, Stage};
use crate::error::ParallelizeError;
use crate::invariants::prune_constant_carried_edges;
use crate::reductions::apply_reductions;
use crate::report::{ParallelizationReport, Technique};
use crate::speculation::{select, SpecKind, SpeculationConfig, SpeculationSet};
use seqpar_analysis::pdg::LoopPdg;
use seqpar_analysis::profile::LoopProfile;
use seqpar_ir::{FuncId, LoopForest, LoopId, Program};
use seqpar_runtime::ExecutionPlan;

/// The result of parallelizing one loop: the stage partition, the
/// speculation set, and a techniques report.
#[derive(Clone, Debug)]
pub struct ParallelizedLoop {
    partition: Partition,
    speculation: SpeculationSet,
    report: ParallelizationReport,
    pdg: LoopPdg,
}

impl ParallelizedLoop {
    /// The three-phase stage assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The speculations the parallelization relies on.
    pub fn speculation(&self) -> &SpeculationSet {
        &self.speculation
    }

    /// The techniques report (one row of the paper's Table 1).
    pub fn report(&self) -> &ParallelizationReport {
        &self.report
    }

    /// The pruned dependence graph the partition was computed over.
    pub fn pdg(&self) -> &LoopPdg {
        &self.pdg
    }

    /// The execution plan for a machine with `cores` cores.
    pub fn plan(&self, cores: usize) -> ExecutionPlan {
        ExecutionPlan::three_phase(cores)
    }
}

/// Orchestrates analysis, annotation application, speculation selection,
/// and partitioning over whole programs.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Parallelizer<'p> {
    program: &'p Program,
    spec_config: SpeculationConfig,
    profile: Option<LoopProfile>,
    nested: bool,
    reductions: bool,
}

impl<'p> Parallelizer<'p> {
    /// Creates a parallelizer over `program` with default configuration.
    pub fn new(program: &'p Program) -> Self {
        Self {
            program,
            spec_config: SpeculationConfig::default(),
            profile: None,
            nested: false,
            reductions: false,
        }
    }

    /// Sets the speculation configuration (builder style).
    pub fn speculation(mut self, config: SpeculationConfig) -> Self {
        self.spec_config = config;
        self
    }

    /// Supplies profile data for the target loop (builder style).
    pub fn profile(mut self, profile: LoopProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Marks this parallelization as nested (multiple loop levels or
    /// unrolled recursion, as in 186.crafty) for reporting purposes.
    pub fn nested(mut self, nested: bool) -> Self {
        self.nested = nested;
        self
    }

    /// Enables reduction expansion (§2.1): associative accumulator cycles
    /// are privatized per thread instead of serializing the loop.
    pub fn expand_reductions(mut self, enabled: bool) -> Self {
        self.reductions = enabled;
        self
    }

    /// Parallelizes the outermost (largest) loop of `func`.
    ///
    /// The paper found that useful parallelism lives at or near the
    /// outermost application loop (§2.2), so this is the default entry
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelizeError::NoLoop`] if the function has no loop.
    pub fn parallelize_outermost(
        &self,
        func: FuncId,
    ) -> Result<ParallelizedLoop, ParallelizeError> {
        let f = self.program.function(func);
        let forest = LoopForest::build(f);
        let outermost = forest
            .loops()
            .filter(|(_, l)| l.depth == 0)
            .max_by_key(|(_, l)| l.blocks.len())
            .map(|(id, _)| id)
            .ok_or_else(|| ParallelizeError::NoLoop {
                function: f.name.clone(),
            })?;
        self.parallelize(func, &forest, outermost)
    }

    /// Parallelizes a specific loop of `func`.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelizeError::UnknownLoop`] if `loop_id` is not in
    /// `forest`.
    pub fn parallelize(
        &self,
        func: FuncId,
        forest: &LoopForest,
        loop_id: LoopId,
    ) -> Result<ParallelizedLoop, ParallelizeError> {
        if loop_id.0 as usize >= forest.len() {
            return Err(ParallelizeError::UnknownLoop);
        }
        let mut pdg = LoopPdg::build(self.program, func, forest, loop_id, self.profile.as_ref());

        // 1. Sequential-model extensions remove declared-removable deps.
        let ybranch = apply_ybranch(self.program, &mut pdg);
        let commutative = apply_commutative(&mut pdg);
        // 1b. Sound value-fact pruning: constant carried values never
        // order iterations.
        let invariant_pruned = prune_constant_carried_edges(self.program, &mut pdg);
        let _ = invariant_pruned;
        // 1c. Classic transformations: reduction expansion (§2.1).
        let reductions = if self.reductions {
            apply_reductions(self.program, &mut pdg)
        } else {
            crate::reductions::ReductionOutcome::default()
        };
        // 2. Profile-guided speculation removes rarely-manifesting deps.
        let speculation = select(
            self.program,
            &mut pdg,
            self.profile.as_ref(),
            &self.spec_config,
        );
        // 3. PS-DSWP partitions what remains.
        let part = partition(&pdg);

        let mut techniques = vec![Technique::Dswp];
        if !speculation.is_empty() || part.has_parallel_stage() {
            // Any parallel execution relies on versioned memory for
            // privatization, even without explicit speculation.
            techniques.push(Technique::TlsMemory);
        }
        if speculation.uses(SpecKind::Alias) {
            techniques.push(Technique::AliasSpeculation);
        }
        if speculation.uses(SpecKind::Value) {
            techniques.push(Technique::ValueSpeculation);
        }
        if speculation.uses(SpecKind::Control) {
            techniques.push(Technique::ControlSpeculation);
        }
        if speculation.uses(SpecKind::SilentStore) {
            techniques.push(Technique::SilentStoreSpeculation);
        }
        if commutative.edges_removed > 0 {
            techniques.push(Technique::Commutative);
        }
        if ybranch.edges_removed > 0 {
            techniques.push(Technique::YBranch);
        }
        if self.nested {
            techniques.push(Technique::Nested);
        }
        if reductions.any() {
            techniques.push(Technique::ReductionExpansion);
        }
        techniques.sort();
        techniques.dedup();

        let report = ParallelizationReport {
            function: self.program.function(func).name.clone(),
            techniques,
            stage_weights: [
                part.weight(Stage::A),
                part.weight(Stage::B),
                part.weight(Stage::C),
            ],
            expected_misspec: speculation.misspec_per_iteration(),
            annotation_edges_removed: ybranch.edges_removed + commutative.edges_removed,
            speculated_edges: speculation.len(),
        };
        Ok(ParallelizedLoop {
            partition: part,
            speculation,
            report,
            pdg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{CommGroupId, ExternEffect, FunctionBuilder, Opcode};

    /// The 300.twolf shape: a loop whose cross-iteration dependences are
    /// a commutative RNG plus heavy pure work.
    fn twolf_like(commutative: bool) -> (Program, FuncId) {
        let mut p = Program::new("twolf");
        let seed = p.add_global("randVarS", 1);
        let out = p.add_global("out", 1);
        p.declare_extern(
            "Yacm_random",
            ExternEffect {
                reads: vec![seed],
                writes: vec![seed],
                ..Default::default()
            },
        );
        p.declare_extern("ucxx2", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("uloop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let group = commutative.then_some(CommGroupId(0));
        let r = b.call_ext("Yacm_random", &[], group);
        let cost = b.call_ext("ucxx2", &[r], None);
        let ao = b.global_addr(out);
        let old = b.load(ao);
        let merged = b.binop(Opcode::Add, old, cost);
        b.store(ao, merged);
        // Loop control depends only on the RNG draw (phase-A shaped), not
        // on the heavy work — as in twolf, where `uloop`'s trip count is
        // an annealing schedule, not a function of the swap evaluations.
        let done = b.binop(Opcode::CmpLe, r, r);
        let _ = merged;
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        (p, f)
    }

    #[test]
    fn commutative_unlocks_the_parallel_stage() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        assert!(result.partition().has_parallel_stage());
        assert!(result.report().uses(Technique::Commutative));
        assert!(result.report().uses(Technique::Dswp));
        assert!(result.report().parallel_fraction() > 0.3);
    }

    #[test]
    fn without_commutative_the_rng_serializes() {
        let (p, f) = twolf_like(false);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        // The RNG's seed recurrence chains every call; the heavy work can
        // still pipeline but the RNG call cannot replicate.
        assert!(!result.report().uses(Technique::Commutative));
        let with = {
            let (p2, f2) = twolf_like(true);
            Parallelizer::new(&p2)
                .parallelize_outermost(f2)
                .unwrap()
                .report()
                .parallel_fraction()
        };
        assert!(result.report().parallel_fraction() <= with);
    }

    #[test]
    fn straight_line_function_has_no_loop() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::new("flat");
        b.ret(None);
        let f = b.finish(&mut p);
        let err = Parallelizer::new(&p).parallelize_outermost(f).unwrap_err();
        assert_eq!(
            err,
            ParallelizeError::NoLoop {
                function: "flat".into()
            }
        );
    }

    #[test]
    fn unknown_loop_id_is_rejected() {
        let (p, f) = twolf_like(true);
        let forest = LoopForest::build(p.function(f));
        let err = Parallelizer::new(&p)
            .parallelize(f, &forest, seqpar_ir::LoopId(99))
            .unwrap_err();
        assert_eq!(err, ParallelizeError::UnknownLoop);
    }

    #[test]
    fn nested_flag_is_reported() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p)
            .nested(true)
            .parallelize_outermost(f)
            .unwrap();
        assert!(result.report().uses(Technique::Nested));
    }

    #[test]
    fn reduction_expansion_is_opt_in_and_reported() {
        // A loop whose only recurrence is a memory accumulator.
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("sum");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let x = b.call_ext("f", &[], None);
        let a = b.global_addr(acc);
        let cur = b.load(a);
        let next = b.binop(Opcode::Add, cur, x);
        b.store(a, next);
        let zero = b.const_(0);
        let done = b.binop(Opcode::CmpEq, x, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let without = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        let with = Parallelizer::new(&p)
            .expand_reductions(true)
            .parallelize_outermost(f)
            .unwrap();
        assert!(!without.report().uses(Technique::ReductionExpansion));
        assert!(with.report().uses(Technique::ReductionExpansion));
        assert!(with.report().parallel_fraction() > without.report().parallel_fraction());
    }

    #[test]
    fn plan_matches_trace_stage_count() {
        let (p, f) = twolf_like(true);
        let result = Parallelizer::new(&p).parallelize_outermost(f).unwrap();
        let plan = result.plan(8);
        assert_eq!(plan.stage_count(), 3);
        assert_eq!(plan.cores_required(), 8);
    }
}
