//! The TLS-style baseline parallelization.
//!
//! Thread-level speculation executes whole loop iterations concurrently,
//! speculating that they are independent; the versioned memory subsystem
//! detects violations and squashes. The paper uses TLS-style execution
//! plans as the comparison point and notes (§3.2) that "similar
//! parallelizations and results could be obtained with execution plans
//! that more closely resemble TLS" — this module provides them, including
//! the refinement from §2.1 that some dependences are better
//! *synchronized* than speculated.

use crate::pipeline::IterationTrace;
use seqpar_runtime::{ExecutionPlan, SpecDep, TaskGraph, TaskId};

/// How the TLS parallelization treats loop-carried dependences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CarriedHandling {
    /// Speculate all carried dependences; violations serialize.
    Speculate,
    /// Synchronize all carried dependences (every iteration waits for its
    /// predecessor — the degenerate no-speculation TLS).
    Synchronize,
}

/// Builds a TLS task graph from a measured trace.
///
/// Each iteration is one task. With [`CarriedHandling::Speculate`],
/// consecutive iterations carry speculation events (violated when the
/// trace observed a real dependence); with
/// [`CarriedHandling::Synchronize`], every iteration hard-depends on its
/// predecessor.
pub fn task_graph(trace: &IterationTrace, handling: CarriedHandling) -> TaskGraph {
    match handling {
        CarriedHandling::Speculate => trace.tls_task_graph(),
        CarriedHandling::Synchronize => {
            let mut g = TaskGraph::new(1);
            let mut prev: Option<TaskId> = None;
            for (i, r) in trace.records().iter().enumerate() {
                let deps: Vec<TaskId> = prev.into_iter().collect();
                prev = Some(g.add_task(0, i as u64, r.total(), &deps, &[]));
            }
            g
        }
    }
}

/// The TLS execution plan: all iterations spread across all cores.
pub fn plan(cores: usize) -> ExecutionPlan {
    ExecutionPlan::tls(cores)
}

/// Splits each TLS task's speculation events for inspection (useful in
/// tests and the ablation benches).
pub fn violation_count(graph: &TaskGraph) -> u64 {
    graph
        .tasks()
        .iter()
        .flat_map(|t| graph.spec_deps(t).iter())
        .filter(|s: &&SpecDep| s.violated)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IterationRecord;
    use seqpar_runtime::{SimConfig, Simulator};

    fn trace(n: u64) -> IterationTrace {
        let mut t = IterationTrace::speculative();
        for i in 0..n {
            let mut r = IterationRecord::new(2, 50, 2);
            if i % 10 == 5 {
                r = r.with_misspec_on(i - 1);
            }
            t.push(r);
        }
        t
    }

    #[test]
    fn speculative_tls_beats_synchronized_tls() {
        let t = trace(200);
        let spec = task_graph(&t, CarriedHandling::Speculate);
        let sync = task_graph(&t, CarriedHandling::Synchronize);
        let sim = Simulator::new(SimConfig {
            cores: 8,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let rs = sim.run(&spec, &plan(8)).unwrap();
        let rh = sim.run(&sync, &plan(8)).unwrap();
        assert!(rs.speedup() > 3.0, "speculative {}", rs.speedup());
        assert!(rh.speedup() <= 1.01, "synchronized {}", rh.speedup());
    }

    #[test]
    fn synchronized_graph_has_no_speculation() {
        let t = trace(50);
        let g = task_graph(&t, CarriedHandling::Synchronize);
        assert_eq!(violation_count(&g), 0);
        assert!(g.tasks().iter().all(|task| g.spec_deps(task).is_empty()));
        assert!(g.tasks().iter().skip(1).all(|task| g.deps(task).len() == 1));
    }

    #[test]
    fn speculative_graph_records_observed_violations() {
        let t = trace(100);
        let g = task_graph(&t, CarriedHandling::Speculate);
        let expected = t
            .records()
            .iter()
            .filter(|r| r.misspec_on.is_some())
            .count() as u64;
        assert_eq!(violation_count(&g), expected);
        assert!(expected > 0);
    }

    #[test]
    fn plans_cover_all_cores() {
        assert_eq!(plan(6).stage(0).cores().len(), 6);
    }
}
