//! From partitions and measured traces to simulatable task graphs.
//!
//! The paper measures parallel performance by decomposing the
//! single-threaded run into *tasks* — dynamic instances of the statically
//! chosen phases — timing each natively, and simulating the schedule
//! (§3.1). [`IterationTrace`] is that decomposition: one record per loop
//! iteration with the measured phase costs and the dynamic dependence
//! events (misspeculations) that actually occurred.

use seqpar_runtime::{ExecutionPlan, SpecDep, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Measurements for one loop iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Cycles spent in the sequential produce phase (A).
    pub a_cost: u64,
    /// Cycles spent in the parallel phase (B).
    pub b_cost: u64,
    /// Cycles spent in the sequential consume phase (C).
    pub c_cost: u64,
    /// `Some(j)` when this iteration's phase-B work *actually* depended
    /// on iteration `j`'s phase-B work — i.e. the speculation that
    /// iterations are independent was violated by iteration `j`.
    pub misspec_on: Option<u64>,
}

impl IterationRecord {
    /// A record with the given costs and no misspeculation.
    pub fn new(a_cost: u64, b_cost: u64, c_cost: u64) -> Self {
        Self {
            a_cost,
            b_cost,
            c_cost,
            misspec_on: None,
        }
    }

    /// Marks this iteration as having truly depended on iteration `j`.
    pub fn with_misspec_on(mut self, j: u64) -> Self {
        self.misspec_on = Some(j);
        self
    }

    /// Total cycles of the iteration.
    pub fn total(&self) -> u64 {
        self.a_cost + self.b_cost + self.c_cost
    }
}

/// The measured execution trace of one parallelized loop.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationTrace {
    records: Vec<IterationRecord>,
    /// Whether phase B runs speculatively (records `SpecDep`s between
    /// consecutive B tasks). Non-speculative pipelines — e.g. 256.bzip2,
    /// whose blocks are truly independent — skip them.
    pub speculative: bool,
}

impl IterationTrace {
    /// Creates an empty, non-speculative trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace whose phase B runs speculatively.
    pub fn speculative() -> Self {
        Self {
            speculative: true,
            ..Self::default()
        }
    }

    /// Appends one iteration's measurements.
    ///
    /// # Panics
    ///
    /// Panics if the record misspeculates on a future iteration.
    pub fn push(&mut self, record: IterationRecord) {
        if let Some(j) = record.misspec_on {
            assert!(
                (j as usize) < self.records.len(),
                "iteration {} cannot depend on future iteration {j}",
                self.records.len()
            );
        }
        self.records.push(record);
    }

    /// The per-iteration records.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// The number of iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total single-threaded cycles.
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().map(IterationRecord::total).sum()
    }

    /// Fraction of iterations that misspeculated.
    pub fn misspec_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records
                .iter()
                .filter(|r| r.misspec_on.is_some())
                .count() as f64
                / self.records.len() as f64
        }
    }

    /// Builds the three-phase task graph of §3.2: phase-A tasks chained
    /// serially, each phase-B task depending on its iteration's phase-A
    /// task (plus speculation events), phase-C tasks consuming phase B in
    /// iteration order.
    pub fn task_graph(&self) -> TaskGraph {
        let mut g = TaskGraph::new(3);
        let mut prev_a: Option<TaskId> = None;
        let mut prev_c: Option<TaskId> = None;
        let mut b_ids: Vec<TaskId> = Vec::with_capacity(self.records.len());
        for (i, r) in self.records.iter().enumerate() {
            let i = i as u64;
            let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
            let ta = g.add_task(0, i, r.a_cost, &deps_a, &[]);
            let spec = self.spec_deps_for(i, r, &b_ids);
            let tb = g.add_task(1, i, r.b_cost, &[ta], &spec);
            let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
            let tc = g.add_task(2, i, r.c_cost, &deps_c, &[]);
            prev_a = Some(ta);
            prev_c = Some(tc);
            b_ids.push(tb);
        }
        g
    }

    /// Builds the TLS-style task graph: one stage, one task per
    /// iteration, consecutive iterations linked by speculation.
    pub fn tls_task_graph(&self) -> TaskGraph {
        let mut g = TaskGraph::new(1);
        let mut ids: Vec<TaskId> = Vec::with_capacity(self.records.len());
        for (i, r) in self.records.iter().enumerate() {
            let i = i as u64;
            let spec = self.spec_deps_for(i, r, &ids);
            let t = g.add_task(0, i, r.total(), &[], &spec);
            ids.push(t);
        }
        g
    }

    fn spec_deps_for(&self, i: u64, r: &IterationRecord, prev: &[TaskId]) -> Vec<SpecDep> {
        let mut spec = Vec::new();
        if let Some(j) = r.misspec_on {
            spec.push(SpecDep {
                on: prev[j as usize],
                violated: true,
            });
        }
        if self.speculative && i > 0 && r.misspec_on != Some(i - 1) {
            spec.push(SpecDep {
                on: prev[(i - 1) as usize],
                violated: false,
            });
        }
        spec
    }

    /// The standard execution plan for this trace on `cores` cores.
    pub fn plan(cores: usize) -> ExecutionPlan {
        ExecutionPlan::three_phase(cores)
    }
}

impl FromIterator<IterationRecord> for IterationTrace {
    fn from_iter<T: IntoIterator<Item = IterationRecord>>(iter: T) -> Self {
        let mut trace = IterationTrace::new();
        for r in iter {
            trace.push(r);
        }
        trace
    }
}

impl Extend<IterationRecord> for IterationTrace {
    fn extend<T: IntoIterator<Item = IterationRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_runtime::{SimConfig, Simulator};

    fn trace(n: u64, misspec_every: Option<u64>) -> IterationTrace {
        let mut t = IterationTrace::speculative();
        for i in 0..n {
            let mut r = IterationRecord::new(5, 100, 5);
            if let Some(k) = misspec_every {
                if i > 0 && i % k == 0 {
                    r = r.with_misspec_on(i - 1);
                }
            }
            t.push(r);
        }
        t
    }

    #[test]
    fn totals_accumulate() {
        let t = trace(10, None);
        assert_eq!(t.len(), 10);
        assert_eq!(t.total_cycles(), 1100);
        assert_eq!(t.misspec_rate(), 0.0);
    }

    #[test]
    fn misspec_rate_counts_violations() {
        let t = trace(10, Some(2));
        // Iterations 2,4,6,8 misspeculate.
        assert!((t.misspec_rate() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn task_graph_has_three_tasks_per_iteration() {
        let t = trace(7, None);
        let g = t.task_graph();
        assert_eq!(g.len(), 21);
        assert_eq!(g.serial_cycles(), t.total_cycles());
    }

    #[test]
    fn clean_trace_pipelines_to_high_speedup() {
        let t = trace(500, None);
        let g = t.task_graph();
        let sim = Simulator::new(SimConfig {
            cores: 8,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let r = sim.run(&g, &IterationTrace::plan(8)).unwrap();
        assert!(r.speedup() > 5.0, "speedup {}", r.speedup());
        assert_eq!(r.speculations_survived, 499);
    }

    #[test]
    fn heavy_misspeculation_destroys_speedup() {
        let mut t = IterationTrace::speculative();
        for i in 0..200 {
            let mut r = IterationRecord::new(0, 100, 0);
            if i > 0 {
                r = r.with_misspec_on(i - 1);
            }
            t.push(r);
        }
        let g = t.task_graph();
        let sim = Simulator::new(SimConfig {
            cores: 16,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let r = sim.run(&g, &IterationTrace::plan(16)).unwrap();
        assert!(r.speedup() < 1.2, "speedup {}", r.speedup());
        assert_eq!(r.violations, 199);
    }

    #[test]
    fn tls_graph_is_single_stage() {
        let t = trace(5, None);
        let g = t.tls_task_graph();
        assert_eq!(g.stage_count(), 1);
        assert_eq!(g.len(), 5);
        assert_eq!(g.serial_cycles(), t.total_cycles());
    }

    #[test]
    #[should_panic(expected = "future iteration")]
    fn misspec_on_future_iteration_is_rejected() {
        let mut t = IterationTrace::new();
        t.push(IterationRecord::new(1, 1, 1).with_misspec_on(5));
    }

    #[test]
    fn collects_from_iterator() {
        let t: IterationTrace = (0..4).map(|_| IterationRecord::new(1, 2, 3)).collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_cycles(), 24);
        assert!(!t.speculative);
    }

    #[test]
    fn misspec_on_distant_iteration_links_to_it() {
        let mut t = IterationTrace::speculative();
        t.push(IterationRecord::new(1, 10, 1));
        t.push(IterationRecord::new(1, 10, 1));
        t.push(IterationRecord::new(1, 10, 1).with_misspec_on(0));
        let g = t.task_graph();
        // Task B2 (index 7) has a violated dep on B0 (index 1) and a
        // surviving spec dep on B1.
        let b2 = &g.tasks()[7];
        assert_eq!(g.spec_deps(b2).len(), 2);
        assert!(g.spec_deps(b2).iter().any(|s| s.violated));
        assert!(g.spec_deps(b2).iter().any(|s| !s.violated));
    }
}
