//! Region formation: whole-program scope through inlining (paper §2.2).
//!
//! "By using whole program optimization, procedure boundaries can be
//! removed, giving the compiler the ability to both see and modify code,
//! regardless of location in the program. Additionally, through region
//! formation, the compiler can control the amount of code to analyze and
//! optimize."
//!
//! Effect summaries already make calls *visible* to the dependence
//! analyses, but a call remains a single PDG node: if a callee reads one
//! global, computes for a long time, and writes another, the whole call
//! inherits the union of those dependences and is pinned to a sequential
//! stage. Inlining splits it into separate instructions, so the heavy
//! pure middle can replicate across cores while only the tiny accesses
//! stay ordered — exactly the kind of parallelism the paper finds "at or
//! close to the outermost application loop", deep under calls.

use seqpar_ir::{Callee, FuncId, Inst, InstId, MemRef, Opcode, Program, Terminator, ValueId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a call site could not be inlined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InlineError {
    /// The instruction is not a call to an internal function.
    NotAnInternalCall,
    /// The call site carries a *Commutative* annotation: the annotation's
    /// semantics attach to the function boundary, so it must survive.
    CommutativeCall,
    /// The callee has control flow (only straight-line, single-return
    /// functions are inlined).
    CalleeHasControlFlow,
    /// The call passes a different number of arguments than the callee
    /// declares.
    ArityMismatch {
        /// Parameters declared.
        expected: usize,
        /// Arguments passed.
        got: usize,
    },
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NotAnInternalCall => write!(f, "not a call to an internal function"),
            InlineError::CommutativeCall => {
                write!(f, "commutative call sites keep their function boundary")
            }
            InlineError::CalleeHasControlFlow => {
                write!(
                    f,
                    "callee has control flow; only straight-line callees inline"
                )
            }
            InlineError::ArityMismatch { expected, got } => {
                write!(f, "callee expects {expected} arguments, call passes {got}")
            }
        }
    }
}

impl Error for InlineError {}

/// Whether `callee` is eligible for inlining: a single straight-line
/// block ending in a return.
pub fn inlinable(program: &Program, callee: FuncId) -> bool {
    let f = program.function(callee);
    f.block_count() == 1 && matches!(f.block(f.entry).terminator, Terminator::Return(_))
}

/// Inlines the internal call `call` in `caller`, splicing the callee's
/// body (with renumbered values) in place of the call instruction. The
/// call instruction itself is rewritten into a copy of the callee's
/// return value (or a zero constant for `void` callees), so its defined
/// value keeps its identity for downstream uses.
///
/// # Errors
///
/// See [`InlineError`].
pub fn inline_call(program: &mut Program, caller: FuncId, call: InstId) -> Result<(), InlineError> {
    let (callee_id, args) = {
        let inst = program.function(caller).inst(call);
        match &inst.opcode {
            Opcode::Call {
                commutative: Some(_),
                ..
            } => return Err(InlineError::CommutativeCall),
            Opcode::Call {
                callee: Callee::Internal(g),
                ..
            } => (*g, inst.operands.clone()),
            _ => return Err(InlineError::NotAnInternalCall),
        }
    };
    if !inlinable(program, callee_id) {
        return Err(InlineError::CalleeHasControlFlow);
    }
    let callee = program.function(callee_id).clone();
    if callee.params.len() != args.len() {
        return Err(InlineError::ArityMismatch {
            expected: callee.params.len(),
            got: args.len(),
        });
    }
    let block = program
        .function(caller)
        .block_of(call)
        .expect("call instruction lives in a block");

    // Value renaming: parameters map to the call arguments; every value
    // the callee defines gets a fresh caller value.
    let mut rename: HashMap<ValueId, ValueId> = HashMap::new();
    for (p, a) in callee.params.iter().zip(args.iter()) {
        rename.insert(*p, *a);
    }
    let f = program.function_mut(caller);
    let callee_insts: Vec<InstId> = callee.block(callee.entry).insts.clone();
    for &ci in &callee_insts {
        let src = callee.inst(ci);
        let new_def = src.def.map(|d| {
            let nd = f.new_value();
            rename.insert(d, nd);
            nd
        });
        let remap = |v: ValueId, rn: &HashMap<ValueId, ValueId>| rn.get(&v).copied().unwrap_or(v);
        let operands: Vec<ValueId> = src.operands.iter().map(|v| remap(*v, &rename)).collect();
        let remap_mem = |m: &MemRef, rn: &HashMap<ValueId, ValueId>| MemRef {
            base: remap(m.base, rn),
            index: m.index.map(|i| remap(i, rn)),
            field: m.field,
        };
        let opcode = match &src.opcode {
            Opcode::Load(m) => Opcode::Load(remap_mem(m, &rename)),
            Opcode::Store(m) => Opcode::Store(remap_mem(m, &rename)),
            other => other.clone(),
        };
        let mut inst = Inst::new(opcode, new_def, operands);
        inst.label = src.label.clone();
        f.insert_inst_before(block, call, inst);
    }
    // Rewrite the call into a copy of the (renamed) return value so the
    // call's defined value keeps flowing to its uses.
    let new_opcode = match callee.block(callee.entry).terminator {
        Terminator::Return(Some(v)) => {
            let mapped = rename.get(&v).copied().unwrap_or(v);
            (Opcode::Copy, vec![mapped])
        }
        _ => (Opcode::Const(0), Vec::new()),
    };
    let call_inst = f.inst_mut(call);
    call_inst.opcode = new_opcode.0;
    call_inst.operands = new_opcode.1;
    Ok(())
}

/// The outcome of region formation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionOutcome {
    /// Call sites inlined.
    pub calls_inlined: usize,
    /// Call sites left alone (control flow, annotations, externals).
    pub calls_skipped: usize,
}

/// Forms a region around `func`: repeatedly inlines every eligible
/// internal call it contains, up to `max_rounds` of transitive inlining.
pub fn form_region(program: &mut Program, func: FuncId, max_rounds: usize) -> RegionOutcome {
    let mut outcome = RegionOutcome::default();
    let mut rejected: std::collections::HashSet<InstId> = std::collections::HashSet::new();
    for _ in 0..max_rounds {
        let candidates: Vec<InstId> = program
            .function(func)
            .inst_ids()
            .filter(|i| {
                !rejected.contains(i)
                    && matches!(
                        program.function(func).inst(*i).opcode,
                        Opcode::Call {
                            callee: Callee::Internal(_),
                            ..
                        }
                    )
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let mut inlined_this_round = 0;
        for call in candidates {
            match inline_call(program, func, call) {
                Ok(()) => {
                    outcome.calls_inlined += 1;
                    inlined_this_round += 1;
                }
                Err(_) => {
                    outcome.calls_skipped += 1;
                    rejected.insert(call);
                }
            }
        }
        if inlined_this_round == 0 {
            break;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{verify_function, CommGroupId, ExternEffect, FunctionBuilder};

    /// caller: loop { x = helper(k); sink += x } where
    /// helper(k) { t = load g; u = t + k; store h, u; return u }
    fn program_with_helper() -> (Program, FuncId, FuncId) {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let h = p.add_global("h", 1);
        let mut hb = FunctionBuilder::new("helper");
        let k = hb.add_param();
        let ag = hb.global_addr(g);
        let t = hb.load(ag);
        let u = hb.binop(Opcode::Add, t, k);
        let ah = hb.global_addr(h);
        hb.store(ah, u);
        hb.label_last("helper_store");
        hb.ret(Some(u));
        let helper = hb.finish(&mut p);

        let mut cb = FunctionBuilder::new("caller");
        let header = cb.add_block("header");
        let exit = cb.add_block("exit");
        cb.jump(header);
        cb.switch_to(header);
        let kk = cb.const_(5);
        let x = cb.call(helper, &[kk]);
        let done = cb.binop(Opcode::CmpEq, x, kk);
        cb.cond_branch(done, exit, header);
        cb.switch_to(exit);
        cb.ret(None);
        let caller = cb.finish(&mut p);
        let _ = ExternEffect::pure_fn();
        (p, caller, helper)
    }

    #[test]
    fn inlining_splices_the_callee_body() {
        let (mut p, caller, helper) = program_with_helper();
        let before = p.function(caller).inst_count();
        let outcome = form_region(&mut p, caller, 4);
        assert_eq!(outcome.calls_inlined, 1);
        let f = p.function(caller);
        assert!(f.inst_count() > before);
        // The call became a copy; the callee's labelled store arrived.
        assert!(!f.inst_ids().any(|i| f.inst(i).opcode.is_call()));
        assert!(f
            .inst_ids()
            .any(|i| f.inst(i).label.as_deref() == Some("helper_store")));
        verify_function(f).expect("inlined function remains well-formed");
        let _ = helper;
    }

    #[test]
    fn inlined_code_preserves_argument_binding() {
        let (mut p, caller, _) = program_with_helper();
        form_region(&mut p, caller, 4);
        let f = p.function(caller);
        // The spliced Add must use the caller's constant (the argument),
        // not the callee's parameter.
        let add = f
            .inst_ids()
            .find(|i| matches!(f.inst(*i).opcode, Opcode::Add))
            .expect("spliced add");
        let const5 = f
            .inst_ids()
            .find(|i| matches!(f.inst(*i).opcode, Opcode::Const(5)))
            .expect("caller constant");
        assert!(f.inst(add).operands.contains(&f.inst(const5).def.unwrap()));
    }

    #[test]
    fn commutative_call_sites_are_preserved() {
        let mut p = Program::new("t");
        let mut hb = FunctionBuilder::new("alloc");
        hb.ret(None);
        let helper = hb.finish(&mut p);
        let mut cb = FunctionBuilder::new("caller");
        // Internal call annotated commutative: must not be inlined.
        let v = cb.const_(0);
        let _ = cb.call_commutative(helper, &[v], CommGroupId(1));
        cb.ret(None);
        let caller = cb.finish(&mut p);
        let call = p
            .function(caller)
            .inst_ids()
            .find(|i| p.function(caller).inst(*i).opcode.is_call())
            .unwrap();
        assert_eq!(
            inline_call(&mut p, caller, call),
            Err(InlineError::CommutativeCall)
        );
    }

    #[test]
    fn control_flow_callees_are_skipped() {
        let mut p = Program::new("t");
        let mut hb = FunctionBuilder::new("branchy");
        let t = hb.add_block("t");
        let e = hb.add_block("e");
        let c = hb.const_(1);
        hb.cond_branch(c, t, e);
        hb.switch_to(t);
        hb.ret(None);
        hb.switch_to(e);
        hb.ret(None);
        let branchy = hb.finish(&mut p);
        let mut cb = FunctionBuilder::new("caller");
        let _ = cb.call(branchy, &[]);
        cb.ret(None);
        let caller = cb.finish(&mut p);
        assert!(!inlinable(&p, branchy));
        let outcome = form_region(&mut p, caller, 4);
        assert_eq!(outcome.calls_inlined, 0);
        assert_eq!(outcome.calls_skipped, 1);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut p = Program::new("t");
        let mut hb = FunctionBuilder::new("two_params");
        let _ = hb.add_param();
        let _ = hb.add_param();
        hb.ret(None);
        let helper = hb.finish(&mut p);
        let mut cb = FunctionBuilder::new("caller");
        let _ = cb.call(helper, &[]);
        cb.ret(None);
        let caller = cb.finish(&mut p);
        let call = p
            .function(caller)
            .inst_ids()
            .find(|i| p.function(caller).inst(*i).opcode.is_call())
            .unwrap();
        assert_eq!(
            inline_call(&mut p, caller, call),
            Err(InlineError::ArityMismatch {
                expected: 2,
                got: 0
            })
        );
    }

    #[test]
    fn region_formation_unlocks_the_parallel_stage() {
        // As a call node, the helper reads g and writes h every iteration:
        // its self-conflict keeps it sequential. Inlined, only the tiny
        // store is ordered and the Add can replicate — so the parallel
        // fraction must strictly improve.
        let (p_before, caller, _) = program_with_helper();
        let mut p_after = p_before.clone();
        let without = crate::Parallelizer::new(&p_before)
            .parallelize_outermost(caller)
            .unwrap();
        form_region(&mut p_after, caller, 4);
        let with = crate::Parallelizer::new(&p_after)
            .parallelize_outermost(caller)
            .unwrap();
        assert!(
            with.report().parallel_fraction() >= without.report().parallel_fraction(),
            "inlining must not lose parallelism: {} vs {}",
            with.report(),
            without.report()
        );
        // The inlined body exposes more PDG nodes.
        assert!(with.pdg().node_count() > without.pdg().node_count());
    }

    #[test]
    fn transitive_inlining_respects_round_limit() {
        // a calls b, b calls c: one round inlines b into a (the spliced
        // call to c inlines on the next round).
        let mut p = Program::new("t");
        let mut c3 = FunctionBuilder::new("c");
        let v = c3.const_(3);
        c3.ret(Some(v));
        let cf = c3.finish(&mut p);
        let mut b2 = FunctionBuilder::new("b");
        let r = b2.call(cf, &[]);
        b2.ret(Some(r));
        let bf = b2.finish(&mut p);
        let mut a1 = FunctionBuilder::new("a");
        let r = a1.call(bf, &[]);
        a1.ret(Some(r));
        let af = a1.finish(&mut p);

        let mut one_round = p.clone();
        let o1 = form_region(&mut one_round, af, 1);
        assert_eq!(o1.calls_inlined, 1);
        let f = one_round.function(af);
        assert!(f.inst_ids().any(|i| f.inst(i).opcode.is_call()));

        let o2 = form_region(&mut p, af, 4);
        assert_eq!(o2.calls_inlined, 2);
        let f = p.function(af);
        assert!(!f.inst_ids().any(|i| f.inst(i).opcode.is_call()));
    }
}
