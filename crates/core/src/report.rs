//! Reporting which techniques a parallelization required (paper Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A technique from the paper's toolbox (the "Techniques Required" column
/// of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Decoupled software pipelining (always present).
    Dswp,
    /// TLS-style versioned memory for privatization/speculation.
    TlsMemory,
    /// Alias speculation.
    AliasSpeculation,
    /// Value speculation.
    ValueSpeculation,
    /// Control speculation.
    ControlSpeculation,
    /// Silent-store speculation.
    SilentStoreSpeculation,
    /// The *Commutative* annotation.
    Commutative,
    /// The *Y-branch* annotation.
    YBranch,
    /// Nested (multi-loop or unrolled-recursion) parallelization.
    Nested,
    /// Reduction expansion (privatized partial results).
    ReductionExpansion,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::Dswp => "DSWP",
            Technique::TlsMemory => "TLS Memory",
            Technique::AliasSpeculation => "Alias Speculation",
            Technique::ValueSpeculation => "Value Speculation",
            Technique::ControlSpeculation => "Control Speculation",
            Technique::SilentStoreSpeculation => "Silent Store Speculation",
            Technique::Commutative => "Commutative",
            Technique::YBranch => "Y-branch",
            Technique::Nested => "Nested",
            Technique::ReductionExpansion => "Reduction Expansion",
        };
        f.write_str(s)
    }
}

/// Summary of one loop's parallelization.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParallelizationReport {
    /// Name of the function containing the loop.
    pub function: String,
    /// Techniques required, sorted and deduplicated.
    pub techniques: Vec<Technique>,
    /// Per-stage weight of one iteration (A, B, C).
    pub stage_weights: [u64; 3],
    /// Expected per-iteration misspeculation probability.
    pub expected_misspec: f64,
    /// Dependence edges removed by annotations.
    pub annotation_edges_removed: usize,
    /// Dependence edges removed by speculation.
    pub speculated_edges: usize,
}

impl ParallelizationReport {
    /// Fraction of one iteration's weight in the parallel stage.
    pub fn parallel_fraction(&self) -> f64 {
        let total: u64 = self.stage_weights.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.stage_weights[1] as f64 / total as f64
        }
    }

    /// Whether `technique` was required.
    pub fn uses(&self, technique: Technique) -> bool {
        self.techniques.contains(&technique)
    }

    /// An upper bound on pipeline speedup with unlimited cores, from the
    /// stage balance: the serial stages and misspeculated iterations
    /// bound throughput.
    pub fn ideal_speedup_bound(&self) -> f64 {
        let total: u64 = self.stage_weights.iter().sum();
        let serial_per_iter = self.stage_weights[0].max(self.stage_weights[2]) as f64
            + self.expected_misspec * self.stage_weights[1] as f64;
        if serial_per_iter == 0.0 {
            f64::INFINITY
        } else {
            total as f64 / serial_per_iter
        }
    }
}

impl fmt::Display for ParallelizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let techniques: Vec<String> = self.techniques.iter().map(Technique::to_string).collect();
        write!(
            f,
            "{}: A={} B={} C={} (parallel {:.0}%), misspec {:.2}%, techniques: {}",
            self.function,
            self.stage_weights[0],
            self.stage_weights[1],
            self.stage_weights[2],
            self.parallel_fraction() * 100.0,
            self.expected_misspec * 100.0,
            techniques.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ParallelizationReport {
        ParallelizationReport {
            function: "uloop".into(),
            techniques: vec![Technique::Dswp, Technique::Commutative],
            stage_weights: [10, 80, 10],
            expected_misspec: 0.05,
            annotation_edges_removed: 2,
            speculated_edges: 3,
        }
    }

    #[test]
    fn parallel_fraction_from_weights() {
        assert!((report().parallel_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn uses_checks_membership() {
        let r = report();
        assert!(r.uses(Technique::Commutative));
        assert!(!r.uses(Technique::YBranch));
    }

    #[test]
    fn ideal_speedup_bound_accounts_for_serial_stages_and_misspec() {
        let r = report();
        // serial/iter = max(10,10) + 0.05*80 = 14; total = 100.
        assert!((r.ideal_speedup_bound() - 100.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn fully_parallel_report_is_unbounded() {
        let r = ParallelizationReport {
            stage_weights: [0, 100, 0],
            expected_misspec: 0.0,
            ..report()
        };
        assert!(r.ideal_speedup_bound().is_infinite());
    }

    #[test]
    fn display_mentions_techniques() {
        let s = report().to_string();
        assert!(s.contains("Commutative"), "{s}");
        assert!(s.contains("uloop"), "{s}");
    }

    #[test]
    fn zero_weight_report_has_zero_fraction() {
        let r = ParallelizationReport {
            stage_weights: [0, 0, 0],
            ..report()
        };
        assert_eq!(r.parallel_fraction(), 0.0);
    }
}
