//! Profile-guided speculation selection (paper §2.1).
//!
//! "Both TLS and DSWP require judicious use of speculation to break
//! infrequent or easily predictable dependences inhibiting
//! parallelization — not only alias speculation, but also value
//! speculation and control speculation." This pass inspects the
//! loop-carried edges of a [`LoopPdg`] and, guided by profile data,
//! selects the edges whose removal is worth the expected misspeculation:
//!
//! * **Alias speculation** — carried memory dependences that rarely
//!   manifest (255.vortex's B-tree rebalances, 176.gcc's symbol table);
//! * **Silent-store speculation** — carried self-dependences of stores
//!   that usually rewrite the same value (181.mcf's `refresh_potential`);
//! * **Value speculation** — carried register dependences whose value is
//!   iteration-stable (253.perlbmk's `PL_stack_sp`, 186.crafty's search
//!   state);
//! * **Control speculation** — carried control dependences from strongly
//!   biased branches (186.crafty's `next_time_check`).
//!
//! Selected edges are removed from the PDG (the partitioner then sees a
//! friendlier graph); at runtime each selected edge becomes a
//! [`seqpar_runtime::SpecDep`] whose violation probability is the edge's
//! profiled manifestation rate.

use seqpar_analysis::pdg::{DepKind, LoopPdg, PdgEdge, PdgNode};
use seqpar_analysis::profile::LoopProfile;
use seqpar_ir::{Opcode, Program};
use serde::{Deserialize, Serialize};

/// The flavour of speculation applied to one edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecKind {
    /// Memory dependence assumed absent.
    Alias,
    /// Store assumed to rewrite the already-visible value.
    SilentStore,
    /// Register value predicted from the previous iteration.
    Value,
    /// Branch predicted along its bias.
    Control,
}

impl std::fmt::Display for SpecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SpecKind::Alias => "alias",
            SpecKind::SilentStore => "silent-store",
            SpecKind::Value => "value",
            SpecKind::Control => "control",
        };
        f.write_str(s)
    }
}

/// One selected speculation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Speculation {
    /// The edge removed from the PDG.
    pub edge: PdgEdge,
    /// The speculation flavour.
    pub kind: SpecKind,
    /// Expected per-iteration misspeculation probability.
    pub misspec_rate: f64,
}

/// The full set of speculations chosen for one loop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpeculationSet {
    /// Chosen speculations.
    pub chosen: Vec<Speculation>,
}

impl SpeculationSet {
    /// Probability that at least one speculation misfires in a given
    /// iteration (independence assumed).
    pub fn misspec_per_iteration(&self) -> f64 {
        1.0 - self
            .chosen
            .iter()
            .map(|s| 1.0 - s.misspec_rate)
            .product::<f64>()
    }

    /// Whether any speculation of `kind` was chosen.
    pub fn uses(&self, kind: SpecKind) -> bool {
        self.chosen.iter().any(|s| s.kind == kind)
    }

    /// Number of speculations chosen.
    pub fn len(&self) -> usize {
        self.chosen.len()
    }

    /// Whether no speculation was chosen.
    pub fn is_empty(&self) -> bool {
        self.chosen.is_empty()
    }
}

/// Tuning knobs for speculation selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Maximum acceptable per-edge misspeculation probability.
    pub max_misspec: f64,
    /// Enable alias (and silent-store) speculation.
    pub alias: bool,
    /// Enable value speculation.
    pub value: bool,
    /// Enable control speculation.
    pub control: bool,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            max_misspec: 0.2,
            alias: true,
            value: true,
            control: true,
        }
    }
}

impl SpeculationConfig {
    /// A configuration with all speculation disabled (the no-speculation
    /// ablation).
    pub fn disabled() -> Self {
        Self {
            max_misspec: 0.0,
            alias: false,
            value: false,
            control: false,
        }
    }
}

/// Selects speculations for the carried edges of `pdg`, removes the
/// chosen edges, and returns the set.
///
/// Without profile data nothing is speculated: the paper's framework is
/// profile-driven, and speculating an always-manifesting dependence only
/// buys serialization.
pub fn select(
    program: &Program,
    pdg: &mut LoopPdg,
    profile: Option<&LoopProfile>,
    config: &SpeculationConfig,
) -> SpeculationSet {
    let Some(profile) = profile else {
        return SpeculationSet::default();
    };
    let func = program.function(pdg.func());
    let mut chosen = Vec::new();
    let mut remove = Vec::new();
    for (pos, edge) in pdg.find_edges(|e| e.carried) {
        let pick = match edge.kind {
            DepKind::Mem if config.alias && edge.freq <= config.max_misspec => {
                let kind = if edge.src == edge.dst && is_store(func, pdg, edge.src) {
                    SpecKind::SilentStore
                } else {
                    SpecKind::Alias
                };
                Some((kind, edge.freq))
            }
            DepKind::Reg if config.value => {
                // The carried value is the one defined by the edge's
                // source instruction; speculate if it is iteration-stable.
                value_of(func, pdg, edge.src)
                    .and_then(|v| profile.values.stability(v))
                    .filter(|stability| 1.0 - stability <= config.max_misspec)
                    .map(|stability| (SpecKind::Value, 1.0 - stability))
            }
            DepKind::Control if config.control => match pdg.nodes()[edge.src] {
                PdgNode::Branch(b) => profile
                    .branches
                    .taken_prob(b)
                    .map(|p| p.min(1.0 - p))
                    .filter(|misspec| *misspec <= config.max_misspec)
                    .map(|misspec| (SpecKind::Control, misspec)),
                PdgNode::Inst(_) => None,
            },
            _ => None,
        };
        if let Some((kind, misspec_rate)) = pick {
            chosen.push(Speculation {
                edge,
                kind,
                misspec_rate,
            });
            remove.push(pos);
        }
    }
    pdg.remove_edges(remove);
    SpeculationSet { chosen }
}

fn is_store(func: &seqpar_ir::Function, pdg: &LoopPdg, node: usize) -> bool {
    match pdg.nodes()[node] {
        PdgNode::Inst(i) => matches!(func.inst(i).opcode, Opcode::Store(_)),
        PdgNode::Branch(_) => false,
    }
}

fn value_of(func: &seqpar_ir::Function, pdg: &LoopPdg, node: usize) -> Option<seqpar_ir::ValueId> {
    match pdg.nodes()[node] {
        PdgNode::Inst(i) => func.inst(i).def,
        PdgNode::Branch(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_analysis::profile::LoopProfile;
    use seqpar_ir::{FunctionBuilder, LoopForest, ValueId};

    /// A loop with a memory recurrence (acc), a register recurrence (the
    /// phi), and a biased exit branch.
    struct Fixture {
        program: Program,
        pdg: LoopPdg,
        phi_value: ValueId,
        header: seqpar_ir::BlockId,
    }

    fn fixture(profile: Option<&LoopProfile>) -> Fixture {
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let zero = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(&[zero, zero]); // patched to close the recurrence
        let a = b.global_addr(acc);
        let v = b.load(a);
        b.label_last("load_acc");
        let one = b.const_(1);
        let next = b.binop(Opcode::Add, i, one);
        let sum = b.binop(Opcode::Add, v, next);
        b.store(a, sum);
        b.label_last("store_acc");
        let done = b.binop(Opcode::CmpLe, next, one);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let mut func = b.into_function();
        let header_insts = func.block(header).insts.clone();
        let phi_id = header_insts[0];
        func.inst_mut(phi_id).operands[1] = next;
        let phi_value = func.inst(phi_id).def.unwrap();
        let f = p.add_function(func);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        let pdg = LoopPdg::build(&p, f, &forest, lid, profile);
        Fixture {
            program: p,
            pdg,
            phi_value,
            header,
        }
    }

    #[test]
    fn no_profile_means_no_speculation() {
        let mut fx = fixture(None);
        let set = select(
            &fx.program,
            &mut fx.pdg,
            None,
            &SpeculationConfig::default(),
        );
        assert!(set.is_empty());
        assert_eq!(set.misspec_per_iteration(), 0.0);
    }

    #[test]
    fn rare_memory_dependence_gets_alias_speculation() {
        let mut profile = LoopProfile::with_trip_count(1000);
        // First build once to learn instruction ids for labels.
        let probe = fixture(None);
        let func = probe.program.function(probe.pdg.func());
        profile
            .memory
            .record_by_label(func, "store_acc", "load_acc", 0.02);
        let mut fx = fixture(Some(&profile));
        let set = select(
            &fx.program,
            &mut fx.pdg,
            Some(&profile),
            &SpeculationConfig::default(),
        );
        assert!(set.uses(SpecKind::Alias));
        let alias = set
            .chosen
            .iter()
            .find(|s| s.kind == SpecKind::Alias)
            .unwrap();
        assert!((alias.misspec_rate - 0.02).abs() < 1e-9);
        // The speculated edge is gone from the PDG.
        assert!(!fx
            .pdg
            .edges()
            .any(|e| e.kind == DepKind::Mem && e.carried && (e.freq - 0.02).abs() < 1e-9));
    }

    #[test]
    fn frequent_memory_dependence_is_not_speculated() {
        let mut profile = LoopProfile::with_trip_count(1000);
        let probe = fixture(None);
        let func = probe.program.function(probe.pdg.func());
        profile
            .memory
            .record_by_label(func, "store_acc", "load_acc", 0.9);
        let mut fx = fixture(Some(&profile));
        let set = select(
            &fx.program,
            &mut fx.pdg,
            Some(&profile),
            &SpeculationConfig::default(),
        );
        assert!(!set
            .chosen
            .iter()
            .any(|s| (s.misspec_rate - 0.9).abs() < 1e-9));
    }

    #[test]
    fn stable_register_value_gets_value_speculation() {
        let probe = fixture(None);
        let mut profile = LoopProfile::with_trip_count(1000);
        // The value carried into the phi is the `next` counter; the
        // carried edge's source is the add defining it. Mark *that* value
        // stable (as UnMakeMove does for crafty's search struct).
        let func = probe.program.function(probe.pdg.func());
        let next_def = func
            .inst_ids()
            .filter_map(|i| func.inst(i).def)
            .find(|v| {
                // the operand of the phi coming from the latch
                let phi = func
                    .inst_ids()
                    .find(|i| matches!(func.inst(*i).opcode, Opcode::Phi))
                    .unwrap();
                func.inst(phi).operands[1] == *v
            })
            .unwrap();
        profile.values.record(next_def, 0.99);
        let mut fx = fixture(Some(&profile));
        let set = select(
            &fx.program,
            &mut fx.pdg,
            Some(&profile),
            &SpeculationConfig::default(),
        );
        assert!(set.uses(SpecKind::Value));
        let _ = fx.phi_value;
    }

    #[test]
    fn biased_branch_gets_control_speculation() {
        let probe = fixture(None);
        let mut profile = LoopProfile::with_trip_count(1000);
        profile.branches.record(probe.header, 0.001); // exit almost never taken
        let mut fx = fixture(Some(&profile));
        let set = select(
            &fx.program,
            &mut fx.pdg,
            Some(&profile),
            &SpeculationConfig::default(),
        );
        assert!(set.uses(SpecKind::Control));
        let ctl = set
            .chosen
            .iter()
            .find(|s| s.kind == SpecKind::Control)
            .unwrap();
        assert!((ctl.misspec_rate - 0.001).abs() < 1e-9);
    }

    #[test]
    fn disabled_config_selects_nothing() {
        let probe = fixture(None);
        let mut profile = LoopProfile::with_trip_count(1000);
        let func = probe.program.function(probe.pdg.func());
        profile
            .memory
            .record_by_label(func, "store_acc", "load_acc", 0.0);
        profile.branches.record(probe.header, 0.0);
        let mut fx = fixture(Some(&profile));
        let set = select(
            &fx.program,
            &mut fx.pdg,
            Some(&profile),
            &SpeculationConfig::disabled(),
        );
        assert!(set.is_empty());
    }

    #[test]
    fn misspec_per_iteration_combines_independently() {
        let edge = PdgEdge {
            src: 0,
            dst: 0,
            kind: DepKind::Mem,
            carried: true,
            freq: 0.1,
        };
        let set = SpeculationSet {
            chosen: vec![
                Speculation {
                    edge,
                    kind: SpecKind::Alias,
                    misspec_rate: 0.1,
                },
                Speculation {
                    edge,
                    kind: SpecKind::Alias,
                    misspec_rate: 0.1,
                },
            ],
        };
        assert!((set.misspec_per_iteration() - 0.19).abs() < 1e-9);
        assert_eq!(set.len(), 2);
    }
}
