//! Errors reported by the parallelizer.

use std::error::Error;
use std::fmt;

/// Why a loop could not be parallelized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelizeError {
    /// The function contains no natural loop to parallelize.
    NoLoop {
        /// Name of the function inspected.
        function: String,
    },
    /// Every dependence cycle stayed sequential: no parallel stage could
    /// be formed and pipelining would not help.
    NoParallelStage,
    /// The requested loop id does not exist in the function.
    UnknownLoop,
    /// The computed partition failed `seqpar-lint` at deny level: the
    /// plan would not preserve sequential semantics. Carries the
    /// distinct deny codes (e.g. `SP0004`), sorted.
    Unsound {
        /// Distinct deny-level lint codes, sorted.
        codes: Vec<String>,
    },
}

impl fmt::Display for ParallelizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelizeError::NoLoop { function } => {
                write!(f, "function `{function}` contains no natural loop")
            }
            ParallelizeError::NoParallelStage => {
                write!(f, "no dependence-free stage could be extracted")
            }
            ParallelizeError::UnknownLoop => write!(f, "loop id not found in function"),
            ParallelizeError::Unsound { codes } => {
                write!(
                    f,
                    "partition failed seqpar-lint at deny level: {}",
                    codes.join(", ")
                )
            }
        }
    }
}

impl Error for ParallelizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_prose() {
        let e = ParallelizeError::NoLoop {
            function: "main".into(),
        };
        assert!(e.to_string().contains("main"));
        assert!(!ParallelizeError::NoParallelStage.to_string().is_empty());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<ParallelizeError>();
    }
}
