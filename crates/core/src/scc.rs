//! Strongly connected components of the dependence graph (Tarjan).

/// The SCC decomposition of a directed graph over `0..n` nodes.
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    /// `component[v]` = SCC index of node `v`. SCC indices are in
    /// reverse topological order of the condensation (Tarjan emits sinks
    /// first).
    component: Vec<usize>,
    /// Members of each SCC.
    members: Vec<Vec<usize>>,
}

impl SccDecomposition {
    /// Computes SCCs of the graph with `n` nodes and the given edges
    /// (duplicates and self-loops allowed).
    pub fn compute(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut adj = vec![Vec::new(); n];
        for (s, d) in edges {
            assert!(s < n && d < n, "edge ({s}, {d}) out of range for {n} nodes");
            adj[s].push(d);
        }
        // Iterative Tarjan.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut component = vec![usize::MAX; n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;
        // Call stack: (node, next edge index).
        let mut call: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call.push((start, 0));
            index[start] = counter;
            low[start] = counter;
            counter += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei < adj[v].len() {
                    let w = adj[v][*ei];
                    *ei += 1;
                    if index[w] == usize::MAX {
                        index[w] = counter;
                        low[w] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component[w] = members.len();
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        members.push(comp);
                    }
                }
            }
        }
        Self { component, members }
    }

    /// The SCC index of `node`.
    pub fn component_of(&self, node: usize) -> usize {
        self.component[node]
    }

    /// The members of SCC `c`, in ascending node order.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// The number of SCCs.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// SCC indices in topological order of the condensation (sources
    /// first). Tarjan emits them in reverse topological order, so this is
    /// simply the reverse enumeration.
    pub fn topological(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.members.len()).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_nodes_without_cycles() {
        let scc = SccDecomposition::compute(3, vec![(0, 1), (1, 2)]);
        assert_eq!(scc.count(), 3);
        assert_ne!(scc.component_of(0), scc.component_of(1));
        // Topological order: 0's SCC before 1's before 2's.
        let order: Vec<usize> = scc.topological().collect();
        let pos = |c: usize| order.iter().position(|x| *x == c).unwrap();
        assert!(pos(scc.component_of(0)) < pos(scc.component_of(1)));
        assert!(pos(scc.component_of(1)) < pos(scc.component_of(2)));
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        let scc = SccDecomposition::compute(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(scc.count(), 2);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(1), scc.component_of(2));
        assert_ne!(scc.component_of(2), scc.component_of(3));
        assert_eq!(scc.members(scc.component_of(0)), &[0, 1, 2]);
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let scc = SccDecomposition::compute(2, vec![(0, 0), (0, 1)]);
        assert_eq!(scc.count(), 2);
    }

    #[test]
    fn disconnected_graph_is_handled() {
        let scc = SccDecomposition::compute(5, vec![(3, 4), (4, 3)]);
        assert_eq!(scc.count(), 4);
        assert_eq!(scc.component_of(3), scc.component_of(4));
    }

    #[test]
    fn empty_graph() {
        let scc = SccDecomposition::compute(0, Vec::new());
        assert_eq!(scc.count(), 0);
    }

    #[test]
    fn two_interleaved_cycles_merge() {
        // 0 <-> 1, 1 <-> 2 : all one SCC.
        let scc = SccDecomposition::compute(3, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert_eq!(scc.count(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 100_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let scc = SccDecomposition::compute(n, edges);
        assert_eq!(scc.count(), n);
    }
}
