//! The PS-DSWP partitioner: SCC condensation and three-phase assignment.
//!
//! Decoupled software pipelining partitions the loop-body PDG into stages
//! such that all dependences flow forward through the pipeline. The
//! paper's generalization (§3.2) uses exactly three phases:
//!
//! * **A** — sequential: tasks depend only on prior phase-A tasks;
//! * **B** — parallel: each task depends only on its iteration's phase-A
//!   task, so tasks from different iterations replicate across cores
//!   (this is the "parallel stage" extension that makes DSWP scale);
//! * **C** — sequential: consumes phase-B results in iteration order.
//!
//! An SCC of the (annotation- and speculation-pruned) PDG is *doall* when
//! none of its internal edges is loop-carried: its code can run for many
//! iterations concurrently. The partitioner places the heaviest
//! consistent set of doall SCCs in phase B, their ancestors in phase A,
//! and everything else in phase C.

use crate::scc::SccDecomposition;
use seqpar_analysis::pdg::LoopPdg;
use serde::{Deserialize, Serialize};

/// The paper's three phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Sequential producer stage.
    A,
    /// Replicated parallel stage.
    B,
    /// Sequential consumer stage.
    C,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::A => f.write_str("A"),
            Stage::B => f.write_str("B"),
            Stage::C => f.write_str("C"),
        }
    }
}

/// The result of partitioning one loop PDG.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    stage_of: Vec<Stage>,
    weights: [u64; 3],
    doall_sccs: usize,
    sequential_sccs: usize,
}

impl Partition {
    /// The stage assigned to PDG node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn stage_of(&self, node: usize) -> Stage {
        self.stage_of[node]
    }

    /// Per-node stage assignments in PDG node order.
    pub fn stages(&self) -> &[Stage] {
        &self.stage_of
    }

    /// Total node weight assigned to `stage`.
    pub fn weight(&self, stage: Stage) -> u64 {
        self.weights[stage as usize]
    }

    /// Fraction of one iteration's weight in the parallel stage — the
    /// quantity that bounds scalability (Amdahl over the pipeline).
    pub fn parallel_fraction(&self) -> f64 {
        let total: u64 = self.weights.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.weights[Stage::B as usize] as f64 / total as f64
        }
    }

    /// Number of doall SCCs found in the pruned PDG.
    pub fn doall_scc_count(&self) -> usize {
        self.doall_sccs
    }

    /// Number of sequential (carried-dependence) SCCs.
    pub fn sequential_scc_count(&self) -> usize {
        self.sequential_sccs
    }

    /// Whether a non-empty parallel stage was extracted.
    pub fn has_parallel_stage(&self) -> bool {
        self.weights[Stage::B as usize] > 0
    }
}

/// Renders `pdg` as Graphviz DOT with nodes colored by their assigned
/// stage (A = gold, B = palegreen, C = lightblue) — handy for inspecting
/// why code landed in a sequential phase.
pub fn partition_to_dot(
    program: &seqpar_ir::Program,
    pdg: &LoopPdg,
    partition: &Partition,
) -> String {
    let func = program.function(pdg.func());
    pdg.to_dot(func, |n| {
        let color = match partition.stage_of(n) {
            Stage::A => "gold",
            Stage::B => "palegreen",
            Stage::C => "lightblue",
        };
        format!(", style=filled, fillcolor={color}")
    })
}

/// Partitions `pdg` into the three-phase pipeline.
pub fn partition(pdg: &LoopPdg) -> Partition {
    let n = pdg.node_count();
    let edges: Vec<(usize, usize)> = pdg.edges().map(|e| (e.src, e.dst)).collect();
    let scc = SccDecomposition::compute(n, edges.iter().copied());
    let nscc = scc.count();

    // Doall classification: no internal carried edge.
    let mut doall = vec![true; nscc];
    for e in pdg.edges() {
        if e.carried && scc.component_of(e.src) == scc.component_of(e.dst) {
            doall[scc.component_of(e.src)] = false;
        }
    }
    // SCC weights.
    let mut weight = vec![0u64; nscc];
    for v in 0..n {
        weight[scc.component_of(v)] += pdg.weight(v);
    }
    // Condensation adjacency + DAG reachability (reflexive excluded).
    let mut adj = vec![Vec::new(); nscc];
    for (s, d) in &edges {
        let (cs, cd) = (scc.component_of(*s), scc.component_of(*d));
        if cs != cd && !adj[cs].contains(&cd) {
            adj[cs].push(cd);
        }
    }
    let words = nscc.div_ceil(64).max(1);
    let mut reach = vec![vec![0u64; words]; nscc];
    // Tarjan indices: sinks have low indices, so ascending index order is
    // reverse-topological — exactly what backward propagation needs.
    for u in 0..nscc {
        let mut row = vec![0u64; words];
        for &v in &adj[u] {
            row[v / 64] |= 1 << (v % 64);
            for w in 0..words {
                row[w] |= reach[v][w];
            }
        }
        reach[u] = row;
    }
    let reaches = |r: &Vec<Vec<u64>>, u: usize, v: usize| r[u][v / 64] >> (v % 64) & 1 == 1;

    // Start with every doall SCC in B and evict until consistent:
    // 1. no sequential SCC both descends from and leads back into B,
    // 2. no carried edge between two distinct B members.
    let mut in_b: Vec<bool> = doall.clone();
    loop {
        let mut evict: Option<usize> = None;
        'search: for s in 0..nscc {
            if in_b[s] {
                continue;
            }
            // Sequential SCC s between two B members?
            let b_before: Vec<usize> = (0..nscc)
                .filter(|&b| in_b[b] && reaches(&reach, b, s))
                .collect();
            if b_before.is_empty() {
                continue;
            }
            for b2 in 0..nscc {
                if in_b[b2] && reaches(&reach, s, b2) {
                    // Evict the lighter endpoint.
                    let b1 = *b_before
                        .iter()
                        .min_by_key(|b| weight[**b])
                        .expect("non-empty");
                    evict = Some(if weight[b1] <= weight[b2] { b1 } else { b2 });
                    break 'search;
                }
            }
        }
        if evict.is_none() {
            for e in pdg.edges() {
                if !e.carried {
                    continue;
                }
                let (cs, cd) = (scc.component_of(e.src), scc.component_of(e.dst));
                if cs != cd && in_b[cs] && in_b[cd] {
                    evict = Some(if weight[cs] <= weight[cd] { cs } else { cd });
                    break;
                }
            }
        }
        match evict {
            Some(b) => in_b[b] = false,
            None => break,
        }
    }

    // A = strict ancestors of B; C = the rest.
    let mut stage_scc = vec![Stage::C; nscc];
    for c in 0..nscc {
        if in_b[c] {
            stage_scc[c] = Stage::B;
        } else if (0..nscc).any(|b| in_b[b] && reaches(&reach, c, b)) {
            stage_scc[c] = Stage::A;
        }
    }
    // With no parallel stage at all, everything is one sequential phase A.
    if !in_b.iter().any(|b| *b) {
        stage_scc.iter_mut().for_each(|s| *s = Stage::A);
    }

    let stage_of: Vec<Stage> = (0..n).map(|v| stage_scc[scc.component_of(v)]).collect();
    let mut weights = [0u64; 3];
    for v in 0..n {
        weights[stage_of[v] as usize] += pdg.weight(v);
    }
    Partition {
        stage_of,
        weights,
        doall_sccs: doall.iter().filter(|d| **d).count(),
        sequential_sccs: doall.iter().filter(|d| !**d).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_analysis::pdg::{DepKind, PdgEdge};
    use seqpar_ir::{ExternEffect, FunctionBuilder, LoopForest, Opcode, Program};

    /// A classic pipeline loop: read (sequential counter), process
    /// (independent heavy work), write (sequential output append).
    fn pipeline_pdg() -> LoopPdg {
        let mut p = Program::new("t");
        let cursor = p.add_global("cursor", 1);
        let out = p.add_global("out", 1);
        p.declare_extern("process", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        // Phase-A shaped: cursor = cursor + 1 (carried memory recurrence).
        let ac = b.global_addr(cursor);
        let cur = b.load(ac);
        let one = b.const_(1);
        let nxt = b.binop(Opcode::Add, cur, one);
        b.store(ac, nxt);
        // Phase-B shaped: heavy pure call on the item.
        let processed = b.call_ext("process", &[nxt], None);
        b.label_last("process");
        // Phase-C shaped: append to output (carried recurrence on out).
        let ao = b.global_addr(out);
        let tail = b.load(ao);
        let merged = b.binop(Opcode::Add, tail, processed);
        b.store(ao, merged);
        let done = b.binop(Opcode::CmpLe, nxt, one);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        LoopPdg::build(&p, f, &forest, lid, None)
    }

    fn node_labelled(pdg: &LoopPdg, program_label: &str) -> usize {
        // Only used with the fixture above where labels are unique.
        let _ = program_label;
        (0..pdg.node_count())
            .find(|&n| pdg.weight(n) == 8) // the call is the only weight-8 node
            .unwrap()
    }

    #[test]
    fn pure_call_lands_in_the_parallel_stage() {
        let pdg = pipeline_pdg();
        let part = partition(&pdg);
        assert!(part.has_parallel_stage());
        let call = node_labelled(&pdg, "process");
        assert_eq!(part.stage_of(call), Stage::B);
    }

    #[test]
    fn carried_recurrences_stay_sequential() {
        let pdg = pipeline_pdg();
        let part = partition(&pdg);
        assert!(
            part.sequential_scc_count() >= 2,
            "cursor and out recurrences"
        );
        // Producer recurrence must come before the call (stage A), the
        // output recurrence after it (stage C).
        assert!(part.weight(Stage::A) > 0);
        assert!(part.weight(Stage::C) > 0);
    }

    #[test]
    fn parallel_fraction_is_meaningful() {
        let pdg = pipeline_pdg();
        let part = partition(&pdg);
        let f = part.parallel_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f}");
        let total: u64 = [Stage::A, Stage::B, Stage::C]
            .iter()
            .map(|s| part.weight(*s))
            .sum();
        assert_eq!(total, pdg.total_weight());
    }

    #[test]
    fn fully_sequential_loop_collapses_to_phase_a() {
        // A loop that is one big recurrence.
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let a = b.global_addr(acc);
        let v = b.load(a);
        let one = b.const_(1);
        let n = b.binop(Opcode::Add, v, one);
        b.store(a, n);
        let done = b.binop(Opcode::CmpLe, n, one);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let part = partition(&pdg);
        assert!(!part.has_parallel_stage());
        assert_eq!(part.weight(Stage::A), pdg.total_weight());
        assert_eq!(part.parallel_fraction(), 0.0);
    }

    #[test]
    fn carried_edge_between_doall_sccs_evicts_one() {
        let mut pdg = pipeline_pdg();
        let part_before = partition(&pdg);
        assert!(part_before.has_parallel_stage());
        // Fabricate a carried edge from the parallel call to itself via a
        // second doall node — here, onto the call directly, making its
        // SCC sequential.
        let call = node_labelled(&pdg, "process");
        pdg.add_edge(PdgEdge {
            src: call,
            dst: call,
            kind: DepKind::Mem,
            carried: true,
            freq: 1.0,
        });
        let part_after = partition(&pdg);
        assert_ne!(part_after.stage_of(call), Stage::B);
        assert!(part_after.weight(Stage::B) < part_before.weight(Stage::B));
    }

    #[test]
    fn partition_dot_colors_every_stage() {
        let mut p = seqpar_ir::Program::new("t");
        let cursor = p.add_global("cursor", 1);
        let out = p.add_global("out", 1);
        p.declare_extern("process", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let ac = b.global_addr(cursor);
        let cur = b.load(ac);
        let one = b.const_(1);
        let nxt = b.binop(Opcode::Add, cur, one);
        b.store(ac, nxt);
        let processed = b.call_ext("process", &[nxt], None);
        let ao = b.global_addr(out);
        let tail = b.load(ao);
        let merged = b.binop(Opcode::Add, tail, processed);
        b.store(ao, merged);
        let done = b.binop(Opcode::CmpLe, nxt, one);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let part = partition(&pdg);
        let dot = partition_to_dot(&p, &pdg, &part);
        assert!(dot.contains("fillcolor=gold"));
        assert!(dot.contains("fillcolor=palegreen"));
        assert!(dot.contains("fillcolor=lightblue"));
    }

    #[test]
    fn stage_weights_cover_every_node() {
        let pdg = pipeline_pdg();
        let part = partition(&pdg);
        assert_eq!(part.stages().len(), pdg.node_count());
    }
}
