//! Reduction expansion (paper §2.1, citing Mahlke et al. and Ottoni et
//! al.).
//!
//! A reduction is a loop-carried cycle through an associative,
//! commutative operator — `sum += f(i)`, `count += 1`, `prod *= x` —
//! either through a register phi or through a memory accumulator. The
//! cycle is real, but because the operator is associative the compiler
//! may compute partial results privately per thread and combine them at
//! the end, so the carried dependence does not have to serialize the
//! loop. This pass recognizes both reduction shapes and removes their
//! carried edges from the PDG.

use seqpar_analysis::pdg::{DepKind, LoopPdg, PdgNode};
use seqpar_ir::{Opcode, Program};

/// Outcome of the reduction-expansion pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReductionOutcome {
    /// Register (phi-carried) reductions expanded.
    pub register_reductions: usize,
    /// Memory (load-op-store) reductions expanded.
    pub memory_reductions: usize,
    /// Carried edges removed.
    pub edges_removed: usize,
    /// PDG nodes whose memory accesses are privatized per worker by the
    /// expansion (the accumulator's load and store). `seqpar-lint`'s
    /// race checker exempts conflicts confined to these nodes.
    pub privatized_nodes: Vec<usize>,
}

impl ReductionOutcome {
    /// Whether anything was expanded.
    pub fn any(&self) -> bool {
        self.register_reductions + self.memory_reductions > 0
    }
}

fn is_associative(op: &Opcode) -> bool {
    matches!(
        op,
        Opcode::Add | Opcode::Mul | Opcode::And | Opcode::Or | Opcode::Xor
    )
}

/// Detects and expands reductions in `pdg`, removing the carried edges of
/// each recognized accumulator cycle.
///
/// Register form: a header phi `p` whose back-edge input is an
/// associative op that itself consumes `p`. Memory form: a load feeding
/// an associative op whose result is stored back through a may-alias
/// reference, with no other consumer of the load inside the loop.
pub fn apply_reductions(program: &Program, pdg: &mut LoopPdg) -> ReductionOutcome {
    let func = program.function(pdg.func());
    let mut outcome = ReductionOutcome::default();
    let mut remove = Vec::new();

    // --- Register reductions: carried Reg edge op -> phi where the op is
    // associative and uses the phi's value.
    for (pos, e) in pdg.find_edges(|e| e.carried && e.kind == DepKind::Reg) {
        let (PdgNode::Inst(src), PdgNode::Inst(dst)) = (pdg.nodes()[e.src], pdg.nodes()[e.dst])
        else {
            continue;
        };
        let op = func.inst(src);
        let phi = func.inst(dst);
        if !matches!(phi.opcode, Opcode::Phi) || !is_associative(&op.opcode) {
            continue;
        }
        let Some(phi_val) = phi.def else { continue };
        if op.operands.contains(&phi_val) {
            outcome.register_reductions += 1;
            remove.push(pos);
        }
    }

    // --- Memory reductions: the carried Mem cycle store -> load where
    // the load's only role is to feed an associative op that produces the
    // stored value.
    let loads_feeding_reduction: Vec<(usize, usize)> = {
        let mut pairs = Vec::new();
        for store_node in 0..pdg.node_count() {
            let PdgNode::Inst(store_id) = pdg.nodes()[store_node] else {
                continue;
            };
            let store = func.inst(store_id);
            if !matches!(store.opcode, Opcode::Store(_)) {
                continue;
            }
            // Stored value must come from an associative op...
            let Some(&stored) = store.operands.first() else {
                continue;
            };
            let Some(op_id) = func.def_of(stored) else {
                continue;
            };
            let op = func.inst(op_id);
            if !is_associative(&op.opcode) {
                continue;
            }
            // ...one of whose operands is a load from the same location
            // (approximated: a load with a memory edge to this store).
            for &src_val in &op.operands {
                let Some(load_id) = func.def_of(src_val) else {
                    continue;
                };
                if !matches!(func.inst(load_id).opcode, Opcode::Load(_)) {
                    continue;
                }
                let Some(load_node) = pdg.index_of(PdgNode::Inst(load_id)) else {
                    continue;
                };
                let connected = pdg.edges().any(|e| {
                    e.kind == DepKind::Mem
                        && ((e.src == store_node && e.dst == load_node)
                            || (e.src == load_node && e.dst == store_node))
                });
                // The load must feed nothing but the reduction op inside
                // the loop: any other consumer observes intermediate
                // values and forbids privatization.
                let load_val = func.inst(load_id).def;
                let exclusive = load_val.is_some_and(|lv| {
                    !func.inst_ids().any(|i| {
                        i != op_id
                            && pdg.index_of(PdgNode::Inst(i)).is_some()
                            && func.inst(i).operands.contains(&lv)
                    })
                });
                if connected && exclusive {
                    pairs.push((store_node, load_node));
                }
            }
        }
        pairs
    };
    for (store_node, load_node) in loads_feeding_reduction {
        let cycle_edges = pdg.find_edges(|e| {
            e.carried
                && e.kind == DepKind::Mem
                && e.src == store_node
                && (e.dst == load_node || e.dst == store_node)
        });
        if !cycle_edges.is_empty() {
            outcome.memory_reductions += 1;
            outcome.privatized_nodes.push(store_node);
            outcome.privatized_nodes.push(load_node);
            remove.extend(cycle_edges.into_iter().map(|(i, _)| i));
        }
    }
    outcome.privatized_nodes.sort_unstable();
    outcome.privatized_nodes.dedup();

    remove.sort_unstable();
    remove.dedup();
    outcome.edges_removed = remove.len();
    pdg.remove_edges(remove);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_analysis::pdg::LoopPdg;
    use seqpar_ir::{BlockId, ExternEffect, FunctionBuilder, LoopForest, Program, ValueId};

    /// sum-loop with a *register* accumulator: s = phi(0, s + f(i)).
    fn register_reduction_loop() -> (Program, seqpar_ir::FuncId) {
        let mut p = Program::new("t");
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("sum");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let zero = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        let s = b.phi(&[zero, ValueId::new(99)]);
        let x = b.call_ext("f", &[s], None);
        let next = b.binop(Opcode::Add, s, x);
        let done = b.binop(Opcode::CmpEq, x, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let mut func = b.into_function();
        let phi_id = func.block(BlockId::new(1)).insts[0];
        func.inst_mut(phi_id).operands[1] = next;
        let f = p.add_function(func);
        (p, f)
    }

    /// sum-loop with a *memory* accumulator: *acc += f(i).
    fn memory_reduction_loop() -> (Program, seqpar_ir::FuncId) {
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("sum");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let x = b.call_ext("f", &[], None);
        let a = b.global_addr(acc);
        let cur = b.load(a);
        let next = b.binop(Opcode::Add, cur, x);
        b.store(a, next);
        let zero = b.const_(0);
        let done = b.binop(Opcode::CmpEq, x, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        (p, f)
    }

    fn pdg_of(p: &Program, f: seqpar_ir::FuncId) -> LoopPdg {
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        LoopPdg::build(p, f, &forest, lid, None)
    }

    #[test]
    fn register_reduction_is_recognized() {
        let (p, f) = register_reduction_loop();
        let mut pdg = pdg_of(&p, f);
        let outcome = apply_reductions(&p, &mut pdg);
        assert_eq!(outcome.register_reductions, 1);
        assert!(outcome.edges_removed > 0);
        // The add -> phi carried edge is gone.
        assert!(!pdg.edges().any(|e| e.carried && e.kind == DepKind::Reg));
    }

    #[test]
    fn memory_reduction_is_recognized() {
        let (p, f) = memory_reduction_loop();
        let mut pdg = pdg_of(&p, f);
        let before = pdg
            .edges()
            .filter(|e| e.carried && e.kind == DepKind::Mem)
            .count();
        assert!(before > 0);
        let outcome = apply_reductions(&p, &mut pdg);
        assert_eq!(outcome.memory_reductions, 1);
        // The store->load and store->store carried edges are gone.
        let after = pdg
            .edges()
            .filter(|e| e.carried && e.kind == DepKind::Mem)
            .count();
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn non_associative_updates_are_left_alone() {
        // *acc = f() - *acc: subtraction is not associative.
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let x = b.call_ext("f", &[], None);
        let a = b.global_addr(acc);
        let cur = b.load(a);
        let next = b.binop(Opcode::Sub, x, cur);
        b.store(a, next);
        let zero = b.const_(0);
        let done = b.binop(Opcode::CmpEq, x, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let mut pdg = pdg_of(&p, f);
        let outcome = apply_reductions(&p, &mut pdg);
        assert!(!outcome.any());
    }

    #[test]
    fn loads_with_other_consumers_are_not_privatized() {
        // The running value is also printed each iteration: intermediate
        // sums are observable, so the reduction must not expand.
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        let out = p.add_global("out", 1);
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let x = b.call_ext("f", &[], None);
        let a = b.global_addr(acc);
        let cur = b.load(a);
        let next = b.binop(Opcode::Add, cur, x);
        b.store(a, next);
        let ao = b.global_addr(out);
        b.store(ao, cur); // second consumer of the load
        let zero = b.const_(0);
        let done = b.binop(Opcode::CmpEq, x, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let mut pdg = pdg_of(&p, f);
        let outcome = apply_reductions(&p, &mut pdg);
        assert_eq!(outcome.memory_reductions, 0);
    }

    #[test]
    fn expansion_unlocks_doall_for_the_sum_loop() {
        use crate::dswp::partition;
        let (p, f) = memory_reduction_loop();
        let mut pdg = pdg_of(&p, f);
        let before = partition(&pdg);
        apply_reductions(&p, &mut pdg);
        let after = partition(&pdg);
        assert!(
            after.parallel_fraction() > before.parallel_fraction(),
            "expansion must grow the parallel stage: {} -> {}",
            before.parallel_fraction(),
            after.parallel_fraction()
        );
    }
}
