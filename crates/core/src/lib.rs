//! `seqpar` — speculative pipelined thread extraction from sequential
//! programs.
//!
//! This crate implements the automatic-parallelization framework of
//! *Bridges, Vachharajani, Zhang, Jablin, August — "Revisiting the
//! Sequential Programming Model for Multi-Core", MICRO 2007*: the
//! combination of existing compiler and hardware techniques (§2.1–2.2)
//! plus two small extensions to the sequential programming model (§2.3)
//! that together parallelized all of SPEC CINT2000.
//!
//! The pieces, bottom to top:
//!
//! * [`annotations`] — the **Y-branch** and **Commutative** extensions:
//!   passes that erase the artificial dependences these annotations
//!   declare removable;
//! * [`speculation`] — selection of alias/value/control/silent-store
//!   speculation candidates from profile data;
//! * [`scc`] — strongly connected components of the dependence graph;
//! * [`dswp`] — the PS-DSWP partitioner: condenses the PDG into an SCC
//!   DAG and splits it into the paper's three phases — sequential **A**,
//!   replicated parallel **B**, sequential **C** (§3.2);
//! * [`pipeline`] — turning a partition plus a measured
//!   [`pipeline::IterationTrace`] into a task graph and execution plan for
//!   the [`seqpar_runtime`] simulator;
//! * [`tls`] — the TLS-style baseline parallelization;
//! * [`parallelizer`] — the [`Parallelizer`] facade tying it together;
//! * [`report`] — which techniques a parallelization used (Table 1).
//!
//! # Example
//!
//! ```
//! use seqpar::{Parallelizer, SpeculationConfig};
//! use seqpar_ir::{FunctionBuilder, Program, Opcode, CommGroupId};
//!
//! // A loop whose only cross-iteration dependence is a commutative RNG.
//! let mut program = Program::new("demo");
//! program.declare_extern("rng", seqpar_ir::ExternEffect::pure_fn());
//! let sink = program.add_global("sink", 64);
//! let mut b = FunctionBuilder::new("loop");
//! let header = b.add_block("header");
//! let exit = b.add_block("exit");
//! b.jump(header);
//! b.switch_to(header);
//! let r = b.call_ext("rng", &[], Some(CommGroupId(0)));
//! let base = b.global_addr(sink);
//! let slot = b.gep(base, r);
//! b.store(slot, r);
//! let done = b.binop(Opcode::CmpEq, r, r);
//! b.cond_branch(done, exit, header);
//! b.switch_to(exit);
//! b.ret(None);
//! let func = b.finish(&mut program);
//!
//! let result = Parallelizer::new(&program)
//!     .speculation(SpeculationConfig::default())
//!     .parallelize_outermost(func)
//!     .expect("loop is parallelizable");
//! assert!(result.report().parallel_fraction() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod annotations;
pub mod dswp;
pub mod error;
pub mod invariants;
pub mod parallelizer;
pub mod pipeline;
pub mod reductions;
pub mod region;
pub mod report;
pub mod scc;
pub mod speculation;
pub mod tls;

pub use annotations::{apply_commutative, apply_ybranch};
pub use dswp::{partition_to_dot, Partition, Stage};
pub use error::ParallelizeError;
pub use invariants::prune_constant_carried_edges;
pub use parallelizer::{ParallelizedLoop, Parallelizer};
pub use pipeline::{IterationRecord, IterationTrace};
pub use reductions::{apply_reductions, ReductionOutcome};
pub use region::{form_region, inline_call, InlineError, RegionOutcome};
pub use report::{ParallelizationReport, Technique};
pub use speculation::{SpecKind, Speculation, SpeculationConfig, SpeculationSet};
