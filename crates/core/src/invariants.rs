//! Dependence pruning from proven value facts (paper §2.1).
//!
//! "Proving two memory operations do not conflict or proving that a
//! variable holds a constant value at a certain program point can be
//! invaluable in unlocking parallelism." Alias proofs happen inside the
//! dependence analysis; this pass handles the value half: a loop-carried
//! register dependence whose carried value is a *compile-time constant*
//! transfers the same value every iteration, so consumers need not wait —
//! the edge is removed outright, with no speculation and no
//! misspeculation risk.

use seqpar_analysis::pdg::{DepKind, LoopPdg, PdgNode};
use seqpar_analysis::value_range::ValueFacts;
use seqpar_ir::Program;

/// Removes carried register edges whose carried value is proven constant.
/// Returns how many edges were pruned.
pub fn prune_constant_carried_edges(program: &Program, pdg: &mut LoopPdg) -> usize {
    let func = program.function(pdg.func());
    let facts = ValueFacts::analyze(func);
    let removable = pdg.find_edges(|e| {
        if !e.carried || e.kind != DepKind::Reg {
            return false;
        }
        let PdgNode::Inst(src) = pdg.nodes()[e.src] else {
            return false;
        };
        func.inst(src).def.is_some_and(|v| facts.is_const(v))
    });
    let count = removable.len();
    pdg.remove_edges(removable.into_iter().map(|(i, _)| i).collect());
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{BlockId, ExternEffect, FunctionBuilder, LoopForest, Opcode, Program, ValueId};

    /// A loop whose header phi re-receives a constant every iteration
    /// (a flag reset at the bottom of the body), plus a genuine counter.
    fn fixture() -> (Program, seqpar_ir::FuncId) {
        let mut p = Program::new("t");
        p.declare_extern("f", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let zero = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        let flag = b.phi(&[zero, ValueId::new(90)]); // patched: constant back-input
        let count = b.phi(&[zero, ValueId::new(91)]); // patched: real counter
        let reset = b.const_(0); // the body always resets the flag
        let one = b.const_(1);
        let next = b.binop(Opcode::Add, count, one);
        let used = b.binop(Opcode::Or, flag, next);
        let done = b.binop(Opcode::CmpEq, used, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let mut func = b.into_function();
        let insts = func.block(BlockId::new(1)).insts.clone();
        let flag_phi = insts[0];
        let count_phi = insts[1];
        func.inst_mut(flag_phi).operands[1] = reset;
        func.inst_mut(count_phi).operands[1] = next;
        let f = p.add_function(func);
        (p, f)
    }

    fn pdg_of(p: &Program, f: seqpar_ir::FuncId) -> LoopPdg {
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        LoopPdg::build(p, f, &forest, lid, None)
    }

    #[test]
    fn constant_carried_flag_is_pruned_but_counter_survives() {
        let (p, f) = fixture();
        let mut pdg = pdg_of(&p, f);
        let carried_before = pdg
            .edges()
            .filter(|e| e.carried && e.kind == DepKind::Reg)
            .count();
        assert!(carried_before >= 2, "flag and counter recurrences");
        let pruned = prune_constant_carried_edges(&p, &mut pdg);
        assert_eq!(pruned, 1, "exactly the constant flag edge");
        // The counter's carried edge must survive: its value changes.
        assert!(pdg.edges().any(|e| e.carried && e.kind == DepKind::Reg));
    }

    #[test]
    fn pruning_is_idempotent() {
        let (p, f) = fixture();
        let mut pdg = pdg_of(&p, f);
        assert_eq!(prune_constant_carried_edges(&p, &mut pdg), 1);
        assert_eq!(prune_constant_carried_edges(&p, &mut pdg), 0);
    }

    #[test]
    fn loops_without_constants_are_untouched() {
        // Pure counter loop: nothing is provably constant.
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let zero = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        let count = b.phi(&[zero, ValueId::new(90)]);
        let one = b.const_(1);
        let next = b.binop(Opcode::Add, count, one);
        let done = b.binop(Opcode::CmpEq, next, zero);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let mut func = b.into_function();
        let phi_id = func.block(BlockId::new(1)).insts[0];
        func.inst_mut(phi_id).operands[1] = next;
        let f = p.add_function(func);
        let mut pdg = pdg_of(&p, f);
        assert_eq!(prune_constant_carried_edges(&p, &mut pdg), 0);
    }
}
