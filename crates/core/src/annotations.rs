//! Application of the sequential-model extensions (paper §2.3).
//!
//! These passes run over a [`LoopPdg`] *before* partitioning and erase the
//! dependences that the annotations declare removable:
//!
//! * **Commutative** (§2.3.2): calls in the same commutative group may
//!   execute in any order; outside the function, outputs depend only on
//!   inputs. The pass removes memory dependences between same-group call
//!   sites — including the carried self-dependence of a single call site,
//!   which is exactly the `seed` recurrence of 300.twolf's `Yacm_random`
//!   in Figure 2.
//! * **Y-branch** (§2.3.1): the true path may be taken at any dynamic
//!   instance, so downstream code need not wait on the branch's computed
//!   condition, and the state feeding the condition no longer serializes
//!   iterations. The pass removes the annotated branch's outgoing control
//!   dependences and its incoming carried dependences.

use seqpar_analysis::pdg::{DepKind, LoopPdg, PdgNode};
use seqpar_ir::{CommGroupId, Program, Terminator};

/// Outcome of the Commutative pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommutativeOutcome {
    /// Edges removed.
    pub edges_removed: usize,
    /// Groups that had at least one edge removed.
    pub groups_applied: Vec<CommGroupId>,
}

/// Removes memory dependences between calls of the same commutative
/// group.
///
/// The calls still execute atomically with respect to one another (the
/// runtime serializes group members through non-transactional memory with
/// an undo log — see `seqpar_specmem::UndoLog`), but the *ordering*
/// dependence is gone, which is what blocks parallelization.
pub fn apply_commutative(pdg: &mut LoopPdg) -> CommutativeOutcome {
    let groups: Vec<Option<CommGroupId>> = (0..pdg.node_count())
        .map(|n| pdg.commutative_group(n))
        .collect();
    let removable = pdg.find_edges(|e| {
        e.kind == DepKind::Mem
            && match (groups[e.src], groups[e.dst]) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
    });
    let mut applied: Vec<CommGroupId> = removable
        .iter()
        .filter_map(|(_, e)| groups[e.src])
        .collect();
    applied.sort();
    applied.dedup();
    let edges_removed = removable.len();
    pdg.remove_edges(removable.into_iter().map(|(i, _)| i).collect());
    CommutativeOutcome {
        edges_removed,
        groups_applied: applied,
    }
}

/// Outcome of the Y-branch pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct YBranchOutcome {
    /// Edges removed.
    pub edges_removed: usize,
    /// Annotated branches that had edges removed, with the forced-path
    /// interval implied by their probability hint.
    pub branches_applied: Vec<u64>,
}

/// Removes the dependences an annotated Y-branch declares removable.
///
/// For every branch node carrying a [`seqpar_ir::YBranchHint`]:
///
/// * its outgoing **control** edges are removed — the compiler may force
///   the true path, so consumers need not wait for the real condition;
/// * its incoming **carried** edges are removed — the cross-iteration
///   state feeding the condition (e.g. "is the dictionary still
///   profitable?") no longer orders iterations, because the compiler
///   re-blocks the input at the interval the hint allows;
/// * carried **memory** edges through the state the true path resets are
///   removed: since the compiler may force the reset at boundaries of its
///   choosing, that state is privatizable per block — exactly how the
///   dictionary dependence disappears in Figure 1 and in 164.gzip. The
///   reset state is identified as anything memory-connected to the
///   true-path block's instructions.
pub fn apply_ybranch(program: &Program, pdg: &mut LoopPdg) -> YBranchOutcome {
    let annotated: Vec<(usize, u64)> = (0..pdg.node_count())
        .filter_map(|n| pdg.ybranch_hint(n).map(|h| (n, h.interval())))
        .collect();
    if annotated.is_empty() {
        return YBranchOutcome::default();
    }
    let func = program.function(pdg.func());
    // Nodes on the true paths of the annotated branches.
    let mut reset_nodes = vec![false; pdg.node_count()];
    for (n, _) in &annotated {
        let PdgNode::Branch(block) = pdg.nodes()[*n] else {
            continue;
        };
        if let Terminator::CondBranch { then_block, .. } = &func.block(block).terminator {
            for &i in &func.block(*then_block).insts {
                if let Some(idx) = pdg.index_of(PdgNode::Inst(i)) {
                    reset_nodes[idx] = true;
                }
            }
        }
    }
    // Expand to everything memory-connected to the reset region: that is
    // the state the forced path reinitializes.
    let mut reset_state = reset_nodes.clone();
    for e in pdg.find_edges(|e| e.kind == DepKind::Mem) {
        let e = e.1;
        if reset_nodes[e.src] {
            reset_state[e.dst] = true;
        }
        if reset_nodes[e.dst] {
            reset_state[e.src] = true;
        }
    }
    let is_annotated = |n: usize| annotated.iter().any(|(b, _)| *b == n);
    let removable = pdg.find_edges(|e| {
        (is_annotated(e.src) && e.kind == DepKind::Control)
            || (is_annotated(e.dst) && e.carried)
            || (e.kind == DepKind::Mem && e.carried && (reset_state[e.src] || reset_state[e.dst]))
    });
    let edges_removed = removable.len();
    pdg.remove_edges(removable.into_iter().map(|(i, _)| i).collect());
    YBranchOutcome {
        edges_removed,
        branches_applied: annotated
            .into_iter()
            .map(|(_, interval)| interval)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_analysis::pdg::PdgEdge;
    use seqpar_ir::{
        CommGroupId, ExternEffect, FunctionBuilder, LoopForest, Opcode, Program, YBranchHint,
    };

    /// The paper's Figure 2: a loop calling an RNG with an internal seed
    /// recurrence, annotated Commutative.
    fn twolf_rng_loop(commutative: bool) -> LoopPdg {
        let mut p = Program::new("twolf");
        let seed = p.add_global("randVarS", 1);
        p.declare_extern(
            "Yacm_random",
            ExternEffect {
                reads: vec![seed],
                writes: vec![seed],
                ..Default::default()
            },
        );
        let mut b = FunctionBuilder::new("uloop");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let group = commutative.then_some(CommGroupId(7));
        let r = b.call_ext("Yacm_random", &[], group);
        let done = b.binop(Opcode::CmpEq, r, r);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        LoopPdg::build(&p, f, &forest, lid, None)
    }

    #[test]
    fn commutative_removes_the_rng_seed_recurrence() {
        let mut pdg = twolf_rng_loop(true);
        let carried_mem_before = pdg
            .edges()
            .filter(|e| e.kind == DepKind::Mem && e.carried)
            .count();
        assert!(
            carried_mem_before > 0,
            "the seed recurrence must exist first"
        );
        let outcome = apply_commutative(&mut pdg);
        assert_eq!(outcome.groups_applied, vec![CommGroupId(7)]);
        assert!(outcome.edges_removed >= carried_mem_before);
        assert_eq!(
            pdg.edges()
                .filter(|e| e.kind == DepKind::Mem && e.carried)
                .count(),
            0
        );
    }

    #[test]
    fn unannotated_rng_keeps_its_recurrence() {
        let mut pdg = twolf_rng_loop(false);
        let outcome = apply_commutative(&mut pdg);
        assert_eq!(outcome.edges_removed, 0);
        assert!(pdg.edges().any(|e| e.kind == DepKind::Mem && e.carried));
    }

    #[test]
    fn different_groups_are_not_merged() {
        // Two calls touching the same global but in *different* groups:
        // their mutual dependence must survive.
        let mut p = Program::new("t");
        let g = p.add_global("shared", 1);
        p.declare_extern(
            "alloc_a",
            ExternEffect {
                reads: vec![g],
                writes: vec![g],
                ..Default::default()
            },
        );
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let x = b.call_ext("alloc_a", &[], Some(CommGroupId(1)));
        let _y = b.call_ext("alloc_a", &[], Some(CommGroupId(2)));
        let done = b.binop(Opcode::CmpEq, x, x);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        let mut pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let outcome = apply_commutative(&mut pdg);
        // Only the self-edges of each call (same group as itself) are
        // removable; the cross-call edges remain.
        assert!(outcome.edges_removed > 0);
        let cross_edges = pdg
            .edges()
            .filter(|e| e.kind == DepKind::Mem && e.src != e.dst)
            .count();
        assert!(cross_edges > 0, "cross-group dependences must survive");
    }

    /// Figure 1's dictionary-reset loop with a Y-branch.
    fn gzip_ybranch_loop(annotated: bool) -> (Program, LoopPdg) {
        let mut p = Program::new("gzip");
        let dict = p.add_global("dict", 1);
        p.declare_extern(
            "compress",
            ExternEffect {
                reads: vec![dict],
                writes: vec![dict],
                ..Default::default()
            },
        );
        let mut b = FunctionBuilder::new("deflate");
        let header = b.add_block("header");
        let reset = b.add_block("reset");
        let latch = b.add_block("latch");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let profitable = b.call_ext("compress", &[], None);
        if annotated {
            b.ybranch(profitable, reset, latch, YBranchHint::new(0.00001));
        } else {
            b.cond_branch(profitable, reset, latch);
        }
        b.switch_to(reset);
        let addr = b.global_addr(dict);
        let zero = b.const_(0);
        b.store(addr, zero);
        b.jump(latch);
        b.switch_to(latch);
        let done = b.binop(Opcode::CmpEq, profitable, profitable);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().unwrap();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        (p, pdg)
    }

    #[test]
    fn ybranch_erases_control_and_incoming_carried_edges() {
        let (p, mut pdg) = gzip_ybranch_loop(true);
        let outcome = apply_ybranch(&p, &mut pdg);
        assert_eq!(outcome.branches_applied, vec![100_000]);
        assert!(outcome.edges_removed > 0);
    }

    #[test]
    fn ybranch_breaks_the_dictionary_recurrence() {
        // The compress call reads and writes the dictionary: without the
        // annotation it has a carried self-dependence; the Y-branch makes
        // the dictionary block-privatizable.
        let (p, mut pdg) = gzip_ybranch_loop(true);
        let call = (0..pdg.node_count())
            .find(|&n| pdg.weight(n) == 8)
            .expect("the compress call");
        assert!(pdg
            .edges()
            .any(|e| e.src == call && e.dst == call && e.carried));
        apply_ybranch(&p, &mut pdg);
        assert!(!pdg
            .edges()
            .any(|e| e.src == call && e.dst == call && e.carried));
    }

    #[test]
    fn plain_branch_is_untouched() {
        let (p, mut pdg) = gzip_ybranch_loop(false);
        let before = pdg.edges().count();
        let outcome = apply_ybranch(&p, &mut pdg);
        assert_eq!(outcome.edges_removed, 0);
        assert_eq!(pdg.edges().count(), before);
    }

    #[test]
    fn ybranch_pass_is_idempotent() {
        let (p, mut pdg) = gzip_ybranch_loop(true);
        let first = apply_ybranch(&p, &mut pdg);
        let second = apply_ybranch(&p, &mut pdg);
        assert!(first.edges_removed > 0);
        assert_eq!(second.edges_removed, 0);
    }

    #[test]
    fn commutative_ignores_reg_and_control_edges() {
        let mut pdg = twolf_rng_loop(true);
        apply_commutative(&mut pdg);
        // Register edge from the call's result to the compare remains.
        assert!(pdg.edges().any(|e| e.kind == DepKind::Reg));
    }

    #[test]
    fn manual_edge_between_group_members_is_removed() {
        let mut pdg = twolf_rng_loop(true);
        apply_commutative(&mut pdg);
        // Re-add a synthetic mem edge on the commutative call and check a
        // second pass removes it again.
        let call = (0..pdg.node_count())
            .find(|&n| pdg.commutative_group(n).is_some())
            .unwrap();
        pdg.add_edge(PdgEdge {
            src: call,
            dst: call,
            kind: DepKind::Mem,
            carried: true,
            freq: 1.0,
        });
        let outcome = apply_commutative(&mut pdg);
        assert_eq!(outcome.edges_removed, 1);
    }
}
