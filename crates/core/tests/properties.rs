//! Property-based tests for the thread-extraction machinery: SCC
//! decomposition against brute force, and partition invariants over
//! randomly generated loop bodies.

use proptest::prelude::*;
use seqpar::dswp::{partition, Stage};
use seqpar::scc::SccDecomposition;
use seqpar_analysis::pdg::LoopPdg;
use seqpar_ir::{ExternEffect, FunctionBuilder, LoopForest, Opcode, Program};

/// Brute-force reachability on a small graph.
#[allow(clippy::needless_range_loop)]
fn reachable(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for i in 0..n {
        r[i][i] = true;
    }
    for &(a, b) in edges {
        r[a][b] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                r[i][j] |= r[i][k] && r[k][j];
            }
        }
    }
    r
}

proptest! {
    /// Two nodes share an SCC exactly when they are mutually reachable.
    #[test]
    #[allow(clippy::needless_range_loop)] // brute-force style on purpose
    fn scc_matches_mutual_reachability(
        edges in proptest::collection::vec((0..10usize, 0..10usize), 0..40)
    ) {
        let n = 10;
        let scc = SccDecomposition::compute(n, edges.iter().copied());
        let r = reachable(n, &edges);
        for i in 0..n {
            for j in 0..n {
                let same = scc.component_of(i) == scc.component_of(j);
                prop_assert_eq!(same, r[i][j] && r[j][i], "nodes {} and {}", i, j);
            }
        }
    }

    /// The condensation's topological order respects every edge.
    #[test]
    fn scc_topological_order_is_valid(
        edges in proptest::collection::vec((0..12usize, 0..12usize), 0..50)
    ) {
        let n = 12;
        let scc = SccDecomposition::compute(n, edges.iter().copied());
        let order: Vec<usize> = scc.topological().collect();
        let pos = |c: usize| order.iter().position(|x| *x == c).expect("component in order");
        for &(a, b) in &edges {
            let (ca, cb) = (scc.component_of(a), scc.component_of(b));
            if ca != cb {
                prop_assert!(pos(ca) < pos(cb), "edge {}->{} violates order", a, b);
            }
        }
    }

    /// Partitions of random loop bodies always respect the pipeline
    /// direction (A before B before C for intra-iteration dependences)
    /// and cover every node.
    #[test]
    fn random_loops_partition_consistently(
        stores in proptest::collection::vec((0..4usize, 0..4usize), 1..8),
        calls in proptest::collection::vec(any::<bool>(), 1..5)
    ) {
        // Build a loop touching up to 4 globals with a mix of loads,
        // stores, and pure/impure calls.
        let mut p = Program::new("random");
        let globals: Vec<_> = (0..4).map(|i| p.add_global(format!("g{i}"), 1)).collect();
        p.declare_extern("pure", ExternEffect::pure_fn());
        p.declare_extern("impure", ExternEffect::clobber_all());
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let mut last = b.const_(1);
        for (src, dst) in &stores {
            let a_src = b.global_addr(globals[*src]);
            let v = b.load(a_src);
            let sum = b.binop(Opcode::Add, v, last);
            let a_dst = b.global_addr(globals[*dst]);
            b.store(a_dst, sum);
            last = sum;
        }
        for pure in &calls {
            let name = if *pure { "pure" } else { "impure" };
            last = b.call_ext(name, &[last], None);
        }
        let done = b.binop(Opcode::CmpEq, last, last);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish(&mut p);
        let forest = LoopForest::build(p.function(f));
        let (lid, _) = forest.loops().next().expect("loop exists");
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let part = partition(&pdg);
        prop_assert_eq!(part.stages().len(), pdg.node_count());
        // Intra-iteration edges flow forward through the pipeline.
        for e in pdg.edges() {
            if !e.carried {
                prop_assert!(part.stage_of(e.src) <= part.stage_of(e.dst));
            }
        }
        // Weight accounting is exact.
        let total: u64 = [Stage::A, Stage::B, Stage::C]
            .iter()
            .map(|s| part.weight(*s))
            .sum();
        prop_assert_eq!(total, pdg.total_weight());
    }
}
