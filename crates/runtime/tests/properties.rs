//! Property-based tests for the simulator and the native executor:
//! scheduling invariants that must hold for any task graph.

use proptest::prelude::*;
use seqpar_runtime::{
    ExecConfig, ExecutionPlan, FaultPlan, GovernorConfig, NativeExecutor, NativeReport, SimConfig,
    Simulator, TaskCtx, TaskGraph, TaskId, TaskOutput,
};

/// Builds a three-stage pipeline graph from arbitrary per-iteration
/// costs and misspeculation flags.
fn build_graph(costs: &[(u64, u64, u64, bool)]) -> TaskGraph {
    let mut g = TaskGraph::new(3);
    let mut prev_a: Option<TaskId> = None;
    let mut prev_b: Option<TaskId> = None;
    let mut prev_c: Option<TaskId> = None;
    for (i, &(a, b, c, misspec)) in costs.iter().enumerate() {
        let i = i as u64;
        let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
        let ta = g.add_task(0, i, a % 100, &deps_a, &[]);
        let spec: Vec<seqpar_runtime::SpecDep> = prev_b
            .into_iter()
            .map(|on| seqpar_runtime::SpecDep {
                on,
                violated: misspec,
            })
            .collect();
        let tb = g.add_task(1, i, b % 500 + 1, &[ta], &spec);
        let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
        let tc = g.add_task(2, i, c % 50, &deps_c, &[]);
        prev_a = Some(ta);
        prev_b = Some(tb);
        prev_c = Some(tc);
    }
    g
}

/// Runs `graph` on the native executor with a body that emits each
/// B-stage iteration's number (and deliberately garbage bytes on a
/// to-be-squashed speculative attempt, which in-order commit must
/// discard).
fn run_native(graph: &TaskGraph, threads: usize, queue_capacity: usize) -> NativeReport {
    run_native_with(
        graph,
        threads,
        ExecConfig::with_queue_capacity(queue_capacity),
    )
}

/// [`run_native`] with a caller-supplied config — the entry point the
/// chaos properties use to arm a [`FaultPlan`].
fn run_native_with(graph: &TaskGraph, threads: usize, config: ExecConfig) -> NativeReport {
    let body = |task: TaskId, ctx: &TaskCtx<'_>| {
        let t = graph.task(task);
        if t.stage.0 != 1 {
            return TaskOutput::empty();
        }
        if ctx.speculative() && graph.spec_deps(t).iter().any(|d| d.violated) {
            // The misspeculated attempt: whatever it produces must never
            // reach the output stream.
            return TaskOutput::bytes(vec![0xEE; 5]);
        }
        TaskOutput {
            bytes: ctx.iter.to_le_bytes().to_vec(),
            work: 1,
        }
    };
    NativeExecutor::new(config)
        .run(graph, &ExecutionPlan::three_phase(threads), &body)
        .expect("plan matches graph and every fault is recoverable")
}

/// The byte stream a correct in-order commit must produce for
/// [`run_native`]: every iteration number once, in ascending order.
fn expected_stream(iterations: usize) -> Vec<u8> {
    (0..iterations as u64).flat_map(u64::to_le_bytes).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fundamental lower bounds: the makespan can never beat the critical
    /// resource (total work / cores) nor the largest single task.
    #[test]
    fn makespan_respects_lower_bounds(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..80),
        cores in 3usize..16
    ) {
        let g = build_graph(&costs);
        let sim = Simulator::new(SimConfig { cores, comm_latency: 0, ..SimConfig::default() });
        let r = sim.run(&g, &ExecutionPlan::three_phase(cores)).expect("valid");
        let max_task = g.tasks().iter().map(|t| t.cost).max().unwrap_or(0);
        prop_assert!(r.makespan >= max_task);
        prop_assert!(r.makespan >= g.serial_cycles().div_ceil(cores as u64));
        prop_assert!(r.speedup() <= cores as f64 + 1e-9);
    }

    /// Work conservation: busy cycles across cores equal total task cost,
    /// regardless of schedule.
    #[test]
    fn busy_cycles_are_conserved(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..60),
        cores in 3usize..12
    ) {
        let g = build_graph(&costs);
        let sim = Simulator::new(SimConfig { cores, comm_latency: 7, ..SimConfig::default() });
        let r = sim.run(&g, &ExecutionPlan::three_phase(cores)).expect("valid");
        prop_assert_eq!(r.core_busy.iter().sum::<u64>(), g.serial_cycles());
        prop_assert!(r.utilization() <= 1.0 + 1e-9);
    }

    /// Placements never overlap on a core and cover every task exactly
    /// once, for any input.
    #[test]
    fn placements_partition_core_time(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..50)
    ) {
        let g = build_graph(&costs);
        let cores = 6;
        let sim = Simulator::new(SimConfig { cores, comm_latency: 3, ..SimConfig::default() });
        let (_, placements) = sim
            .run_traced(&g, &ExecutionPlan::three_phase(cores))
            .expect("valid");
        prop_assert_eq!(placements.len(), g.len());
        let mut by_core: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cores];
        for p in &placements {
            by_core[p.core].push((p.start, p.end));
        }
        for spans in &mut by_core {
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0);
            }
        }
    }

    /// Violated speculation can only slow a schedule down relative to the
    /// identical graph with the speculation surviving.
    #[test]
    fn violations_never_speed_things_up(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64), 2..60)
    ) {
        let clean: Vec<(u64, u64, u64, bool)> =
            costs.iter().map(|&(a, b, c)| (a, b, c, false)).collect();
        let dirty: Vec<(u64, u64, u64, bool)> =
            costs.iter().map(|&(a, b, c)| (a, b, c, true)).collect();
        let sim = Simulator::new(SimConfig { cores: 8, comm_latency: 0, ..SimConfig::default() });
        let plan = ExecutionPlan::three_phase(8);
        let rc = sim.run(&build_graph(&clean), &plan).expect("valid");
        let rd = sim.run(&build_graph(&dirty), &plan).expect("valid");
        prop_assert!(rd.makespan >= rc.makespan);
    }

    /// Every schedule the simulator emits passes the independent
    /// constraint checker, for arbitrary graphs and machine shapes.
    #[test]
    fn simulator_schedules_always_validate(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..60),
        cores in 3usize..12,
        lat in 0u64..60,
        cap in 1usize..64
    ) {
        let g = build_graph(&costs);
        let cfg = SimConfig { cores, comm_latency: lat, queue_capacity: cap, ..SimConfig::default() };
        let plan = ExecutionPlan::three_phase(cores);
        let (_, placements) = Simulator::new(cfg)
            .run_traced(&g, &plan)
            .expect("valid plan");
        let violations = seqpar_runtime::check_schedule(&g, &plan, &cfg, &placements);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// In-order commit never reorders: whatever the thread interleaving
    /// and misspeculation pattern, the native executor's output stream is
    /// every iteration's bytes in ascending iteration order, and squashed
    /// speculative attempts never leak garbage into it.
    #[test]
    fn native_commit_never_reorders(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..40),
        threads in 1usize..9
    ) {
        let g = build_graph(&costs);
        let r = run_native(&g, threads, 32);
        prop_assert_eq!(r.output, expected_stream(costs.len()));
        prop_assert_eq!(r.tasks_committed, g.len() as u64);
    }

    /// Bounded queues never deadlock: even capacity-1 queues with
    /// backpressure and squash re-dispatch drain every task. The run is
    /// raced against a timeout so a deadlock fails fast instead of
    /// hanging the suite.
    #[test]
    fn native_bounded_queues_never_deadlock(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..40),
        threads in 1usize..9,
        cap in 1usize..5
    ) {
        let n = costs.len();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let g = build_graph(&costs);
            let r = run_native(&g, threads, cap);
            tx.send(r).ok();
        });
        let r = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("native run deadlocked");
        prop_assert_eq!(r.output, expected_stream(n));
    }

    /// Squash accounting is deterministic and trace-driven: two runs of
    /// the same graph agree exactly, and the counts match what the
    /// dependence events predict (one squash per task whose speculation
    /// was violated, one extra attempt per squash).
    #[test]
    fn native_squash_count_is_deterministic(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 2..40),
        threads in 2usize..9
    ) {
        let g = build_graph(&costs);
        let a = run_native(&g, threads, 32);
        let b = run_native(&g, threads, 32);
        prop_assert_eq!(a.squashes, b.squashes);
        prop_assert_eq!(a.violations, b.violations);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(&a.output, &b.output);
        // build_graph attaches one spec dep to every B task after the
        // first, violated when the iteration's flag is set.
        let expected = costs[1..].iter().filter(|(_, _, _, m)| *m).count() as u64;
        prop_assert_eq!(a.squashes, expected);
        prop_assert_eq!(a.violations, expected);
        prop_assert_eq!(a.attempts, g.len() as u64 + expected);
    }

    /// Chaos: under an arbitrary seeded [`FaultPlan`] — worker panics,
    /// corrupted outputs, stalls, and spurious squashes on top of any
    /// misspeculation pattern — the supervised executor still terminates
    /// (budget exhaustion degrades to the sequential fallback, never an
    /// abort), the committed stream is byte-identical to the fault-free
    /// one, and every recovery counter is identical across two runs with
    /// the same seed. Budget 0 is included: any charged fault then
    /// triggers the fallback immediately. The run is raced against a
    /// timeout so a supervision deadlock fails fast.
    #[test]
    fn chaos_faults_recover_to_identical_output(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..24),
        threads in 2usize..7,
        budget in 0u32..4,
        seed in any::<u64>()
    ) {
        let n = costs.len();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let g = build_graph(&costs);
            let config = ExecConfig::default()
                .with_faults(FaultPlan::seeded(seed))
                .with_retry_budget(budget);
            let a = run_native_with(&g, threads, config.clone());
            let b = run_native_with(&g, threads, config);
            tx.send((a, b)).ok();
        });
        let (a, b) = rx
            .recv_timeout(std::time::Duration::from_secs(120))
            .expect("faulted native run hung");
        prop_assert_eq!(&a.output, &expected_stream(n));
        prop_assert_eq!(&b.output, &a.output);
        prop_assert_eq!(a.tasks_committed, 3 * n as u64);
        prop_assert_eq!(a.recovery, b.recovery);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.squashes, b.squashes);
        prop_assert_eq!(a.violations, b.violations);
        prop_assert_eq!(a.fallback_activated, b.fallback_activated);
    }

    /// Every trace is well-formed: across arbitrary graphs, thread
    /// counts, retry budgets, and (optional) fault seeds, a traced run's
    /// timeline passes [`Timeline::validate`] — every completion pairs
    /// with a dispatch, every commit with a completion (fallback commits
    /// excepted), no pop without a push, and the commit sequence is
    /// exactly sequential order — and its commit/squash events agree
    /// with the report's counters.
    ///
    /// [`Timeline::validate`]: seqpar_runtime::Timeline::validate
    #[test]
    fn traces_are_always_well_formed(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..24),
        threads in 2usize..7,
        budget in 0u32..4,
        faulted in any::<bool>(),
        seed in any::<u64>()
    ) {
        let n = costs.len();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let g = build_graph(&costs);
            let mut config = ExecConfig::default()
                .with_retry_budget(budget)
                .with_tracing(true);
            if faulted {
                config = config.with_faults(FaultPlan::seeded(seed));
            }
            let r = run_native_with(&g, threads, config);
            tx.send(r).ok();
        });
        let r = rx
            .recv_timeout(std::time::Duration::from_secs(120))
            .expect("traced native run hung");
        prop_assert_eq!(&r.output, &expected_stream(n));
        let timeline = r.timeline.as_ref().expect("traced run carries a timeline");
        let verdict = timeline.validate();
        prop_assert!(verdict.is_ok(), "malformed timeline: {:?}", verdict);
        let order = timeline.commit_order();
        prop_assert_eq!(order.len() as u64, r.tasks_committed);
        prop_assert!(order.iter().enumerate().all(|(i, t)| t.0 == i as u32));
        let squash_events = timeline
            .events()
            .iter()
            .filter(|e| matches!(e.kind, seqpar_runtime::TraceEventKind::Squash { .. }))
            .count() as u64;
        // Squash events cover the whole recovery ladder: misspeculation
        // rollbacks plus recovered panics, caught corruptions, and
        // spurious squashes.
        prop_assert_eq!(
            squash_events,
            r.squashes
                + r.recovery.panics_recovered
                + r.recovery.corruptions_caught
                + r.recovery.spurious_squashes
        );
    }

    /// The governed executor is safe by construction: across arbitrary
    /// graphs, thread counts, governor knobs, and (optional) fault
    /// seeds — including the chaos seeds 7 and 42 the CI matrix pins —
    /// a governed run always terminates (raced against a timeout, so a
    /// governor-induced stall fails fast instead of hanging the suite)
    /// and commits the exact sequential byte stream. The governor may
    /// only change *when* work is dispatched — throttled, backed off,
    /// parked, or collapsed to inline issue — never what commits.
    ///
    /// Counters are deliberately not compared across runs: the
    /// throughput verdicts read a real clock, so two wall-clock runs
    /// may probe/degrade at different commits (the backoff *jitter* is
    /// seeded and deterministic; the pay-off points are not).
    #[test]
    fn governed_runs_never_deadlock_and_keep_sequential_output(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..24),
        threads in 2usize..7,
        reprobe in 1u32..40,
        window in 1u32..64,
        ceiling in 1u32..1000,
        faulted in any::<bool>(),
        seed in prop_oneof![Just(7u64), Just(42u64), any::<u64>()],
    ) {
        let n = costs.len();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let g = build_graph(&costs);
            let gov = GovernorConfig {
                window,
                degrade_ceiling: ceiling,
                reprobe_period: reprobe,
                ..GovernorConfig::default()
            };
            let mut config = ExecConfig::default().with_governor(gov).with_tracing(true);
            if faulted {
                config = config.with_faults(FaultPlan::seeded(seed));
            }
            let r = run_native_with(&g, threads, config);
            tx.send(r).ok();
        });
        let r = rx
            .recv_timeout(std::time::Duration::from_secs(120))
            .expect("governed native run hung");
        prop_assert_eq!(&r.output, &expected_stream(n));
        prop_assert_eq!(r.tasks_committed, 3 * n as u64);
        let g = r.governor.expect("governed run reports stats");
        prop_assert!(g.final_window >= 1);
        prop_assert!(g.final_window <= window.max(1));
        prop_assert_eq!(g.min_window, 1, "every governed run calibrates at window 1");
        // Every governor decision the stats count is visible in the
        // trace, and the trace stays well-formed under governed issue
        // (inline DEGRADED_ATTEMPT commits included).
        let timeline = r.timeline.as_ref().expect("traced run carries a timeline");
        let verdict = timeline.validate();
        prop_assert!(verdict.is_ok(), "malformed governed timeline: {:?}", verdict);
        let reprobe_events = timeline
            .events()
            .iter()
            .filter(|e| matches!(e.kind, seqpar_runtime::TraceEventKind::GovernorReprobe { .. }))
            .count() as u64;
        prop_assert_eq!(reprobe_events, g.reprobes);
        let degrade_events = timeline
            .events()
            .iter()
            .filter(|e| matches!(e.kind, seqpar_runtime::TraceEventKind::GovernorDegrade { .. }))
            .count() as u64;
        prop_assert_eq!(degrade_events, g.degrades);
    }

    /// The TLS single-stage plan obeys the same fundamental bounds.
    #[test]
    fn tls_plan_bounds_hold(
        costs in proptest::collection::vec((1..500u64, any::<bool>()), 1..60),
        cores in 2usize..16
    ) {
        let mut g = TaskGraph::new(1);
        let mut prev: Option<TaskId> = None;
        for (i, &(c, violated)) in costs.iter().enumerate() {
            let spec: Vec<seqpar_runtime::SpecDep> = prev
                .into_iter()
                .map(|on| seqpar_runtime::SpecDep { on, violated })
                .collect();
            prev = Some(g.add_task(0, i as u64, c, &[], &spec));
        }
        let sim = Simulator::new(SimConfig { cores, comm_latency: 0, ..SimConfig::default() });
        let r = sim.run(&g, &ExecutionPlan::tls(cores)).expect("valid");
        prop_assert!(r.makespan >= g.serial_cycles().div_ceil(cores as u64));
        // All-violated chains degenerate to at least the serial sum of
        // the violated suffix.
        if costs.iter().all(|(_, v)| *v) && costs.len() > 1 {
            prop_assert_eq!(r.makespan, g.serial_cycles());
        }
    }
}
