//! Property-based tests for the simulator: scheduling invariants that
//! must hold for any task graph.

use proptest::prelude::*;
use seqpar_runtime::{ExecutionPlan, SimConfig, Simulator, TaskGraph, TaskId};

/// Builds a three-stage pipeline graph from arbitrary per-iteration
/// costs and misspeculation flags.
fn build_graph(costs: &[(u64, u64, u64, bool)]) -> TaskGraph {
    let mut g = TaskGraph::new(3);
    let mut prev_a: Option<TaskId> = None;
    let mut prev_b: Option<TaskId> = None;
    let mut prev_c: Option<TaskId> = None;
    for (i, &(a, b, c, misspec)) in costs.iter().enumerate() {
        let i = i as u64;
        let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
        let ta = g.add_task(0, i, a % 100, &deps_a, &[]);
        let spec: Vec<seqpar_runtime::SpecDep> = prev_b
            .into_iter()
            .map(|on| seqpar_runtime::SpecDep {
                on,
                violated: misspec,
            })
            .collect();
        let tb = g.add_task(1, i, b % 500 + 1, &[ta], &spec);
        let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
        let tc = g.add_task(2, i, c % 50, &deps_c, &[]);
        prev_a = Some(ta);
        prev_b = Some(tb);
        prev_c = Some(tc);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fundamental lower bounds: the makespan can never beat the critical
    /// resource (total work / cores) nor the largest single task.
    #[test]
    fn makespan_respects_lower_bounds(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..80),
        cores in 3usize..16
    ) {
        let g = build_graph(&costs);
        let sim = Simulator::new(SimConfig { cores, comm_latency: 0, ..SimConfig::default() });
        let r = sim.run(&g, &ExecutionPlan::three_phase(cores)).expect("valid");
        let max_task = g.tasks().iter().map(|t| t.cost).max().unwrap_or(0);
        prop_assert!(r.makespan >= max_task);
        prop_assert!(r.makespan >= g.serial_cycles().div_ceil(cores as u64));
        prop_assert!(r.speedup() <= cores as f64 + 1e-9);
    }

    /// Work conservation: busy cycles across cores equal total task cost,
    /// regardless of schedule.
    #[test]
    fn busy_cycles_are_conserved(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..60),
        cores in 3usize..12
    ) {
        let g = build_graph(&costs);
        let sim = Simulator::new(SimConfig { cores, comm_latency: 7, ..SimConfig::default() });
        let r = sim.run(&g, &ExecutionPlan::three_phase(cores)).expect("valid");
        prop_assert_eq!(r.core_busy.iter().sum::<u64>(), g.serial_cycles());
        prop_assert!(r.utilization() <= 1.0 + 1e-9);
    }

    /// Placements never overlap on a core and cover every task exactly
    /// once, for any input.
    #[test]
    fn placements_partition_core_time(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..50)
    ) {
        let g = build_graph(&costs);
        let cores = 6;
        let sim = Simulator::new(SimConfig { cores, comm_latency: 3, ..SimConfig::default() });
        let (_, placements) = sim
            .run_traced(&g, &ExecutionPlan::three_phase(cores))
            .expect("valid");
        prop_assert_eq!(placements.len(), g.len());
        let mut by_core: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cores];
        for p in &placements {
            by_core[p.core].push((p.start, p.end));
        }
        for spans in &mut by_core {
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0);
            }
        }
    }

    /// Violated speculation can only slow a schedule down relative to the
    /// identical graph with the speculation surviving.
    #[test]
    fn violations_never_speed_things_up(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64), 2..60)
    ) {
        let clean: Vec<(u64, u64, u64, bool)> =
            costs.iter().map(|&(a, b, c)| (a, b, c, false)).collect();
        let dirty: Vec<(u64, u64, u64, bool)> =
            costs.iter().map(|&(a, b, c)| (a, b, c, true)).collect();
        let sim = Simulator::new(SimConfig { cores: 8, comm_latency: 0, ..SimConfig::default() });
        let plan = ExecutionPlan::three_phase(8);
        let rc = sim.run(&build_graph(&clean), &plan).expect("valid");
        let rd = sim.run(&build_graph(&dirty), &plan).expect("valid");
        prop_assert!(rd.makespan >= rc.makespan);
    }

    /// Every schedule the simulator emits passes the independent
    /// constraint checker, for arbitrary graphs and machine shapes.
    #[test]
    fn simulator_schedules_always_validate(
        costs in proptest::collection::vec((0..100u64, 0..500u64, 0..50u64, any::<bool>()), 1..60),
        cores in 3usize..12,
        lat in 0u64..60,
        cap in 1usize..64
    ) {
        let g = build_graph(&costs);
        let cfg = SimConfig { cores, comm_latency: lat, queue_capacity: cap, ..SimConfig::default() };
        let plan = ExecutionPlan::three_phase(cores);
        let (_, placements) = Simulator::new(cfg)
            .run_traced(&g, &plan)
            .expect("valid plan");
        let violations = seqpar_runtime::check_schedule(&g, &plan, &cfg, &placements);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// The TLS single-stage plan obeys the same fundamental bounds.
    #[test]
    fn tls_plan_bounds_hold(
        costs in proptest::collection::vec((1..500u64, any::<bool>()), 1..60),
        cores in 2usize..16
    ) {
        let mut g = TaskGraph::new(1);
        let mut prev: Option<TaskId> = None;
        for (i, &(c, violated)) in costs.iter().enumerate() {
            let spec: Vec<seqpar_runtime::SpecDep> = prev
                .into_iter()
                .map(|on| seqpar_runtime::SpecDep { on, violated })
                .collect();
            prev = Some(g.add_task(0, i as u64, c, &[], &spec));
        }
        let sim = Simulator::new(SimConfig { cores, comm_latency: 0, ..SimConfig::default() });
        let r = sim.run(&g, &ExecutionPlan::tls(cores)).expect("valid");
        prop_assert!(r.makespan >= g.serial_cycles().div_ceil(cores as u64));
        // All-violated chains degenerate to at least the serial sum of
        // the violated suffix.
        if costs.iter().all(|(_, v)| *v) && costs.len() > 1 {
            prop_assert_eq!(r.makespan, g.serial_cycles());
        }
    }
}
