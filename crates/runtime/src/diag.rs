//! Shared diagnostics: severities, rendered findings, and the
//! [`PlanShape`] check.
//!
//! Static tooling (the `seqpar-lint` checkers in `seqpar-analysis`) and
//! dynamic validation ([`crate::validate`], the simulator, the native
//! executor) all reject ill-formed plan/graph pairs. This module holds
//! the one vocabulary they share, so a finding renders the same way
//! whether it was produced before the first thread spawned or after a
//! traced run:
//!
//! * [`Severity`] — deny (must not run) vs warn (runs, but suspicious);
//! * [`Diagnostic`] — a stable code, a message, an optional origin, and
//!   notes, rendered rustc-style by [`Diagnostic::render`];
//! * [`PlanShape`] — the structural summary of an [`ExecutionPlan`]
//!   checked against a task graph's stage count. The simulator, the
//!   native executor, [`crate::validate::check_schedule`], and the
//!   static lint all call [`PlanShape::check_against`] instead of
//!   re-deriving the stage-count and empty-pool rules.

use crate::plan::{ExecutionPlan, StageAssignment};
use crate::sim::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but not unsound: execution may proceed.
    Warn,
    /// Unsound: the plan must not be executed.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => f.write_str("warning"),
            Severity::Deny => f.write_str("error"),
        }
    }
}

/// One rendered finding with a stable code.
///
/// The code namespaces are `SP00xx` (static lint, deny), `SP01xx`
/// (static lint, warn), and `SPR0xx` (runtime validation).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    code: &'static str,
    severity: Severity,
    message: String,
    origin: Option<String>,
    notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a deny-level diagnostic.
    pub fn deny(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Deny,
            message: message.into(),
            origin: None,
            notes: Vec::new(),
        }
    }

    /// Creates a warn-level diagnostic.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warn,
            ..Self::deny(code, message)
        }
    }

    /// Attaches the program location the finding points at (builder
    /// style).
    #[must_use]
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = Some(origin.into());
        self
    }

    /// Appends an explanatory note (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The stable diagnostic code (e.g. `SP0001`).
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Whether this diagnostic forbids execution.
    pub fn is_deny(&self) -> bool {
        self.severity == Severity::Deny
    }

    /// The one-line message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The location the finding points at, if known.
    pub fn origin(&self) -> Option<&str> {
        self.origin.as_deref()
    }

    /// The explanatory notes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders the diagnostic rustc-style:
    ///
    /// ```text
    /// error[SP0001]: dependence flows backward from stage 2 to stage 0
    ///   --> deflate: node 4 = call compress ("compress")
    ///    = note: carried memory dependence, covered by no speculation
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(origin) = &self.origin {
            out.push_str("\n  --> ");
            out.push_str(origin);
        }
        for note in &self.notes {
            out.push_str("\n   = note: ");
            out.push_str(note);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The structural summary of an execution plan: stage count, empty
/// pools, and the cores it needs.
///
/// This is the single implementation of the "does this plan even fit
/// that graph" rules that the simulator, the native executor, the
/// schedule validator, and the static lint previously would each
/// restate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanShape {
    /// Number of stages in the plan.
    pub stages: u8,
    /// The first stage with an empty core pool, if any (possible via
    /// deserialization; the constructors reject it).
    pub empty_stage: Option<u8>,
    /// Cores the plan requires (highest index + 1).
    pub cores_required: usize,
    /// Per-stage flag: `true` when the stage's pool holds more than one
    /// core (a replicated stage).
    pub multi_core: Vec<bool>,
}

impl PlanShape {
    /// Summarizes `plan`.
    pub fn of(plan: &ExecutionPlan) -> Self {
        let multi_core = (0..plan.stage_count())
            .map(|s| match plan.stage(s) {
                StageAssignment::Serial { .. } => false,
                StageAssignment::Parallel { cores } | StageAssignment::RoundRobin { cores } => {
                    cores.len() > 1
                }
            })
            .collect();
        Self {
            stages: plan.stage_count(),
            empty_stage: plan.first_empty_stage(),
            cores_required: plan.cores_required(),
            multi_core,
        }
    }

    /// Checks the shape against a task graph (or partition) with
    /// `graph_stages` stages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyStagePool`] if any stage has an empty
    /// core pool, then [`SimError::StageMismatch`] if the stage counts
    /// disagree — the same order the executors report them in.
    pub fn check_against(&self, graph_stages: u8) -> Result<(), SimError> {
        if let Some(stage) = self.empty_stage {
            return Err(SimError::EmptyStagePool { stage });
        }
        if self.stages != graph_stages {
            return Err(SimError::StageMismatch {
                plan: self.stages,
                graph: graph_stages,
            });
        }
        Ok(())
    }
}

impl SimError {
    /// The stable diagnostic code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            SimError::NotEnoughCores { .. } => "SPR001",
            SimError::StageMismatch { .. } => "SPR002",
            SimError::TooManyChannels { .. } => "SPR003",
            SimError::EmptyStagePool { .. } => "SPR004",
        }
    }

    /// This error as a deny-level [`Diagnostic`].
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::deny(self.code(), self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic::deny("SP0001", "dependence flows backward")
            .with_origin("deflate: node 4")
            .with_note("carried memory dependence");
        let r = d.render();
        assert!(r.starts_with("error[SP0001]: dependence flows backward"));
        assert!(r.contains("\n  --> deflate: node 4"));
        assert!(r.contains("\n   = note: carried memory dependence"));
        assert!(d.is_deny());
    }

    #[test]
    fn warnings_render_as_warnings() {
        let d = Diagnostic::warn("SP0101", "misspeculation rate is high");
        assert!(d.render().starts_with("warning[SP0101]:"));
        assert!(!d.is_deny());
        assert_eq!(d.severity(), Severity::Warn);
    }

    #[test]
    fn severity_orders_deny_above_warn() {
        assert!(Severity::Deny > Severity::Warn);
    }

    #[test]
    fn shape_accepts_matching_plan() {
        let shape = PlanShape::of(&ExecutionPlan::three_phase(8));
        assert_eq!(shape.stages, 3);
        assert_eq!(shape.empty_stage, None);
        assert_eq!(shape.cores_required, 8);
        assert_eq!(shape.multi_core, vec![false, true, false]);
        assert_eq!(shape.check_against(3), Ok(()));
    }

    #[test]
    fn shape_rejects_stage_mismatch() {
        let shape = PlanShape::of(&ExecutionPlan::tls(4));
        assert_eq!(
            shape.check_against(3),
            Err(SimError::StageMismatch { plan: 1, graph: 3 })
        );
    }

    #[test]
    fn shape_reports_empty_pools_first() {
        let plan = ExecutionPlan::new(vec![
            StageAssignment::serial(0),
            StageAssignment::Parallel { cores: vec![] },
        ]);
        let shape = PlanShape::of(&plan);
        // Even with a stage-count mismatch, the empty pool wins.
        assert_eq!(
            shape.check_against(3),
            Err(SimError::EmptyStagePool { stage: 1 })
        );
    }

    #[test]
    fn sim_errors_lower_to_diagnostics() {
        let e = SimError::StageMismatch { plan: 1, graph: 3 };
        let d = e.to_diagnostic();
        assert_eq!(d.code(), "SPR002");
        assert!(d.is_deny());
        assert!(d.message().contains("1 stages"));
    }
}
