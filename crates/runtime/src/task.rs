//! Tasks and task graphs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task within a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a pipeline stage (the paper's *phase*: A = 0, B = 1, C = 2 in
/// the three-phase pattern of §3.2, though any number of stages is
/// allowed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StageId(pub u8);

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage{}", self.0)
    }
}

/// A speculated dependence observed (or not) at runtime.
///
/// The memory-profiling pass tells the simulator which speculated
/// dependences actually manifested: a violated one behaves exactly like a
/// synchronized dependence (serialization), a non-violated one costs
/// nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecDep {
    /// The producer task this task speculated past.
    pub on: TaskId,
    /// Whether the dependence actually manifested this iteration.
    pub violated: bool,
}

/// A contiguous run of entries in one of the graph's dependence arenas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct DepRange {
    start: u32,
    len: u32,
}

impl DepRange {
    fn slice<'a, T>(&self, arena: &'a [T]) -> &'a [T] {
        let start = self.start as usize;
        &arena[start..start + self.len as usize]
    }
}

/// A dynamic task: one instance of a phase for one loop iteration.
///
/// Dependence lists live in flat per-graph arenas (see
/// [`TaskGraph::deps`] and [`TaskGraph::spec_deps`]) rather than in
/// per-task `Vec`s: graphs hold three contiguous allocations no matter
/// how many tasks they contain, which keeps a live graph from
/// fragmenting the heap under the executor's allocation-heavy bodies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// The stage (phase) this task belongs to.
    pub stage: StageId,
    /// The loop iteration this task came from.
    pub iter: u64,
    /// Execution cost in cycles (from native measurement).
    pub cost: u64,
    deps: DepRange,
    spec_deps: DepRange,
}

/// The dynamic task graph of one parallelized loop execution.
///
/// Tasks must be added in lexicographic `(iter, stage)` order and
/// dependences must point backwards in that order; [`TaskGraph::add_task`]
/// enforces this so the simulator can schedule in a single pass.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    stages: u8,
    tasks: Vec<Task>,
    dep_arena: Vec<TaskId>,
    spec_arena: Vec<SpecDep>,
}

impl TaskGraph {
    /// Creates an empty graph for a pipeline with `stages` stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn new(stages: u8) -> Self {
        assert!(stages > 0, "a pipeline needs at least one stage");
        Self {
            stages,
            tasks: Vec::new(),
            dep_arena: Vec::new(),
            spec_arena: Vec::new(),
        }
    }

    /// The number of pipeline stages.
    pub fn stage_count(&self) -> u8 {
        self.stages
    }

    /// Adds a task and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range, if `(iter, stage)` does not
    /// follow the previous task in lexicographic order, or if any
    /// dependence points at a task that is not strictly earlier.
    pub fn add_task(
        &mut self,
        stage: u8,
        iter: u64,
        cost: u64,
        deps: &[TaskId],
        spec_deps: &[SpecDep],
    ) -> TaskId {
        assert!(stage < self.stages, "stage {stage} out of range");
        if let Some(last) = self.tasks.last() {
            let prev = (last.iter, last.stage.0);
            assert!(
                prev < (iter, stage),
                "tasks must be added in (iter, stage) order: {prev:?} then ({iter}, {stage})"
            );
        }
        let id = TaskId(self.tasks.len() as u32);
        for d in deps {
            assert!(d.0 < id.0, "dependence {d} must precede task {id}");
        }
        for s in spec_deps {
            assert!(
                s.on.0 < id.0,
                "speculated dependence {} must precede task {id}",
                s.on
            );
        }
        let dep_range = DepRange {
            start: self.dep_arena.len() as u32,
            len: deps.len() as u32,
        };
        self.dep_arena.extend_from_slice(deps);
        let spec_range = DepRange {
            start: self.spec_arena.len() as u32,
            len: spec_deps.len() as u32,
        };
        self.spec_arena.extend_from_slice(spec_deps);
        self.tasks.push(Task {
            stage: StageId(stage),
            iter,
            cost,
            deps: dep_range,
            spec_deps: spec_range,
        });
        id
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// The synchronized dependences of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to this graph.
    pub fn deps(&self, task: &Task) -> &[TaskId] {
        task.deps.slice(&self.dep_arena)
    }

    /// The speculated dependences of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to this graph.
    pub fn spec_deps(&self, task: &Task) -> &[SpecDep] {
        task.spec_deps.slice(&self.spec_arena)
    }

    /// All tasks in `(iter, stage)` order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total cost of all tasks — the single-threaded execution time.
    pub fn serial_cycles(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// The distinct cross-stage channels implied by the dependences, as
    /// `(producer stage, consumer stage)` pairs.
    pub fn channels(&self) -> Vec<(StageId, StageId)> {
        let mut out = Vec::new();
        for t in &self.tasks {
            let deps = self.deps(t).iter().copied();
            let specs = self.spec_deps(t).iter().map(|s| s.on);
            for d in deps.chain(specs) {
                let src = self.task(d).stage;
                if src != t.stage && !out.contains(&(src, t.stage)) {
                    out.push((src, t.stage));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_accumulate_in_order() {
        let mut g = TaskGraph::new(3);
        let a = g.add_task(0, 0, 5, &[], &[]);
        let b = g.add_task(1, 0, 7, &[a], &[]);
        let _c = g.add_task(2, 0, 3, &[b], &[]);
        let a1 = g.add_task(0, 1, 5, &[a], &[]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.serial_cycles(), 20);
        assert_eq!(g.task(a1).iter, 1);
        assert_eq!(g.deps(g.task(a1)), &[a]);
        assert!(g.spec_deps(g.task(a1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "order")]
    fn out_of_order_tasks_are_rejected() {
        let mut g = TaskGraph::new(2);
        g.add_task(1, 0, 5, &[], &[]);
        g.add_task(0, 0, 5, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_dependences_are_rejected() {
        let mut g = TaskGraph::new(2);
        g.add_task(0, 0, 5, &[TaskId(5)], &[]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_pipeline_is_rejected() {
        TaskGraph::new(0);
    }

    #[test]
    fn channels_derive_from_dependences() {
        let mut g = TaskGraph::new(3);
        let a = g.add_task(0, 0, 1, &[], &[]);
        let b = g.add_task(1, 0, 1, &[a], &[]);
        g.add_task(2, 0, 1, &[b], &[]);
        let a1 = g.add_task(0, 1, 1, &[a], &[]);
        g.add_task(
            1,
            1,
            1,
            &[a1],
            &[SpecDep {
                on: b,
                violated: false,
            }],
        );
        let ch = g.channels();
        assert!(ch.contains(&(StageId(0), StageId(1))));
        assert!(ch.contains(&(StageId(1), StageId(2))));
        // Same-stage deps (a -> a1) are not channels.
        assert!(!ch.contains(&(StageId(0), StageId(0))));
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn empty_graph_reports_zero_serial_cycles() {
        let g = TaskGraph::new(1);
        assert!(g.is_empty());
        assert_eq!(g.serial_cycles(), 0);
        assert!(g.channels().is_empty());
    }

    #[test]
    fn dep_arenas_share_flat_storage() {
        let mut g = TaskGraph::new(2);
        let a = g.add_task(0, 0, 1, &[], &[]);
        let b = g.add_task(1, 0, 1, &[a], &[]);
        let c = g.add_task(
            0,
            1,
            1,
            &[a, b],
            &[SpecDep {
                on: b,
                violated: true,
            }],
        );
        assert_eq!(g.deps(g.task(c)), &[a, b]);
        assert_eq!(g.spec_deps(g.task(c)).len(), 1);
        assert!(g.spec_deps(g.task(c))[0].violated);
        assert_eq!(g.deps(g.task(a)), &[] as &[TaskId]);
    }
}
