//! Deterministic fault injection for the native executor.
//!
//! A [`FaultPlan`] decides, purely from a `u64` seed and a `(task,
//! attempt)` pair, whether a dispatch is sabotaged and how: the worker
//! panics, the task's output is corrupted, the worker stalls, or the
//! commit unit squashes a perfectly good attempt. No wall-clock entropy
//! is involved, so a chaos run is exactly reproducible from its seed —
//! the property the chaos proptests and the 3-seed CI job rely on.
//!
//! The same plan drives both sides of the differential harness: the
//! native executor consults it on worker threads and at the commit
//! frontier, while [`supervise_task`] replays the identical commit-time
//! decision procedure as a pure function so the simulator (and tests)
//! can predict every recovery counter without spawning a thread.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One class of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker panics instead of running the task's body.
    WorkerPanic,
    /// The body runs, then its output bytes are mangled before they
    /// reach the commit unit.
    CorruptOutput,
    /// The worker sleeps for [`FaultPlan::stall_duration`] before
    /// running the body — an artificial stage stall the heartbeat
    /// watchdog can observe.
    StageStall,
    /// The commit unit squashes the attempt even though no recorded
    /// dependence was violated.
    SpuriousSquash,
}

/// Deterministic per-task recovery counters.
///
/// Every field is decided at the commit frontier, where attempts are
/// processed strictly in task order by a procedure that depends only on
/// `(task, attempt)` and the [`FaultPlan`] — never on thread timing —
/// so two runs with the same seed report identical counts. (The
/// exceptions, `NativeReport::attempts` and `watchdog_trips`, are
/// documented on their own fields.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryCounts {
    /// Worker panics (injected or real) converted into squash-and-replay
    /// re-dispatches instead of aborting the run.
    pub panics_recovered: u64,
    /// Corrupted outputs caught by commit-time validation against the
    /// sequential oracle and replayed rather than committed.
    pub corruptions_caught: u64,
    /// Injected squashes of attempts that had no violated dependence.
    pub spurious_squashes: u64,
    /// Attempts that reached the commit frontier after an injected
    /// stage stall (the stall itself recovers by finishing; this counts
    /// how many the chaos plan inflicted).
    pub stalls_absorbed: u64,
    /// Fault-recovery re-dispatches charged against retry budgets
    /// (misspeculation replays are part of the normal protocol and are
    /// not charged).
    pub retries: u64,
    /// Tasks committed by the in-order sequential fallback after a
    /// retry budget was exhausted or the watchdog tripped.
    pub fallback_tasks: u64,
}

impl RecoveryCounts {
    /// Total faults recovered from (panics + corruptions + spurious
    /// squashes), the headline chaos number.
    pub fn faults_recovered(&self) -> u64 {
        self.panics_recovered + self.corruptions_caught + self.spurious_squashes
    }

    /// Accumulates `other` into `self`.
    pub(crate) fn absorb(&mut self, other: &RecoveryCounts) {
        self.panics_recovered += other.panics_recovered;
        self.corruptions_caught += other.corruptions_caught;
        self.spurious_squashes += other.spurious_squashes;
        self.stalls_absorbed += other.stalls_absorbed;
        self.retries += other.retries;
        self.fallback_tasks += other.fallback_tasks;
    }
}

/// A seeded, deterministic chaos schedule: which `(task, attempt)`
/// dispatches are sabotaged, and how.
///
/// Each `(task, attempt)` pair gets at most one fault, drawn by hashing
/// `(seed, task, attempt)` and partitioning the hash into per-class
/// per-mille bands, plus an explicit `forced` list for targeted tests.
/// The default plan ([`FaultPlan::none`]) injects nothing and costs one
/// branch per dispatch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    panic_permille: u16,
    corrupt_permille: u16,
    stall_permille: u16,
    spurious_permille: u16,
    stall: Duration,
    forced: Vec<(u32, u32, FaultKind)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            panic_permille: 0,
            corrupt_permille: 0,
            stall_permille: 0,
            spurious_permille: 0,
            stall: Duration::from_micros(200),
            forced: Vec::new(),
        }
    }

    /// A moderate all-class chaos plan derived from `seed`: roughly 6%
    /// of dispatches panic, 4% corrupt their output, 1% stall, and 4%
    /// are spuriously squashed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            panic_permille: 60,
            corrupt_permille: 40,
            stall_permille: 10,
            spurious_permille: 40,
            stall: Duration::from_micros(200),
            forced: Vec::new(),
        }
    }

    /// Sets the worker-panic rate in per-mille of dispatches.
    pub fn with_panic_permille(mut self, permille: u16) -> Self {
        self.panic_permille = permille;
        self
    }

    /// Sets the output-corruption rate in per-mille of dispatches.
    pub fn with_corrupt_permille(mut self, permille: u16) -> Self {
        self.corrupt_permille = permille;
        self
    }

    /// Sets the stage-stall rate in per-mille of dispatches.
    pub fn with_stall_permille(mut self, permille: u16) -> Self {
        self.stall_permille = permille;
        self
    }

    /// Sets the spurious-squash rate in per-mille of dispatches.
    pub fn with_spurious_permille(mut self, permille: u16) -> Self {
        self.spurious_permille = permille;
        self
    }

    /// Sets how long an injected stall sleeps.
    pub fn with_stall_duration(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// Forces `kind` onto one exact `(task, attempt)` dispatch,
    /// overriding the seeded draw — the targeted-injection hook for
    /// unit tests.
    pub fn with_forced(mut self, task: u32, attempt: u32, kind: FaultKind) -> Self {
        self.forced.push((task, attempt, kind));
        self
    }

    /// How long an injected [`FaultKind::StageStall`] sleeps.
    pub fn stall_duration(&self) -> Duration {
        self.stall
    }

    /// Whether the plan can never inject anything (the fast path).
    pub fn is_inert(&self) -> bool {
        self.forced.is_empty()
            && self.panic_permille == 0
            && self.corrupt_permille == 0
            && self.stall_permille == 0
            && self.spurious_permille == 0
    }

    /// Whether the plan can corrupt outputs — if so the executor turns
    /// commit-time validation on regardless of
    /// [`ExecConfig::validate_outputs`](super::ExecConfig::validate_outputs).
    pub fn can_corrupt(&self) -> bool {
        self.corrupt_permille > 0
            || self
                .forced
                .iter()
                .any(|(_, _, k)| *k == FaultKind::CorruptOutput)
    }

    /// The fault injected on dispatch `(task, attempt)`, if any.
    pub fn fault_at(&self, task: u32, attempt: u32) -> Option<FaultKind> {
        if let Some((_, _, kind)) = self
            .forced
            .iter()
            .find(|(t, a, _)| *t == task && *a == attempt)
        {
            return Some(*kind);
        }
        let total = self.panic_permille as u64
            + self.corrupt_permille as u64
            + self.stall_permille as u64
            + self.spurious_permille as u64;
        if total == 0 {
            return None;
        }
        let draw = splitmix64(
            self.seed
                ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        ) % 1000;
        let mut band = self.panic_permille as u64;
        if draw < band {
            return Some(FaultKind::WorkerPanic);
        }
        band += self.corrupt_permille as u64;
        if draw < band {
            return Some(FaultKind::CorruptOutput);
        }
        band += self.stall_permille as u64;
        if draw < band {
            return Some(FaultKind::StageStall);
        }
        band += self.spurious_permille as u64;
        if draw < band {
            return Some(FaultKind::SpuriousSquash);
        }
        None
    }
}

/// Mangles a task output in a way commit-time validation always
/// detects: every byte is flipped and a sentinel byte is appended (so
/// even empty outputs become detectably wrong).
pub(super) fn corrupt_output(output: &mut super::TaskOutput) {
    for b in &mut output.bytes {
        *b ^= 0xA5;
    }
    output.bytes.push(0x5A);
}

/// SplitMix64: the standard 64-bit finalizer, used as a stateless hash
/// (shared with the governor's deterministic backoff jitter).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What supervising one task at the commit frontier does, as predicted
/// by replaying the supervisor's decision procedure as a pure function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskSupervision {
    /// Recovery counters charged while supervising this task (partial
    /// counts up to budget exhaustion when `exhausted`).
    pub counts: RecoveryCounts,
    /// Whether the attempt-0 misspeculation squash fired (it does not
    /// when attempt 0 panicked — the panic is handled first and the
    /// replay is no longer speculative).
    pub misspec_squashed: bool,
    /// Total body dispatches the task consumed (including squashed and
    /// panicked attempts), when not `exhausted`.
    pub attempts: u32,
    /// The task exhausted its retry budget: the executor abandons
    /// worker dispatch and falls back to in-order sequential execution
    /// of every remaining task.
    pub exhausted: bool,
}

/// Replays the commit-frontier supervision protocol for one task as a
/// pure function of the fault plan — the simulated twin of the native
/// executor's recovery path, used by [`Simulator::run_with_faults`](crate::Simulator::run_with_faults)
/// (see [`crate::sim`]) and the differential chaos tests.
///
/// `violated` says whether the task has at least one violated
/// speculated dependence (so its genuine attempt 0 gets the normal
/// misspeculation squash). The decision order per attempt mirrors
/// `CommitUnit::absorb` exactly: worker panic → misspeculation squash →
/// output validation → spurious squash → commit.
pub fn supervise_task(
    plan: &FaultPlan,
    retry_budget: u32,
    task: u32,
    violated: bool,
) -> TaskSupervision {
    let mut sup = TaskSupervision::default();
    let mut attempt = 0u32;
    let mut charged = 0u32;
    let charge = |sup: &mut TaskSupervision, charged: &mut u32| -> bool {
        sup.counts.retries += 1;
        *charged += 1;
        *charged > retry_budget
    };
    loop {
        sup.attempts += 1;
        let fault = plan.fault_at(task, attempt);
        if fault == Some(FaultKind::StageStall) {
            sup.counts.stalls_absorbed += 1;
        }
        if fault == Some(FaultKind::WorkerPanic) {
            sup.counts.panics_recovered += 1;
            if charge(&mut sup, &mut charged) {
                sup.exhausted = true;
                return sup;
            }
            attempt += 1;
            continue;
        }
        if attempt == 0 && violated {
            sup.misspec_squashed = true;
            attempt += 1;
            continue;
        }
        if fault == Some(FaultKind::CorruptOutput) {
            sup.counts.corruptions_caught += 1;
            if charge(&mut sup, &mut charged) {
                sup.exhausted = true;
                return sup;
            }
            attempt += 1;
            continue;
        }
        if fault == Some(FaultKind::SpuriousSquash) {
            sup.counts.spurious_squashes += 1;
            if charge(&mut sup, &mut charged) {
                sup.exhausted = true;
                return sup;
            }
            attempt += 1;
            continue;
        }
        return sup;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7);
        let b = FaultPlan::seeded(7);
        let c = FaultPlan::seeded(8);
        let draws = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..200).map(|t| p.fault_at(t, 0)).collect()
        };
        assert_eq!(draws(&a), draws(&b));
        assert_ne!(draws(&a), draws(&c), "different seeds draw differently");
        assert!(
            draws(&a).iter().any(Option::is_some),
            "a seeded plan injects something over 200 tasks"
        );
    }

    #[test]
    fn inert_plan_never_injects() {
        let p = FaultPlan::none();
        assert!(p.is_inert());
        assert!(!p.can_corrupt());
        for t in 0..100 {
            for a in 0..4 {
                assert_eq!(p.fault_at(t, a), None);
            }
        }
    }

    #[test]
    fn forced_faults_override_the_seeded_draw() {
        let p = FaultPlan::none().with_forced(3, 1, FaultKind::CorruptOutput);
        assert_eq!(p.fault_at(3, 1), Some(FaultKind::CorruptOutput));
        assert_eq!(p.fault_at(3, 0), None);
        assert_eq!(p.fault_at(4, 1), None);
        assert!(p.can_corrupt());
        assert!(!p.is_inert());
    }

    #[test]
    fn corruption_changes_even_empty_outputs() {
        let mut out = super::super::TaskOutput::empty();
        corrupt_output(&mut out);
        assert!(!out.bytes.is_empty());
        let mut tagged = super::super::TaskOutput::bytes(vec![1, 2, 3]);
        let original = tagged.clone();
        corrupt_output(&mut tagged);
        assert_ne!(tagged, original);
    }

    #[test]
    fn supervision_terminates_and_respects_the_budget() {
        // Panic on every attempt: budget 2 allows 2 charged replays and
        // the third charge exhausts.
        let p = FaultPlan::none().with_panic_permille(1000);
        let sup = supervise_task(&p, 2, 0, false);
        assert!(sup.exhausted);
        assert_eq!(sup.counts.panics_recovered, 3);
        assert_eq!(sup.counts.retries, 3);
    }

    #[test]
    fn budget_zero_exhausts_on_the_first_fault() {
        let p = FaultPlan::none().with_forced(5, 0, FaultKind::WorkerPanic);
        let sup = supervise_task(&p, 0, 5, false);
        assert!(sup.exhausted);
        assert_eq!(sup.counts.panics_recovered, 1);
        // A clean task is unaffected even at budget 0.
        let clean = supervise_task(&p, 0, 6, false);
        assert!(!clean.exhausted);
        assert_eq!(clean.attempts, 1);
    }

    #[test]
    fn panicked_first_attempt_skips_the_misspec_squash() {
        let p = FaultPlan::none().with_forced(2, 0, FaultKind::WorkerPanic);
        let sup = supervise_task(&p, 3, 2, true);
        assert!(!sup.misspec_squashed, "replay after a panic is attempt 1");
        assert_eq!(sup.counts.panics_recovered, 1);
        assert_eq!(sup.attempts, 2);
        // Without the panic the squash fires normally.
        let normal = supervise_task(&FaultPlan::none(), 3, 2, true);
        assert!(normal.misspec_squashed);
        assert_eq!(normal.attempts, 2);
    }
}
