//! Structured execution tracing: per-worker event buffers stitched into
//! a post-run [`Timeline`].
//!
//! The paper's evaluation rests on per-task timelines (the authors used
//! `pfmon` on real hardware); this module is our equivalent. When
//! [`ExecConfig::trace`](super::ExecConfig::trace) is on, every worker
//! thread appends typed [`TraceEvent`]s to a buffer it owns exclusively
//! — no locks, no shared cache lines, one monotonic-clock read plus one
//! `Vec` push per event — and the dispatcher and commit unit do the
//! same on the supervisor thread. After the run the buffers are merged
//! by timestamp into a [`Timeline`] carried on
//! [`NativeReport::timeline`](super::NativeReport::timeline), from which
//! the per-stage histograms ([`Timeline::stage_metrics`]), the critical
//! path ([`Timeline::critical_path`]), and a Chrome `trace_event`
//! export ([`Timeline::to_chrome_json`], loadable in Perfetto or
//! `chrome://tracing`) are derived.
//!
//! [`Simulator::run_timeline`](crate::Simulator::run_timeline) emits the
//! same event schema from a simulated schedule (timestamps in cycles
//! instead of nanoseconds), so sim and native timelines are directly
//! diffable — the differential suite checks they agree on commit order.
//!
//! See `OBSERVABILITY.md` at the repository root for the full schema
//! reference and a capture walkthrough.

use crate::task::{StageId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// The unit of [`TraceEvent::ts`] timestamps in a [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeUnit {
    /// Real nanoseconds since the run started — native executor
    /// timelines.
    Nanos,
    /// Simulated machine cycles — the simulator's twin timelines
    /// ([`Simulator::run_timeline`](crate::Simulator::run_timeline)).
    Cycles,
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeUnit::Nanos => f.write_str("ns"),
            TimeUnit::Cycles => f.write_str("cycles"),
        }
    }
}

/// Why the commit unit discarded an attempt (the decision ladder of
/// `CommitUnit::absorb`, in ladder order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SquashReason {
    /// The worker panicked (injected or real); the attempt produced
    /// nothing and is replayed under the retry budget.
    PanicRecovered,
    /// A violated speculated dependence manifested: the normal
    /// misspeculation rollback of the speculation protocol.
    Misspeculation,
    /// Commit-time validation caught an output that differs from the
    /// sequential oracle's.
    CorruptionCaught,
    /// The fault plan squashed a perfectly good attempt at the commit
    /// point.
    SpuriousSquash,
    /// The versioned memory substrate invalidated the attempt's version:
    /// a read it took was contradicted by an earlier version's
    /// conflicting (non-silent) write or a rollback's revoked forward.
    /// This is the squash source of versioned-memory runs, detected at
    /// access granularity instead of replayed from recorded dependence
    /// events.
    MemoryConflict,
}

impl fmt::Display for SquashReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquashReason::PanicRecovered => f.write_str("panic"),
            SquashReason::Misspeculation => f.write_str("misspeculation"),
            SquashReason::CorruptionCaught => f.write_str("corruption"),
            SquashReason::SpuriousSquash => f.write_str("spurious"),
            SquashReason::MemoryConflict => f.write_str("memory-conflict"),
        }
    }
}

/// One timestamped trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened, in the owning [`Timeline`]'s
    /// [`TimeUnit`] (nanoseconds since run start for native runs,
    /// cycles for simulated ones).
    pub ts: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The typed event schema shared by the native executor and the
/// simulator (see `OBSERVABILITY.md` for the reference table).
///
/// `attempt` is 0 for a task's speculative first dispatch and increments
/// with each squash-and-replay re-dispatch;
/// [`FALLBACK_ATTEMPT`](super::FALLBACK_ATTEMPT) marks a commit made by
/// the in-order sequential fallback, which has no worker-side dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The dispatcher enqueued an attempt on its stage's input queue.
    /// `occupancy` is the queue length right after the push.
    QueuePush {
        /// The stage whose queue received the item.
        stage: u8,
        /// The enqueued task.
        task: u32,
        /// The enqueued attempt number.
        attempt: u32,
        /// Queue entries in flight immediately after the push.
        occupancy: usize,
    },
    /// A worker dequeued an attempt. `occupancy` is the queue length
    /// right after the pop, so push/pop pairs bracket the queue-wait
    /// interval and the occupancy series tracks backpressure.
    QueuePop {
        /// The stage whose queue the item came from.
        stage: u8,
        /// The dequeued task.
        task: u32,
        /// The dequeued attempt number.
        attempt: u32,
        /// Queue entries left immediately after the pop.
        occupancy: usize,
    },
    /// A worker started running an attempt's body.
    Dispatch {
        /// The plan core the worker models.
        core: usize,
        /// The task's stage.
        stage: u8,
        /// The task.
        task: u32,
        /// The attempt number.
        attempt: u32,
    },
    /// A worker finished an attempt (successfully, or by catching a
    /// panic, or after an injected stall).
    Complete {
        /// The plan core the worker models.
        core: usize,
        /// The task's stage.
        stage: u8,
        /// The task.
        task: u32,
        /// The attempt number.
        attempt: u32,
        /// The attempt produced nothing (real or injected panic).
        panicked: bool,
        /// The attempt ran behind an injected stage stall.
        stalled: bool,
    },
    /// The commit unit discarded an attempt at the frontier and
    /// re-dispatched the task.
    Squash {
        /// The squashed task.
        task: u32,
        /// The discarded attempt.
        attempt: u32,
        /// Which rung of the recovery ladder fired.
        reason: SquashReason,
    },
    /// The commit frontier advanced: `task`'s output joined the
    /// committed stream. Commits are strictly in task (= sequential
    /// program) order.
    Commit {
        /// The committed task.
        task: u32,
        /// The committing attempt
        /// ([`FALLBACK_ATTEMPT`](super::FALLBACK_ATTEMPT) when the
        /// sequential fallback committed it inline).
        attempt: u32,
    },
    /// The runtime outcome of the speculation the planner chose for
    /// this task (Y-branch, Commutative, and alias speculation all
    /// materialize as speculated dependences): how many manifested
    /// (violated) and how many the task got away with.
    SpecDecision {
        /// The task carrying speculated dependences.
        task: u32,
        /// Dependences that manifested and forced a squash.
        violated: u32,
        /// Dependences that were successfully speculated past.
        survived: u32,
    },
    /// A retry budget ran out (or the watchdog tripped): the executor
    /// abandoned worker dispatch and committed the remaining tasks
    /// in order on the supervisor thread, starting at `from_task`.
    FallbackActivated {
        /// The first task the sequential fallback committed.
        from_task: u32,
    },
    /// The heartbeat watchdog fired: no completion arrived within
    /// [`ExecConfig::watchdog_deadline`](super::ExecConfig::watchdog_deadline).
    WatchdogTrip,
    /// An attempt opened a version in the concurrent versioned-memory
    /// substrate (versioned runs only; recorded by the worker at
    /// dispatch, one instant per attempt).
    VersionOpen {
        /// The task's stage.
        stage: u8,
        /// The task whose attempt opened the version.
        task: u32,
        /// The attempt number (version ids are per-task; each replay
        /// re-opens the id with a fresh buffer).
        attempt: u32,
    },
    /// The speculative reads an attempt issued through its version:
    /// how many were tracked into the read set, and how many of those
    /// were satisfied by *eagerly forwarding* an uncommitted store from
    /// an earlier active version (paper §2.1).
    VersionReads {
        /// The task's stage.
        stage: u8,
        /// The reading task.
        task: u32,
        /// The attempt that issued the reads.
        attempt: u32,
        /// Tracked reads issued.
        reads: u64,
        /// Reads satisfied by eager forwarding.
        forwards: u64,
    },
    /// The commit frontier found the attempt's version invalidated: an
    /// earlier version's non-silent write (or rollback) contradicted a
    /// value this version observed. Paired with a
    /// [`Squash`](TraceEventKind::Squash) carrying
    /// [`SquashReason::MemoryConflict`].
    VersionConflict {
        /// The invalidated task's stage.
        stage: u8,
        /// The invalidated task.
        task: u32,
        /// The task whose version squashed it.
        by: u32,
    },
    /// In-order commit published the version's write buffer to committed
    /// state (versioned runs only; accompanies the task's
    /// [`Commit`](TraceEventKind::Commit)).
    VersionCommit {
        /// The committing task's stage.
        stage: u8,
        /// The committing task.
        task: u32,
        /// Buffered writes published.
        writes: u64,
    },
    /// The speculation governor moved the runahead window cap (AIMD:
    /// multiplicative shrink on a conflict burst, additive growth after
    /// a clean window). `task` is the frontier task whose outcome drove
    /// the decision.
    GovernorThrottle {
        /// The frontier task whose commit/squash triggered the move.
        task: u32,
        /// Window cap before the move.
        from: u32,
        /// Window cap after the move.
        to: u32,
    },
    /// The governor redispatched a conflict-squashed task with backoff
    /// instead of re-racing it immediately.
    GovernorBackoff {
        /// The squashed task being held back.
        task: u32,
        /// The discarded attempt.
        attempt: u32,
        /// Delay in absorbed-completion ticks (0 when parked).
        delay: u64,
        /// When serialized, the committer the task is parked behind.
        behind: Option<u32>,
    },
    /// The windowed misspeculation rate crossed the ceiling: the
    /// governor collapsed the loop to sequential inline issue.
    GovernorDegrade {
        /// The frontier task whose squash tipped the rate over.
        task: u32,
        /// The windowed misspeculation rate at the collapse, permille.
        rate_permille: u32,
    },
    /// The governor left degraded mode to probe speculation again at a
    /// small pipelined window.
    GovernorReprobe {
        /// The frontier task whose commit ended the degraded period.
        task: u32,
        /// The probe's window cap.
        window: u32,
    },
}

impl TraceEventKind {
    /// The task this event concerns, if it concerns one.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            TraceEventKind::QueuePush { task, .. }
            | TraceEventKind::QueuePop { task, .. }
            | TraceEventKind::Dispatch { task, .. }
            | TraceEventKind::Complete { task, .. }
            | TraceEventKind::Squash { task, .. }
            | TraceEventKind::Commit { task, .. }
            | TraceEventKind::SpecDecision { task, .. }
            | TraceEventKind::VersionOpen { task, .. }
            | TraceEventKind::VersionReads { task, .. }
            | TraceEventKind::VersionConflict { task, .. }
            | TraceEventKind::VersionCommit { task, .. }
            | TraceEventKind::GovernorThrottle { task, .. }
            | TraceEventKind::GovernorBackoff { task, .. }
            | TraceEventKind::GovernorDegrade { task, .. }
            | TraceEventKind::GovernorReprobe { task, .. }
            | TraceEventKind::FallbackActivated { from_task: task } => Some(TaskId(*task)),
            TraceEventKind::WatchdogTrip => None,
        }
    }
}

/// The shared run clock: one `Instant` read per recorded event, or a
/// no-op when tracing is off.
#[derive(Clone, Copy, Debug)]
pub(super) struct TraceClock {
    start: Option<Instant>,
}

impl TraceClock {
    pub(super) fn new(enabled: bool) -> Self {
        Self {
            start: enabled.then(Instant::now),
        }
    }

    pub(super) fn enabled(&self) -> bool {
        self.start.is_some()
    }
}

/// A single-owner event buffer: each worker thread (and the supervisor)
/// owns one exclusively, so recording is lock-free by construction —
/// one clock read plus one `Vec` push, and a single branch when tracing
/// is disabled.
#[derive(Debug)]
pub(super) struct TraceBuffer {
    clock: TraceClock,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    pub(super) fn new(clock: TraceClock) -> Self {
        Self {
            clock,
            events: Vec::new(),
        }
    }

    /// Whether recording does anything (off ⇒ every call is one branch).
    pub(super) fn enabled(&self) -> bool {
        self.clock.enabled()
    }

    /// Records `kind` at the current run clock. No-op when disabled.
    pub(super) fn record(&mut self, kind: TraceEventKind) {
        if let Some(start) = self.clock.start {
            self.events.push(TraceEvent {
                ts: start.elapsed().as_nanos() as u64,
                kind,
            });
        }
    }

    pub(super) fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// A structural defect found by [`Timeline::validate`]: the trace
/// violates the execution model's happens-before and ordering rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDefect {
    /// A completed attempt has no matching dispatch event.
    CompletionWithoutDispatch {
        /// The completed task.
        task: u32,
        /// The completed attempt.
        attempt: u32,
    },
    /// An attempt completed before it was dispatched.
    CompletionBeforeDispatch {
        /// The offending task.
        task: u32,
        /// The offending attempt.
        attempt: u32,
    },
    /// One `(task, attempt)` pair completed twice — the
    /// one-outstanding-attempt protocol forbids that.
    DuplicateCompletion {
        /// The offending task.
        task: u32,
        /// The offending attempt.
        attempt: u32,
    },
    /// A committed attempt never completed (fallback commits excepted).
    CommitWithoutCompletion {
        /// The committed task.
        task: u32,
        /// The committing attempt.
        attempt: u32,
    },
    /// A squashed attempt never reached the frontier as a completion.
    SquashWithoutCompletion {
        /// The squashed task.
        task: u32,
        /// The squashed attempt.
        attempt: u32,
    },
    /// The `i`-th commit event is not task `i`: commits left sequential
    /// program order.
    CommitOutOfOrder {
        /// Position in the commit sequence.
        position: u32,
        /// The task that committed there instead.
        task: u32,
    },
    /// A queue pop has no matching earlier push (only checked for
    /// timelines that record queue events at all).
    PopWithoutPush {
        /// The popped task.
        task: u32,
        /// The popped attempt.
        attempt: u32,
    },
}

impl fmt::Display for TraceDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDefect::CompletionWithoutDispatch { task, attempt } => {
                write!(f, "t{task}#{attempt} completed without a dispatch")
            }
            TraceDefect::CompletionBeforeDispatch { task, attempt } => {
                write!(f, "t{task}#{attempt} completed before its dispatch")
            }
            TraceDefect::DuplicateCompletion { task, attempt } => {
                write!(f, "t{task}#{attempt} completed twice")
            }
            TraceDefect::CommitWithoutCompletion { task, attempt } => {
                write!(f, "t{task}#{attempt} committed without completing")
            }
            TraceDefect::SquashWithoutCompletion { task, attempt } => {
                write!(f, "t{task}#{attempt} squashed without completing")
            }
            TraceDefect::CommitOutOfOrder { position, task } => {
                write!(f, "commit #{position} was t{task}, not t{position}")
            }
            TraceDefect::PopWithoutPush { task, attempt } => {
                write!(f, "t{task}#{attempt} popped without a matching push")
            }
        }
    }
}

impl std::error::Error for TraceDefect {}

/// Summary statistics over a set of duration samples (one [`TimeUnit`]
/// apart — nanoseconds for native timelines, cycles for simulated
/// ones). An empty sample set reports all-zero stats.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DurationStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub total: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl DurationStats {
    /// Computes the summary of `samples` (consumed: sorted in place).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let total: u64 = samples.iter().sum();
        let pct = |p: f64| -> u64 {
            let idx = (p * (samples.len() - 1) as f64).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        Self {
            count,
            total,
            min: samples[0],
            max: samples[samples.len() - 1],
            mean: total as f64 / count as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }

    /// Whether there were no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Per-stage derived metrics: the stage histograms of the observability
/// layer (service time, queue wait, commit latency).
#[derive(Clone, Debug, PartialEq)]
pub struct StageMetrics {
    /// The stage.
    pub stage: StageId,
    /// Body executions observed (including squashed attempts).
    pub attempts: u64,
    /// Tasks of this stage that committed.
    pub committed: u64,
    /// Dispatch→complete duration per attempt — how long the stage's
    /// bodies actually ran.
    pub service: DurationStats,
    /// Queue-push→queue-pop duration per attempt — how long work sat in
    /// the stage's input queue (empty for simulated timelines, which
    /// model queues analytically).
    pub queue_wait: DurationStats,
    /// Complete→commit duration for committing attempts — how long
    /// finished work waited in the reorder buffer for the in-order
    /// frontier to reach it.
    pub commit_latency: DurationStats,
}

impl StageMetrics {
    /// Total time this stage's workers spent inside bodies (the sum of
    /// service samples) — the numerator of pipeline-balance shares.
    pub fn busy(&self) -> u64 {
        self.service.total
    }
}

/// The critical path estimate: the longest dependence chain through the
/// run, weighted by each task's measured service time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total weight of the chain, in the timeline's [`TimeUnit`].
    pub length: u64,
    /// The chain itself, in task order.
    pub tasks: Vec<TaskId>,
}

/// A post-run execution timeline: every recorded [`TraceEvent`], merged
/// across workers and sorted by timestamp.
///
/// Produced by the native executor (on
/// [`NativeReport::timeline`](super::NativeReport::timeline) when
/// [`ExecConfig::trace`](super::ExecConfig::trace) is set) and by
/// [`Simulator::run_timeline`](crate::Simulator::run_timeline); both
/// emit the same schema, so the two sides are diffable event-for-event.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    unit: TimeUnit,
    stage_count: u8,
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Merges per-thread buffers into one timestamp-sorted timeline.
    ///
    /// The sort is stable, so events a single thread recorded in order
    /// (in particular the commit unit's in-order commit sequence) keep
    /// their relative order even under timestamp ties.
    pub(crate) fn stitch(
        unit: TimeUnit,
        stage_count: u8,
        buffers: impl IntoIterator<Item = Vec<TraceEvent>>,
    ) -> Self {
        let mut events: Vec<TraceEvent> = buffers.into_iter().flatten().collect();
        events.sort_by_key(|e| e.ts);
        Self {
            unit,
            stage_count,
            events,
        }
    }

    /// The unit of every timestamp in this timeline.
    pub fn unit(&self) -> TimeUnit {
        self.unit
    }

    /// Pipeline stages of the traced run.
    pub fn stage_count(&self) -> u8 {
        self.stage_count
    }

    /// All events, sorted by timestamp.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The timestamp of the last event — the traced span of the run.
    pub fn span(&self) -> u64 {
        self.events.last().map_or(0, |e| e.ts)
    }

    /// The tasks in the order they committed. For a well-formed
    /// timeline this is exactly `0..n` — sequential program order —
    /// which is what makes sim and native timelines diffable.
    pub fn commit_order(&self) -> Vec<TaskId> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Commit { task, .. } => Some(TaskId(task)),
                _ => None,
            })
            .collect()
    }

    /// Checks the structural invariants every trace must satisfy:
    ///
    /// 1. each attempt's events are ordered dispatch → complete
    ///    (recorded by the same worker thread, so the ordering is
    ///    exact), with at most one completion per `(task, attempt)`;
    /// 2. every committed attempt completed (commits by the sequential
    ///    fallback, marked [`FALLBACK_ATTEMPT`](super::FALLBACK_ATTEMPT),
    ///    are exempt — they have no worker-side events);
    /// 3. every squashed attempt completed (reaching the frontier is
    ///    what gets an attempt squashed);
    /// 4. commits happen in sequential program order: the `i`-th commit
    ///    event is task `i`;
    /// 5. if the timeline records queue events at all, every pop has a
    ///    matching push.
    ///
    /// Cross-thread pairs (rules 2, 3, 5) are checked for *existence*,
    /// not timestamp order: each thread records into its own lock-free
    /// buffer, so two records of one physical handoff (the dispatcher's
    /// push and a worker's pop, a worker's completion and the
    /// frontier's commit) can land nanoseconds apart in either order.
    /// The handoff itself is what the invariant asserts.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceDefect`] found.
    pub fn validate(&self) -> Result<(), TraceDefect> {
        // Existence pre-pass: cross-thread counterparts, order-free.
        let mut completed_set: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pushed: HashMap<(u32, u32), u64> = HashMap::new();
        for e in &self.events {
            match e.kind {
                TraceEventKind::Complete { task, attempt, .. } => {
                    *completed_set.entry((task, attempt)).or_insert(0) += 1;
                }
                TraceEventKind::QueuePush { task, attempt, .. } => {
                    pushed.insert((task, attempt), e.ts);
                }
                _ => {}
            }
        }
        if let Some((&(task, attempt), _)) = completed_set.iter().find(|(_, &n)| n > 1) {
            return Err(TraceDefect::DuplicateCompletion { task, attempt });
        }
        let any_push = !pushed.is_empty();
        // Ordering pass over the merged stream.
        let mut dispatched: HashMap<(u32, u32), u64> = HashMap::new();
        let mut commits = 0u32;
        for e in &self.events {
            match e.kind {
                TraceEventKind::QueuePop { task, attempt, .. } => {
                    if any_push && !pushed.contains_key(&(task, attempt)) {
                        return Err(TraceDefect::PopWithoutPush { task, attempt });
                    }
                }
                TraceEventKind::Dispatch { task, attempt, .. } => {
                    dispatched.entry((task, attempt)).or_insert(e.ts);
                }
                TraceEventKind::Complete { task, attempt, .. } => {
                    let Some(&d) = dispatched.get(&(task, attempt)) else {
                        return Err(TraceDefect::CompletionWithoutDispatch { task, attempt });
                    };
                    if d > e.ts {
                        return Err(TraceDefect::CompletionBeforeDispatch { task, attempt });
                    }
                }
                TraceEventKind::Squash { task, attempt, .. } => {
                    if !completed_set.contains_key(&(task, attempt)) {
                        return Err(TraceDefect::SquashWithoutCompletion { task, attempt });
                    }
                }
                TraceEventKind::Commit { task, attempt } => {
                    // Fallback and governor-degraded commits run inline
                    // on the supervisor thread: no worker-side events.
                    if attempt != super::FALLBACK_ATTEMPT
                        && attempt != super::DEGRADED_ATTEMPT
                        && !completed_set.contains_key(&(task, attempt))
                    {
                        return Err(TraceDefect::CommitWithoutCompletion { task, attempt });
                    }
                    if task != commits {
                        return Err(TraceDefect::CommitOutOfOrder {
                            position: commits,
                            task,
                        });
                    }
                    commits += 1;
                }
                TraceEventKind::QueuePush { .. }
                | TraceEventKind::SpecDecision { .. }
                | TraceEventKind::FallbackActivated { .. }
                | TraceEventKind::WatchdogTrip
                // Versioned-memory events carry no ordering constraints
                // of their own: opens/reads are worker-side annotations,
                // conflicts and version-commits are frontier-side twins
                // of Squash/Commit events (which ARE constrained above).
                | TraceEventKind::VersionOpen { .. }
                | TraceEventKind::VersionReads { .. }
                | TraceEventKind::VersionConflict { .. }
                | TraceEventKind::VersionCommit { .. }
                // Governor decisions are frontier-side annotations with
                // no cross-thread counterpart to pair up.
                | TraceEventKind::GovernorThrottle { .. }
                | TraceEventKind::GovernorBackoff { .. }
                | TraceEventKind::GovernorDegrade { .. }
                | TraceEventKind::GovernorReprobe { .. } => {}
            }
        }
        Ok(())
    }

    /// Derives the per-stage histograms: service time per attempt,
    /// queue wait per attempt, commit latency per committed task.
    pub fn stage_metrics(&self) -> Vec<StageMetrics> {
        let n = self.stage_count as usize;
        let mut dispatch: HashMap<(u32, u32), u64> = HashMap::new();
        let mut push: HashMap<(u32, u32), u64> = HashMap::new();
        // (ts, stage) of each attempt's completion, for commit latency.
        let mut complete: HashMap<(u32, u32), (u64, u8)> = HashMap::new();
        let mut service: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut queue_wait: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut commit_latency: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut attempts = vec![0u64; n];
        let mut committed = vec![0u64; n];
        for e in &self.events {
            match e.kind {
                TraceEventKind::QueuePush { task, attempt, .. } => {
                    push.insert((task, attempt), e.ts);
                }
                TraceEventKind::QueuePop {
                    stage,
                    task,
                    attempt,
                    ..
                } => {
                    if let Some(&p) = push.get(&(task, attempt)) {
                        queue_wait[stage as usize].push(e.ts.saturating_sub(p));
                    }
                }
                TraceEventKind::Dispatch { task, attempt, .. } => {
                    dispatch.insert((task, attempt), e.ts);
                }
                TraceEventKind::Complete {
                    stage,
                    task,
                    attempt,
                    ..
                } => {
                    let s = stage as usize;
                    attempts[s] += 1;
                    if let Some(&d) = dispatch.get(&(task, attempt)) {
                        service[s].push(e.ts.saturating_sub(d));
                    }
                    complete.insert((task, attempt), (e.ts, stage));
                }
                TraceEventKind::Commit { task, attempt } => {
                    if let Some(&(c, stage)) = complete.get(&(task, attempt)) {
                        let s = stage as usize;
                        committed[s] += 1;
                        commit_latency[s].push(e.ts.saturating_sub(c));
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut rows = service
            .into_iter()
            .zip(queue_wait)
            .zip(commit_latency)
            .enumerate();
        // (The zip keeps the three per-stage sample vectors aligned.)
        for (s, ((srv, qw), cl)) in &mut rows {
            out.push(StageMetrics {
                stage: StageId(s as u8),
                attempts: attempts[s],
                committed: committed[s],
                service: DurationStats::from_samples(srv),
                queue_wait: DurationStats::from_samples(qw),
                commit_latency: DurationStats::from_samples(cl),
            });
        }
        out
    }

    /// Estimates the critical path: the heaviest chain through the
    /// dependence graph (synchronized dependences plus *violated*
    /// speculated ones — the edges that really serialized execution),
    /// with each task weighted by its committing attempt's measured
    /// service time. Tasks committed by the sequential fallback carry
    /// zero weight (they have no worker-side measurement), so the
    /// estimate covers the pipelined portion of the run.
    pub fn critical_path(&self, graph: &TaskGraph) -> CriticalPath {
        // Service time of the attempt each task committed at.
        let mut dispatch: HashMap<(u32, u32), u64> = HashMap::new();
        let mut complete: HashMap<(u32, u32), u64> = HashMap::new();
        let mut weight: HashMap<u32, u64> = HashMap::new();
        for e in &self.events {
            match e.kind {
                TraceEventKind::Dispatch { task, attempt, .. } => {
                    dispatch.insert((task, attempt), e.ts);
                }
                TraceEventKind::Complete { task, attempt, .. } => {
                    complete.insert((task, attempt), e.ts);
                }
                TraceEventKind::Commit { task, attempt } => {
                    if let (Some(&d), Some(&c)) = (
                        dispatch.get(&(task, attempt)),
                        complete.get(&(task, attempt)),
                    ) {
                        weight.insert(task, c.saturating_sub(d));
                    }
                }
                _ => {}
            }
        }
        let n = graph.len();
        let mut best = vec![0u64; n];
        let mut pred: Vec<Option<u32>> = vec![None; n];
        let (mut tail, mut tail_len) = (None, 0u64);
        for (idx, task) in graph.tasks().iter().enumerate() {
            let w = weight.get(&(idx as u32)).copied().unwrap_or(0);
            let mut longest = 0u64;
            let mut via = None;
            let serializing = graph.deps(task).iter().copied().chain(
                graph
                    .spec_deps(task)
                    .iter()
                    .filter(|s| s.violated)
                    .map(|s| s.on),
            );
            for d in serializing {
                if best[d.0 as usize] >= longest {
                    longest = best[d.0 as usize];
                    via = Some(d.0);
                }
            }
            best[idx] = longest + w;
            pred[idx] = via;
            if best[idx] >= tail_len {
                tail_len = best[idx];
                tail = Some(idx as u32);
            }
        }
        let mut tasks = Vec::new();
        let mut cursor = tail;
        while let Some(t) = cursor {
            tasks.push(TaskId(t));
            cursor = pred[t as usize];
        }
        tasks.reverse();
        CriticalPath {
            length: tail_len,
            tasks,
        }
    }

    /// Exports the timeline as Chrome `trace_event` JSON (the "JSON
    /// Array Format" with a `traceEvents` wrapper), loadable in
    /// [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
    ///
    /// `stage_labels` names each stage in slice titles (missing entries
    /// fall back to `stage{N}`). Attempts become duration (`X`) slices
    /// on their worker's track; squashes, commits, speculation
    /// decisions, and recovery actions become instant (`i`) events on
    /// the supervisor track; queue occupancy becomes counter (`C`)
    /// series. Native nanosecond timestamps are exported in the
    /// format's microseconds; simulated timelines map one cycle to one
    /// microsecond.
    pub fn to_chrome_json(&self, stage_labels: &[String]) -> String {
        let label = |s: u8| -> String {
            stage_labels
                .get(s as usize)
                .cloned()
                .unwrap_or_else(|| format!("stage{s}"))
        };
        let ts_us = |ts: u64| -> f64 {
            match self.unit {
                TimeUnit::Nanos => ts as f64 / 1000.0,
                TimeUnit::Cycles => ts as f64,
            }
        };
        let mut entries: Vec<String> = Vec::new();
        entries.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"seqpar pipelined executor\"}}"
                .to_string(),
        );
        entries.push(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"supervisor (dispatch + commit)\"}}"
                .to_string(),
        );
        let mut named_cores: Vec<usize> = Vec::new();
        let mut dispatch: HashMap<(u32, u32), u64> = HashMap::new();
        for e in &self.events {
            match e.kind {
                TraceEventKind::Dispatch {
                    core,
                    task,
                    attempt,
                    ..
                } => {
                    dispatch.insert((task, attempt), e.ts);
                    if !named_cores.contains(&core) {
                        named_cores.push(core);
                        entries.push(format!(
                            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                             \"args\":{{\"name\":\"core {core}\"}}}}",
                            core + 1
                        ));
                    }
                }
                TraceEventKind::Complete {
                    core,
                    stage,
                    task,
                    attempt,
                    panicked,
                    stalled,
                } => {
                    let start = dispatch.get(&(task, attempt)).copied().unwrap_or(e.ts);
                    let dur = ts_us(e.ts) - ts_us(start);
                    entries.push(format!(
                        "{{\"name\":\"{} t{task}#{attempt}\",\"cat\":\"task\",\"ph\":\"X\",\
                         \"ts\":{:.3},\"dur\":{dur:.3},\"pid\":0,\"tid\":{},\
                         \"args\":{{\"task\":{task},\"attempt\":{attempt},\"stage\":{stage},\
                         \"panicked\":{panicked},\"stalled\":{stalled}}}}}",
                        escape_json(&label(stage)),
                        ts_us(start),
                        core + 1
                    ));
                }
                TraceEventKind::QueuePush {
                    stage, occupancy, ..
                }
                | TraceEventKind::QueuePop {
                    stage, occupancy, ..
                } => {
                    entries.push(format!(
                        "{{\"name\":\"queue {}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":0,\
                         \"args\":{{\"entries\":{occupancy}}}}}",
                        escape_json(&label(stage)),
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::Squash {
                    task,
                    attempt,
                    reason,
                } => {
                    entries.push(format!(
                        "{{\"name\":\"squash:{reason} t{task}#{attempt}\",\"cat\":\"squash\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"attempt\":{attempt}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::Commit { task, attempt } => {
                    entries.push(format!(
                        "{{\"name\":\"commit t{task}\",\"cat\":\"commit\",\"ph\":\"i\",\
                         \"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"attempt\":{attempt}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::SpecDecision {
                    task,
                    violated,
                    survived,
                } => {
                    entries.push(format!(
                        "{{\"name\":\"speculation t{task}\",\"cat\":\"speculation\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"violated\":{violated},\"survived\":{survived}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::FallbackActivated { from_task } => {
                    entries.push(format!(
                        "{{\"name\":\"sequential fallback\",\"cat\":\"recovery\",\"ph\":\"i\",\
                         \"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\
                         \"args\":{{\"from_task\":{from_task}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::WatchdogTrip => {
                    entries.push(format!(
                        "{{\"name\":\"watchdog trip\",\"cat\":\"recovery\",\"ph\":\"i\",\
                         \"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::VersionOpen {
                    stage,
                    task,
                    attempt,
                } => {
                    entries.push(format!(
                        "{{\"name\":\"version open t{task}#{attempt}\",\"cat\":\"memory\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"attempt\":{attempt},\"stage\":{stage}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::VersionReads {
                    stage,
                    task,
                    attempt,
                    reads,
                    forwards,
                } => {
                    entries.push(format!(
                        "{{\"name\":\"version reads t{task}#{attempt}\",\"cat\":\"memory\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"attempt\":{attempt},\"stage\":{stage},\
                         \"reads\":{reads},\"forwards\":{forwards}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::VersionConflict { stage, task, by } => {
                    entries.push(format!(
                        "{{\"name\":\"version conflict t{task} by t{by}\",\"cat\":\"memory\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"by\":{by},\"stage\":{stage}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::VersionCommit {
                    stage,
                    task,
                    writes,
                } => {
                    entries.push(format!(
                        "{{\"name\":\"version commit t{task}\",\"cat\":\"memory\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"stage\":{stage},\"writes\":{writes}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::GovernorThrottle { task, from, to } => {
                    entries.push(format!(
                        "{{\"name\":\"governor throttle {from}\\u2192{to}\",\
                         \"cat\":\"governor\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\
                         \"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"from\":{from},\"to\":{to}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::GovernorBackoff {
                    task,
                    attempt,
                    delay,
                    behind,
                } => {
                    let behind = behind.map_or("null".to_string(), |b| b.to_string());
                    entries.push(format!(
                        "{{\"name\":\"governor backoff t{task}#{attempt}\",\
                         \"cat\":\"governor\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\
                         \"tid\":0,\"s\":\"t\",\
                         \"args\":{{\"task\":{task},\"attempt\":{attempt},\
                         \"delay\":{delay},\"behind\":{behind}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::GovernorDegrade {
                    task,
                    rate_permille,
                } => {
                    entries.push(format!(
                        "{{\"name\":\"governor degrade\",\"cat\":\"governor\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\
                         \"args\":{{\"task\":{task},\"rate_permille\":{rate_permille}}}}}",
                        ts_us(e.ts)
                    ));
                }
                TraceEventKind::GovernorReprobe { task, window } => {
                    entries.push(format!(
                        "{{\"name\":\"governor reprobe\",\"cat\":\"governor\",\
                         \"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\
                         \"args\":{{\"task\":{task},\"window\":{window}}}}}",
                        ts_us(e.ts)
                    ));
                }
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&entries.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { ts, kind }
    }

    fn dispatch(ts: u64, task: u32, attempt: u32) -> TraceEvent {
        ev(
            ts,
            TraceEventKind::Dispatch {
                core: 0,
                stage: 0,
                task,
                attempt,
            },
        )
    }

    fn complete(ts: u64, task: u32, attempt: u32) -> TraceEvent {
        ev(
            ts,
            TraceEventKind::Complete {
                core: 0,
                stage: 0,
                task,
                attempt,
                panicked: false,
                stalled: false,
            },
        )
    }

    fn commit(ts: u64, task: u32, attempt: u32) -> TraceEvent {
        ev(ts, TraceEventKind::Commit { task, attempt })
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut buf = TraceBuffer::new(TraceClock::new(false));
        assert!(!buf.enabled());
        buf.record(TraceEventKind::WatchdogTrip);
        assert!(buf.into_events().is_empty());
    }

    #[test]
    fn enabled_buffer_timestamps_monotonically() {
        let mut buf = TraceBuffer::new(TraceClock::new(true));
        buf.record(TraceEventKind::WatchdogTrip);
        buf.record(TraceEventKind::WatchdogTrip);
        let events = buf.into_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].ts <= events[1].ts);
    }

    #[test]
    fn stitch_sorts_and_validate_accepts_a_legal_trace() {
        let t = Timeline::stitch(
            TimeUnit::Nanos,
            1,
            vec![
                vec![dispatch(10, 1, 0), complete(30, 1, 0)],
                vec![dispatch(5, 0, 0), complete(20, 0, 0)],
                vec![commit(25, 0, 0), commit(35, 1, 0)],
            ],
        );
        assert_eq!(t.len(), 6);
        assert!(t.events().windows(2).all(|w| w[0].ts <= w[1].ts));
        t.validate().expect("legal trace");
        assert_eq!(t.commit_order(), vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn validate_rejects_out_of_order_commits() {
        let t = Timeline::stitch(
            TimeUnit::Nanos,
            1,
            vec![vec![dispatch(0, 1, 0), complete(1, 1, 0), commit(2, 1, 0)]],
        );
        assert_eq!(
            t.validate(),
            Err(TraceDefect::CommitOutOfOrder {
                position: 0,
                task: 1
            })
        );
    }

    #[test]
    fn validate_rejects_commit_without_completion() {
        let t = Timeline::stitch(TimeUnit::Nanos, 1, vec![vec![commit(2, 0, 0)]]);
        assert_eq!(
            t.validate(),
            Err(TraceDefect::CommitWithoutCompletion {
                task: 0,
                attempt: 0
            })
        );
        // A fallback commit is exempt: it has no worker-side events.
        let fb = Timeline::stitch(
            TimeUnit::Nanos,
            1,
            vec![vec![commit(2, 0, crate::exec::FALLBACK_ATTEMPT)]],
        );
        fb.validate().expect("fallback commits are exempt");
    }

    #[test]
    fn validate_rejects_completion_without_dispatch() {
        let t = Timeline::stitch(TimeUnit::Nanos, 1, vec![vec![complete(1, 0, 0)]]);
        assert_eq!(
            t.validate(),
            Err(TraceDefect::CompletionWithoutDispatch {
                task: 0,
                attempt: 0
            })
        );
    }

    #[test]
    fn duration_stats_summarize_and_handle_empty() {
        let s = DurationStats::from_samples(vec![30, 10, 20]);
        assert_eq!((s.count, s.min, s.max, s.p50), (3, 10, 30, 20));
        assert!((s.mean - 20.0).abs() < 1e-9);
        let empty = DurationStats::from_samples(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn stage_metrics_derive_service_and_commit_latency() {
        let mut events = vec![
            ev(
                0,
                TraceEventKind::QueuePush {
                    stage: 0,
                    task: 0,
                    attempt: 0,
                    occupancy: 1,
                },
            ),
            ev(
                4,
                TraceEventKind::QueuePop {
                    stage: 0,
                    task: 0,
                    attempt: 0,
                    occupancy: 0,
                },
            ),
        ];
        events.extend([dispatch(5, 0, 0), complete(15, 0, 0), commit(20, 0, 0)]);
        let t = Timeline::stitch(TimeUnit::Nanos, 1, vec![events]);
        let m = &t.stage_metrics()[0];
        assert_eq!(m.attempts, 1);
        assert_eq!(m.committed, 1);
        assert_eq!(m.service.p50, 10);
        assert_eq!(m.queue_wait.p50, 4);
        assert_eq!(m.commit_latency.p50, 5);
        assert_eq!(m.busy(), 10);
    }

    #[test]
    fn critical_path_follows_serializing_edges() {
        // Two-stage chain: t0 -> t1 (sync dep); t1's service dominates.
        let mut g = TaskGraph::new(2);
        let a = g.add_task(0, 0, 1, &[], &[]);
        g.add_task(1, 0, 1, &[a], &[]);
        let t = Timeline::stitch(
            TimeUnit::Nanos,
            2,
            vec![vec![
                dispatch(0, 0, 0),
                complete(10, 0, 0),
                dispatch(10, 1, 0),
                complete(40, 1, 0),
                commit(11, 0, 0),
                commit(41, 1, 0),
            ]],
        );
        let cp = t.critical_path(&g);
        assert_eq!(cp.length, 40);
        assert_eq!(cp.tasks, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn chrome_export_wraps_trace_events() {
        let t = Timeline::stitch(
            TimeUnit::Nanos,
            1,
            vec![vec![
                dispatch(0, 0, 0),
                complete(1000, 0, 0),
                commit(1500, 0, 0),
            ]],
        );
        let json = t.to_chrome_json(&["B \"transform\"".to_string()]);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("B \\\"transform\\\" t0#0"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains("commit t0"));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
