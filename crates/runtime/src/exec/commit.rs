//! The in-order commit unit: a reorder buffer over worker completions.
//!
//! Outputs are released strictly in task order — the original
//! sequential program order — which is what makes the executor's output
//! byte-identical to sequential execution no matter how threads
//! interleave. The commit point is also where misspeculation is
//! resolved: a speculative first attempt of a task whose speculated
//! dependence manifested (a violated [`SpecDep`](crate::SpecDep)) is
//! squashed here, its output discarded, and the task sent back for
//! re-execution. Because every earlier task has already committed by
//! then, the re-execution observes fully committed state — the native
//! analogue of a TLS restart reading committed memory versions.
//!
//! Fault supervision reuses the same squash machinery. Each attempt
//! reaching the frontier passes a fixed decision ladder — worker panic
//! → misspeculation squash → output validation → spurious squash →
//! commit (the same ladder [`supervise_task`](super::faults::supervise_task)
//! replays as a pure function) — and every recovery decision is made
//! *here*, strictly in task order, from nothing but `(task, attempt)`
//! and the [`FaultPlan`]. That is what keeps the recovery counters, the
//! squash counts, and the output stream deterministic across thread
//! interleavings even under injected chaos. Fault-recovery replays
//! (unlike misspeculation replays, which are part of the normal
//! protocol) are charged against a per-task retry budget; exhausting it
//! makes [`CommitUnit::absorb`] demand the sequential fallback instead
//! of aborting the run.
//!
//! Versioned runs ([`NativeExecutor::run_versioned`](super::NativeExecutor::run_versioned))
//! swap the misspeculation rung's *source*: instead of replaying the
//! graph's recorded [`SpecDep`](crate::SpecDep) violations, the frontier
//! asks the [`ConcurrentVersionedMemory`] whether the attempt's version
//! survived ([`commit_check`](ConcurrentVersionedMemory::commit_check) —
//! checked *before* anything irrevocable happens), rolls conflicted
//! versions back, and publishes the survivor's write buffer as the very
//! last step of the commit. Conflict squashes are real races detected at
//! access granularity, so — unlike every other rung — their *count* is
//! timing-dependent; the committed output and memory state remain
//! byte-identical to sequential execution, and they are never charged
//! against the retry budget.

use super::faults::{FaultKind, FaultPlan, RecoveryCounts};
use super::governor::{BackoffDecision, Governor, GovernorEvent};
use super::metrics::{NativeReport, WorkerStat};
use super::stage::{WorkItem, WorkerDone};
use super::trace::{SquashReason, TimeUnit, Timeline, TraceBuffer, TraceEvent, TraceEventKind};
use super::{ExecError, TaskOutput, DEGRADED_ATTEMPT, FALLBACK_ATTEMPT};
use crate::task::{TaskGraph, TaskId};
use seqpar_specmem::{Addr, CommitError, ConcurrentVersionedMemory, VersionId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A read-only, thread-safe view of the commit frontier, handed to task
/// bodies via [`TaskCtx`](super::TaskCtx).
#[derive(Clone, Debug)]
pub struct CommitView {
    watermark: Arc<AtomicU64>,
}

impl CommitView {
    pub(super) fn new(watermark: Arc<AtomicU64>) -> Self {
        Self { watermark }
    }

    /// How many tasks have committed, in task order.
    pub fn committed_tasks(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Whether `task` has committed.
    pub fn is_committed(&self, task: TaskId) -> bool {
        (task.0 as u64) < self.committed_tasks()
    }
}

/// The recovery policy the commit unit applies at the frontier.
pub(super) struct Supervisor<'p> {
    /// The chaos schedule (consulted for commit-side spurious squashes;
    /// the worker side consults it for panics, stalls, and corruption).
    pub faults: &'p FaultPlan,
    /// Fault-recovery replays allowed per task before the executor
    /// falls back to sequential execution.
    pub retry_budget: u32,
    /// Whether committing attempts are checked against the sequential
    /// oracle.
    pub validate: bool,
}

/// When the dispatcher should put a squashed attempt back in play.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum Release {
    /// Requeue right away (every redispatch when the governor is off).
    Now,
    /// Hold for this many absorbed-completion ticks (governor backoff).
    AfterTick(u64),
    /// Hold until the named task has committed (governor park).
    AfterCommit(u32),
}

/// A squashed attempt headed back to its stage queue, with the
/// governor's release decision attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) struct Redispatch {
    /// The work item to requeue (attempt already incremented).
    pub item: WorkItem,
    /// When to requeue it.
    pub release: Release,
}

impl Redispatch {
    fn now(task: u32, attempt: u32) -> Self {
        Self {
            item: WorkItem {
                task,
                attempt: attempt + 1,
            },
            release: Release::Now,
        }
    }
}

/// What absorbing a completion asks the dispatcher to do next.
pub(super) enum Absorbed {
    /// Keep pipelining; re-dispatch these squashed attempts.
    Continue(Vec<Redispatch>),
    /// A task exhausted its retry budget: abandon worker dispatch and
    /// commit the remaining tasks in order on the supervisor thread.
    Fallback,
}

/// The commit-side state: reorder buffer, counters, and the growing
/// output stream.
pub(super) struct CommitUnit<'g> {
    graph: &'g TaskGraph,
    watermark: Arc<AtomicU64>,
    /// Index of the next task to commit.
    next: usize,
    /// Finished-but-uncommitted results, keyed by task index.
    buffer: HashMap<u32, WorkerDone>,
    output: Vec<u8>,
    attempts: u64,
    squashes: u64,
    violations: u64,
    speculations_survived: u64,
    work: u64,
    recovery: RecoveryCounts,
    /// Fault-recovery replays charged so far, per task.
    retries_by_task: HashMap<u32, u32>,
    /// Frontier-side trace events (squashes, commits, speculation
    /// decisions); a no-op recorder when tracing is off.
    trace: TraceBuffer,
    /// The versioned memory substrate when this is a
    /// [`run_versioned`](super::NativeExecutor::run_versioned) run:
    /// the frontier's squash source and the publisher of each committed
    /// task's write buffer. `None` on trace-driven runs.
    mem: Option<&'g ConcurrentVersionedMemory>,
    /// The speculation governor, when
    /// [`ExecConfig::governor`](super::ExecConfig::governor) turned it
    /// on. Fed strictly at the frontier (plus early conflict squashes),
    /// it owns the runahead window cap and the backoff decisions.
    governor: Option<Governor>,
    /// Run start, the zero of the commit clock fed to the governor's
    /// throughput pay-off checks.
    started: std::time::Instant,
}

impl<'g> CommitUnit<'g> {
    pub(super) fn new(
        graph: &'g TaskGraph,
        watermark: Arc<AtomicU64>,
        trace: TraceBuffer,
        mem: Option<&'g ConcurrentVersionedMemory>,
        governor: Option<Governor>,
    ) -> Self {
        Self {
            graph,
            watermark,
            next: 0,
            buffer: HashMap::new(),
            output: Vec::new(),
            attempts: 0,
            squashes: 0,
            violations: 0,
            speculations_survived: 0,
            work: 0,
            recovery: RecoveryCounts::default(),
            retries_by_task: HashMap::new(),
            trace,
            mem,
            governor,
            started: std::time::Instant::now(),
        }
    }

    /// The exclusive upper bound on task ids the dispatcher may release,
    /// when the governor is gating runahead: the commit frontier plus
    /// the current window cap, or the frontier alone while degraded
    /// (inline issue replaces dispatch). `None` when ungoverned.
    pub(super) fn dispatch_limit(&self) -> Option<u64> {
        self.governor.as_ref().map(|g| {
            if g.degraded() {
                self.next as u64
            } else {
                self.next as u64 + u64::from(g.window())
            }
        })
    }

    /// Whether the governor has collapsed the loop to sequential inline
    /// issue.
    pub(super) fn governor_degraded(&self) -> bool {
        self.governor.as_ref().is_some_and(Governor::degraded)
    }

    /// Translates governor events into frontier trace events, stamped
    /// with the frontier task that drove the decision.
    fn trace_governor(&mut self, task: u32, events: Vec<GovernorEvent>) {
        for e in events {
            self.trace.record(match e {
                GovernorEvent::Throttle { from, to } => {
                    TraceEventKind::GovernorThrottle { task, from, to }
                }
                GovernorEvent::Degrade { rate_permille } => TraceEventKind::GovernorDegrade {
                    task,
                    rate_permille,
                },
                GovernorEvent::Reprobe { window } => {
                    TraceEventKind::GovernorReprobe { task, window }
                }
            });
        }
    }

    /// Builds the redispatch for a conflict-squashed attempt, feeding
    /// the squash into the governor (when on) and translating its
    /// backoff decision. Ungoverned runs always release immediately —
    /// the pre-governor protocol, bit for bit.
    fn conflict_redispatch(
        &mut self,
        task: u32,
        attempt: u32,
        addr: Option<Addr>,
        by: Option<u32>,
        at_frontier: bool,
    ) -> Redispatch {
        let Some(g) = self.governor.as_mut() else {
            return Redispatch::now(task, attempt);
        };
        let (decision, events) = g.on_conflict(task, attempt, addr.map(|a| a.0), by, at_frontier);
        self.trace_governor(task, events);
        let item = WorkItem {
            task,
            attempt: attempt + 1,
        };
        let release = match decision {
            BackoffDecision::Immediate => Release::Now,
            BackoffDecision::Delay(delay) => {
                self.trace.record(TraceEventKind::GovernorBackoff {
                    task,
                    attempt,
                    delay,
                    behind: None,
                });
                Release::AfterTick(delay)
            }
            BackoffDecision::Park { behind } => {
                self.trace.record(TraceEventKind::GovernorBackoff {
                    task,
                    attempt,
                    delay: 0,
                    behind: Some(behind),
                });
                Release::AfterCommit(behind)
            }
        };
        Redispatch { item, release }
    }

    /// Feeds one commit into the governor — stamped with wall time for
    /// the throughput pay-off checks — and traces its reactions.
    fn governor_commit(&mut self, task: u32) {
        let now = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let events = match self.governor.as_mut() {
            Some(g) => g.on_commit(now),
            None => return,
        };
        self.trace_governor(task, events);
    }

    /// Discards `task`'s open memory version, if any, so its replay's
    /// `begin` finds a clean slate. Every non-commit outcome of the
    /// decision ladder must pass through here before re-dispatching:
    /// the version may hold partial writes (panic mid-body) or doomed
    /// state (conflict), and a recycled id with a live version would
    /// panic the substrate.
    fn rollback_version(&self, task: u32) {
        if let Some(m) = self.mem {
            let v = VersionId(u64::from(task));
            if m.is_active(v) {
                m.rollback(v);
            }
        }
    }

    /// Tasks committed so far.
    pub(super) fn committed_tasks(&self) -> usize {
        self.next
    }

    /// Charges one fault-recovery replay against `task`'s budget.
    /// Returns `true` when the budget is exhausted (budget 0 exhausts
    /// on the first fault).
    fn charge(&mut self, task: u32, budget: u32) -> bool {
        self.recovery.retries += 1;
        let charged = self.retries_by_task.entry(task).or_insert(0);
        *charged += 1;
        *charged > budget
    }

    /// Buffers one completion, then commits as far in task order as the
    /// buffer allows, applying the recovery ladder to each attempt that
    /// reaches the frontier. `oracle(task, attempt)` replays a task
    /// body sequentially for output validation.
    ///
    /// The `attempts` counter is charged here — at frontier processing,
    /// not at receipt — so it too depends only on the per-task attempt
    /// sequences, never on arrival order.
    pub(super) fn absorb(
        &mut self,
        done: WorkerDone,
        sup: &Supervisor<'_>,
        oracle: &mut dyn FnMut(u32, u32) -> Result<TaskOutput, ExecError>,
    ) -> Result<Absorbed, ExecError> {
        if (done.task as usize) < self.next {
            // Stale completion for an already-committed task (cannot
            // happen under the one-outstanding-attempt-per-task
            // protocol; tolerated defensively).
            return Ok(Absorbed::Continue(Vec::new()));
        }
        // Early conflict squash (governed versioned runs only): a
        // completion whose version is already doomed need not wait in
        // the reorder buffer for the frontier to discover the conflict —
        // squashing it on arrival is what lets the governor's backoff
        // shape the *re*-dispatch instead of re-racing the hot address.
        // Panicked attempts are excluded (the frontier's panic rung owns
        // their rollback and their retry-budget charge), as is the
        // frontier task itself (its redispatch may never be delayed).
        if self.governor.is_some() && !done.panicked && (done.task as usize) > self.next {
            if let Some(m) = self.mem {
                let v = VersionId(u64::from(done.task));
                if let Some((by, addr)) = m.squash_info(v) {
                    let stage = self.graph.task(TaskId(done.task)).stage.0;
                    // Charged here instead of at the frontier: this
                    // attempt never reaches the reorder buffer, and the
                    // `committed == attempts - squashes` invariant must
                    // keep holding.
                    self.attempts += 1;
                    if done.stalled {
                        self.recovery.stalls_absorbed += 1;
                    }
                    self.squashes += 1;
                    self.violations += 1;
                    self.trace.record(TraceEventKind::VersionConflict {
                        stage,
                        task: done.task,
                        by: by.0 as u32,
                    });
                    self.trace.record(TraceEventKind::Squash {
                        task: done.task,
                        attempt: done.attempt,
                        reason: SquashReason::MemoryConflict,
                    });
                    m.rollback(v);
                    let r = self.conflict_redispatch(
                        done.task,
                        done.attempt,
                        addr,
                        Some(by.0 as u32),
                        false,
                    );
                    return Ok(Absorbed::Continue(vec![r]));
                }
            }
        }
        self.buffer.insert(done.task, done);
        self.drain(sup, oracle)
    }

    /// Commits as far in task order as the reorder buffer allows,
    /// applying the recovery ladder to each attempt reaching the
    /// frontier. Also called standalone after a degraded inline commit,
    /// to flush buffered successors past the advanced frontier.
    pub(super) fn drain(
        &mut self,
        sup: &Supervisor<'_>,
        oracle: &mut dyn FnMut(u32, u32) -> Result<TaskOutput, ExecError>,
    ) -> Result<Absorbed, ExecError> {
        // Fast path for the governed tight loop: with nothing buffered
        // (the common case while degraded) there is nothing to flush.
        if self.buffer.is_empty() {
            return Ok(Absorbed::Continue(Vec::new()));
        }
        let mut redispatch = Vec::new();
        while let Some(done) = self.buffer.remove(&(self.next as u32)) {
            self.attempts += 1;
            if done.stalled {
                self.recovery.stalls_absorbed += 1;
            }
            let task = self.graph.task(TaskId(done.task));
            let violated = self
                .graph
                .spec_deps(task)
                .iter()
                .filter(|d| d.violated)
                .count() as u64;
            // 1. Worker panic (injected or real): discard like a
            // misspeculation and replay, charged against the budget.
            if done.panicked {
                self.recovery.panics_recovered += 1;
                self.trace.record(TraceEventKind::Squash {
                    task: done.task,
                    attempt: done.attempt,
                    reason: SquashReason::PanicRecovered,
                });
                // A body that panicked mid-run may have left its memory
                // version open with partial writes; discard them.
                self.rollback_version(done.task);
                if self.charge(done.task, sup.retry_budget) {
                    return Ok(Absorbed::Fallback);
                }
                redispatch.push(Redispatch::now(done.task, done.attempt));
                continue;
            }
            // 2a. Trace-driven misspeculation: the recorded speculated
            // dependence manifested and this attempt ran ahead of it.
            // Part of the normal protocol — never charged against the
            // retry budget. (If attempt 0 panicked instead, the replay
            // is attempt ≥ 1 and no longer speculative, so this squash
            // never fires and the task's violations go untallied —
            // deterministically so; the simulated twin accounts
            // identically.) Versioned runs skip this rung entirely:
            // the memory substrate, not the recording, decides.
            if self.mem.is_none() && violated > 0 && done.attempt == 0 {
                self.squashes += 1;
                self.violations += violated;
                self.trace.record(TraceEventKind::Squash {
                    task: done.task,
                    attempt: done.attempt,
                    reason: SquashReason::Misspeculation,
                });
                // The governor treats a trace-driven misspeculation as a
                // frontier conflict with no address: it feeds the window
                // controller but never delays the frontier's replay.
                let r = self.conflict_redispatch(done.task, done.attempt, None, None, true);
                redispatch.push(r);
                continue;
            }
            // 2b. Conflict-driven misspeculation: the attempt's memory
            // version was invalidated by an earlier version's
            // conflicting write (or a rollback's revoked forward). The
            // check runs *before* validation and publication — nothing
            // irrevocable has happened yet — and, like rung 2a, is
            // never charged against the retry budget.
            if let Some(m) = self.mem {
                let v = VersionId(u64::from(done.task));
                match m.commit_check(v) {
                    Ok(()) => {}
                    Err(CommitError::Squashed { by }) => {
                        self.squashes += 1;
                        self.violations += 1;
                        self.trace.record(TraceEventKind::VersionConflict {
                            stage: task.stage.0,
                            task: done.task,
                            by: by.0 as u32,
                        });
                        self.trace.record(TraceEventKind::Squash {
                            task: done.task,
                            attempt: done.attempt,
                            reason: SquashReason::MemoryConflict,
                        });
                        let addr = m.squash_info(v).and_then(|(_, a)| a);
                        m.rollback(v);
                        let r = self.conflict_redispatch(
                            done.task,
                            done.attempt,
                            addr,
                            Some(by.0 as u32),
                            true,
                        );
                        redispatch.push(r);
                        continue;
                    }
                    Err(e @ (CommitError::NotOldest | CommitError::Unknown)) => {
                        // In-order commit already published every
                        // earlier version, and every non-panicked
                        // attempt opened one, so neither can occur.
                        unreachable!("versioned commit frontier: {e} for task {}", done.task)
                    }
                }
            }
            // 3. Output validation: compare against the body's
            // replayable sequential oracle (attempt ≥ 1 forces the
            // non-speculative result); corrupted outputs are caught and
            // replayed rather than committed.
            if sup.validate {
                let expected = oracle(done.task, done.attempt.max(1))?;
                if done.output != expected {
                    self.recovery.corruptions_caught += 1;
                    self.trace.record(TraceEventKind::Squash {
                        task: done.task,
                        attempt: done.attempt,
                        reason: SquashReason::CorruptionCaught,
                    });
                    // The version itself passed the conflict check, but
                    // the replay will re-open it — discard it first.
                    self.rollback_version(done.task);
                    if self.charge(done.task, sup.retry_budget) {
                        return Ok(Absorbed::Fallback);
                    }
                    redispatch.push(Redispatch::now(done.task, done.attempt));
                    continue;
                }
            }
            // 4. Spurious squash: the fault plan discards a perfectly
            // good attempt at the commit point.
            if sup.faults.fault_at(done.task, done.attempt) == Some(FaultKind::SpuriousSquash) {
                self.recovery.spurious_squashes += 1;
                self.trace.record(TraceEventKind::Squash {
                    task: done.task,
                    attempt: done.attempt,
                    reason: SquashReason::SpuriousSquash,
                });
                self.rollback_version(done.task);
                if self.charge(done.task, sup.retry_budget) {
                    return Ok(Absorbed::Fallback);
                }
                redispatch.push(Redispatch::now(done.task, done.attempt));
                continue;
            }
            // 5. Commit.
            if let Some(m) = self.mem {
                // Publish the surviving version's write buffer — the
                // one irrevocable memory step, taken last. The version
                // is the oldest active and unsquashed (rung 2b, and
                // nothing after an earlier commit can doom it: writes
                // only squash *later* readers), so this cannot fail.
                let v = VersionId(u64::from(done.task));
                let writes = m.probe(v).map_or(0, |p| p.writes);
                m.try_commit(v)
                    .expect("oldest unsquashed version must commit");
                self.trace.record(TraceEventKind::VersionCommit {
                    stage: task.stage.0,
                    task: done.task,
                    writes,
                });
            } else {
                let survived = self
                    .graph
                    .spec_deps(task)
                    .iter()
                    .filter(|d| !d.violated)
                    .count() as u64;
                self.speculations_survived += survived;
                if !self.graph.spec_deps(task).is_empty() {
                    // The runtime outcome of this task's speculation,
                    // recorded once, at the attempt that commits.
                    self.trace.record(TraceEventKind::SpecDecision {
                        task: done.task,
                        violated: violated as u32,
                        survived: survived as u32,
                    });
                }
            }
            self.trace.record(TraceEventKind::Commit {
                task: done.task,
                attempt: done.attempt,
            });
            self.output.extend_from_slice(&done.output.bytes);
            self.work += done.output.work;
            self.next += 1;
            self.watermark.store(self.next as u64, Ordering::Release);
            self.governor_commit(done.task);
        }
        Ok(Absorbed::Continue(redispatch))
    }

    /// Commits the frontier task from an output computed inline on the
    /// supervisor thread while the governor holds the loop degraded.
    /// Unlike [`commit_inline`](Self::commit_inline) this is *not*
    /// terminal: the version opened for the inline attempt is published
    /// through the substrate, and the governor keeps counting toward its
    /// next re-probe, after which pipelined dispatch resumes.
    ///
    /// The inline version cannot have been squashed: it opened after
    /// every earlier task committed, writes and rollbacks only squash
    /// *later* readers, and forwarding only flows earlier→later.
    ///
    /// `inline_fast` says the attempt ran on the substrate's inline
    /// fast path ([`try_begin_inline`](ConcurrentVersionedMemory::try_begin_inline))
    /// and must be sealed with
    /// [`commit_inline`](ConcurrentVersionedMemory::commit_inline)
    /// rather than the versioned commit sweep.
    pub(super) fn commit_degraded(&mut self, output: &TaskOutput, inline_fast: bool) {
        let task = self.next as u32;
        self.attempts += 1;
        if let Some(m) = self.mem {
            let v = VersionId(u64::from(task));
            let writes = if inline_fast {
                m.commit_inline(v)
            } else {
                let writes = m.probe(v).map_or(0, |p| p.writes);
                m.try_commit(v)
                    .expect("a version opened at the frontier cannot be squashed");
                writes
            };
            self.trace.record(TraceEventKind::VersionCommit {
                stage: self.graph.task(TaskId(task)).stage.0,
                task,
                writes,
            });
        } else {
            // Trace-driven runs tally survivors at every commit (rung 5
            // does the same for replays); a degraded inline commit ran
            // non-speculatively, so nothing manifested and everything
            // recorded survives.
            let t = self.graph.task(TaskId(task));
            let survived = self
                .graph
                .spec_deps(t)
                .iter()
                .filter(|d| !d.violated)
                .count() as u64;
            self.speculations_survived += survived;
            if !self.graph.spec_deps(t).is_empty() {
                self.trace.record(TraceEventKind::SpecDecision {
                    task,
                    violated: 0,
                    survived: survived as u32,
                });
            }
        }
        self.trace.record(TraceEventKind::Commit {
            task,
            attempt: DEGRADED_ATTEMPT,
        });
        self.output.extend_from_slice(&output.bytes);
        self.work += output.work;
        self.next += 1;
        self.watermark.store(self.next as u64, Ordering::Release);
        self.governor_commit(task);
    }

    /// Commits one task executed in-order on the supervisor thread —
    /// the sequential fallback after budget exhaustion or a watchdog
    /// trip. Speculation counters stay frozen at their pre-fallback
    /// values; only `attempts` and `fallback_tasks` advance.
    pub(super) fn commit_inline(&mut self, output: &TaskOutput) {
        self.attempts += 1;
        self.recovery.fallback_tasks += 1;
        self.trace.record(TraceEventKind::Commit {
            task: self.next as u32,
            attempt: FALLBACK_ATTEMPT,
        });
        self.output.extend_from_slice(&output.bytes);
        self.work += output.work;
        self.next += 1;
        self.watermark.store(self.next as u64, Ordering::Release);
    }

    /// Finalizes the run: when tracing was on, the frontier's events are
    /// stitched with the dispatcher's and every worker's into the
    /// report's [`Timeline`].
    pub(super) fn into_report(
        self,
        wall: Duration,
        workers: Vec<WorkerStat>,
        watchdog_trips: u64,
        fallback_activated: bool,
        dispatch_events: Vec<TraceEvent>,
        worker_events: Vec<Vec<TraceEvent>>,
    ) -> NativeReport {
        let timeline = self.trace.enabled().then(|| {
            let mut buffers = vec![self.trace.into_events(), dispatch_events];
            buffers.extend(worker_events);
            Timeline::stitch(TimeUnit::Nanos, self.graph.stage_count(), buffers)
        });
        NativeReport {
            wall,
            output: self.output,
            tasks_committed: self.next as u64,
            attempts: self.attempts,
            squashes: self.squashes,
            violations: self.violations,
            speculations_survived: self.speculations_survived,
            work: self.work,
            recovery: self.recovery,
            watchdog_trips,
            fallback_activated,
            workers,
            timeline,
            mem: self.mem.map(ConcurrentVersionedMemory::stats),
            governor: self.governor.as_ref().map(Governor::stats),
        }
    }
}
