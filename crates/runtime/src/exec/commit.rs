//! The in-order commit unit: a reorder buffer over worker completions.
//!
//! Outputs are released strictly in task order — the original
//! sequential program order — which is what makes the executor's output
//! byte-identical to sequential execution no matter how threads
//! interleave. The commit point is also where misspeculation is
//! resolved: a speculative first attempt of a task whose speculated
//! dependence manifested (a violated [`SpecDep`](crate::SpecDep)) is
//! squashed here, its output discarded, and the task sent back for
//! re-execution. Because every earlier task has already committed by
//! then, the re-execution observes fully committed state — the native
//! analogue of a TLS restart reading committed memory versions.

use super::metrics::{NativeReport, WorkerStat};
use super::stage::{WorkItem, WorkerDone};
use crate::task::{TaskGraph, TaskId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A read-only, thread-safe view of the commit frontier, handed to task
/// bodies via [`TaskCtx`](super::TaskCtx).
#[derive(Clone, Debug)]
pub struct CommitView {
    watermark: Arc<AtomicU64>,
}

impl CommitView {
    pub(super) fn new(watermark: Arc<AtomicU64>) -> Self {
        Self { watermark }
    }

    /// How many tasks have committed, in task order.
    pub fn committed_tasks(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Whether `task` has committed.
    pub fn is_committed(&self, task: TaskId) -> bool {
        (task.0 as u64) < self.committed_tasks()
    }
}

/// The commit-side state: reorder buffer, counters, and the growing
/// output stream.
pub(super) struct CommitUnit<'g> {
    graph: &'g TaskGraph,
    watermark: Arc<AtomicU64>,
    /// Index of the next task to commit.
    next: usize,
    /// Finished-but-uncommitted results, keyed by task index.
    buffer: HashMap<u32, WorkerDone>,
    output: Vec<u8>,
    attempts: u64,
    squashes: u64,
    violations: u64,
    speculations_survived: u64,
    work: u64,
}

impl<'g> CommitUnit<'g> {
    pub(super) fn new(graph: &'g TaskGraph, watermark: Arc<AtomicU64>) -> Self {
        Self {
            graph,
            watermark,
            next: 0,
            buffer: HashMap::new(),
            output: Vec::new(),
            attempts: 0,
            squashes: 0,
            violations: 0,
            speculations_survived: 0,
            work: 0,
        }
    }

    /// Tasks committed so far.
    pub(super) fn committed_tasks(&self) -> usize {
        self.next
    }

    /// Buffers one completion, then commits as far in task order as the
    /// buffer allows. Returns the re-dispatches for any squashed
    /// attempts encountered at the commit point.
    pub(super) fn absorb(&mut self, done: WorkerDone) -> Vec<WorkItem> {
        self.attempts += 1;
        self.buffer.insert(done.task, done);
        let mut redispatch = Vec::new();
        while let Some(done) = self.buffer.remove(&(self.next as u32)) {
            let task = self.graph.task(TaskId(done.task));
            let violated = task.spec_deps.iter().filter(|d| d.violated).count() as u64;
            if violated > 0 && done.attempt == 0 {
                // The speculated dependence manifested and this attempt
                // ran ahead of it: squash. The violation tally matches
                // the simulator's (one per violated dependence, charged
                // once per task).
                self.squashes += 1;
                self.violations += violated;
                redispatch.push(WorkItem {
                    task: done.task,
                    attempt: done.attempt + 1,
                });
                continue;
            }
            self.speculations_survived +=
                task.spec_deps.iter().filter(|d| !d.violated).count() as u64;
            self.output.extend_from_slice(&done.output.bytes);
            self.work += done.output.work;
            self.next += 1;
            self.watermark.store(self.next as u64, Ordering::Release);
        }
        redispatch
    }

    pub(super) fn into_report(self, wall: Duration, workers: Vec<WorkerStat>) -> NativeReport {
        NativeReport {
            wall,
            output: self.output,
            tasks_committed: self.next as u64,
            attempts: self.attempts,
            squashes: self.squashes,
            violations: self.violations,
            speculations_survived: self.speculations_survived,
            work: self.work,
            workers,
        }
    }
}
