//! The real-thread pipelined executor.
//!
//! [`Simulator`](crate::Simulator) *estimates* what a plan would do on
//! the paper's modelled hardware; [`NativeExecutor`] actually *runs* the
//! plan on OS threads. It consumes the same inputs — an
//! [`ExecutionPlan`] and a [`TaskGraph`] — plus a [`NativeBody`] that
//! supplies each task's real computation, and enforces the paper's
//! execution model with real concurrency primitives:
//!
//! * **Bounded queues** (§3.1's 32-entry core-to-core queues): each
//!   stage's input is a bounded channel of [`ExecConfig::queue_capacity`]
//!   entries; a producer stage that runs too far ahead blocks.
//! * **Replicated parallel stages** (§3.2's dynamic least-loaded
//!   assignment): a `Parallel` stage's workers share one MPMC channel,
//!   so the next task goes to whichever worker frees up first — the
//!   runnable equivalent of "least work enqueued". `RoundRobin` stages
//!   get per-worker queues fed statically by iteration number.
//! * **In-order commit**: a reorder buffer releases task outputs in
//!   task order (the sequential program order), exactly the commit
//!   discipline the paper's versioned memory enforces.
//! * **Misspeculation rollback**: the dynamic dependence events recorded
//!   in the task graph drive squashes. A task's first attempt is
//!   dispatched without waiting for its speculated producers — that is
//!   what makes it speculative — so when a speculated dependence
//!   *manifested* (a violated [`SpecDep`](crate::SpecDep)), the commit
//!   unit rejects the attempt, discards its output, and re-dispatches
//!   the task. The re-execution starts only after every earlier task
//!   has committed (commit is in-order), mirroring how a TLS restart
//!   re-reads committed memory versions.
//!
//! Because commit order is fixed and squash decisions depend only on the
//! recorded dependence events — not on thread timing — the output byte
//! stream, the squash count, and the per-task work counters are fully
//! deterministic across runs and thread interleavings. The differential
//! suite (`tests/differential_native.rs`) checks both properties against
//! the simulator for every workload.

mod commit;
mod metrics;
mod stage;

pub use commit::CommitView;
pub use metrics::{NativeReport, WorkerStat};

use crate::plan::ExecutionPlan;
use crate::sim::SimError;
use crate::task::{StageId, TaskGraph, TaskId};
use commit::CommitUnit;
use stage::{StageQueues, WorkItem, WorkerDone};
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Machine parameters for native execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Entries per stage input queue (the paper models 32-entry
    /// hardware queues; [`crate::SimConfig::queue_capacity`] is the
    /// simulated twin of this knob).
    pub queue_capacity: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self { queue_capacity: 32 }
    }
}

impl ExecConfig {
    /// A config whose queues hold `queue_capacity` entries.
    pub fn with_queue_capacity(queue_capacity: usize) -> Self {
        Self {
            queue_capacity: queue_capacity.max(1),
        }
    }
}

/// What one task produced: the bytes it contributes to the in-order
/// output stream plus the work units it really performed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskOutput {
    /// Bytes appended to the committed output stream (commit order =
    /// task order). Most stages of most workloads emit nothing; the
    /// transform stage emits its iteration's output.
    pub bytes: Vec<u8>,
    /// Work units performed (a deterministic cost meter, the native
    /// twin of simulated task cost).
    pub work: u64,
}

impl TaskOutput {
    /// An output with `bytes` and no metered work.
    pub fn bytes(bytes: Vec<u8>) -> Self {
        Self { bytes, work: 0 }
    }

    /// An empty output.
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Execution context handed to [`NativeBody::run`].
#[derive(Debug)]
pub struct TaskCtx<'a> {
    /// The stage this task belongs to.
    pub stage: StageId,
    /// The loop iteration this task came from.
    pub iter: u64,
    /// 0 for the original (speculative) dispatch; incremented by each
    /// rollback re-execution.
    pub attempt: u32,
    /// Live view of the in-order commit frontier.
    pub commits: &'a CommitView,
}

impl TaskCtx<'_> {
    /// Whether this execution is the speculative first attempt.
    ///
    /// A first attempt is dispatched without waiting for the task's
    /// speculated producers, so a body whose trace recorded a
    /// manifested dependence must produce its *stale* result here (the
    /// value speculation would really have computed); re-executions
    /// (`attempt > 0`) run after every earlier task committed and must
    /// produce the true result. Branching on this flag rather than on
    /// the racy commit watermark keeps outputs deterministic.
    pub fn speculative(&self) -> bool {
        self.attempt == 0
    }
}

/// The real computation behind a task graph: the executor calls
/// [`NativeBody::run`] on worker threads, one call per dispatch (so a
/// squashed task's body runs again for the re-execution).
pub trait NativeBody: Send + Sync {
    /// Executes `task` and returns its output.
    fn run(&self, task: TaskId, ctx: &TaskCtx<'_>) -> TaskOutput;
}

impl<F> NativeBody for F
where
    F: Fn(TaskId, &TaskCtx<'_>) -> TaskOutput + Send + Sync,
{
    fn run(&self, task: TaskId, ctx: &TaskCtx<'_>) -> TaskOutput {
        self(task, ctx)
    }
}

/// The real-thread pipelined executor.
#[derive(Clone, Debug, Default)]
pub struct NativeExecutor {
    config: ExecConfig,
}

impl NativeExecutor {
    /// Creates an executor with the given queue parameters.
    pub fn new(config: ExecConfig) -> Self {
        Self { config }
    }

    /// The queue parameters in use.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Runs `graph` under `plan`, with `body` supplying each task's
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StageMismatch`] when the plan and graph
    /// disagree on stage count — the same validation the simulator
    /// performs (core- and queue-count limits are physical-machine
    /// model parameters and do not constrain native execution).
    pub fn run(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        body: &dyn NativeBody,
    ) -> Result<NativeReport, SimError> {
        if plan.stage_count() != graph.stage_count() {
            return Err(SimError::StageMismatch {
                plan: plan.stage_count(),
                graph: graph.stage_count(),
            });
        }
        let started = Instant::now();
        if graph.is_empty() {
            return Ok(NativeReport::empty(started.elapsed()));
        }

        let n = graph.len();
        // Dependence bookkeeping: outstanding synchronized deps per task
        // and the reverse edges to decrement when a task finishes.
        // Speculated deps deliberately do NOT gate dispatch — running
        // ahead of them is what speculation means.
        let mut deps_left: Vec<usize> = vec![0; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (idx, task) in graph.tasks().iter().enumerate() {
            deps_left[idx] = task.deps.len();
            for d in &task.deps {
                dependents[d.0 as usize].push(idx as u32);
            }
        }
        // Per-stage release cursors: tasks enter their stage queue in
        // iteration order, like the simulator's list scheduling.
        let stage_count = graph.stage_count() as usize;
        let mut stage_tasks: Vec<VecDeque<u32>> = vec![VecDeque::new(); stage_count];
        for (idx, task) in graph.tasks().iter().enumerate() {
            stage_tasks[task.stage.0 as usize].push_back(idx as u32);
        }
        // Squashed tasks re-enter at the front of the release order.
        let mut requeue: Vec<VecDeque<WorkItem>> = vec![VecDeque::new(); stage_count];

        let watermark = Arc::new(AtomicU64::new(0));
        let view = CommitView::new(Arc::clone(&watermark));
        let mut commit = CommitUnit::new(graph, watermark);

        let mut queues = StageQueues::new(graph, plan, self.config.queue_capacity);
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<WorkerDone>();

        let report = std::thread::scope(|scope| {
            let workers = queues.spawn_workers(scope, graph, body, &view, &done_tx);
            drop(done_tx);

            // Seed: release every stage's dep-free prefix.
            for s in 0..stage_count {
                Self::release_ready(s, &mut stage_tasks, &mut requeue, &deps_left, &queues);
            }

            let mut committed = 0usize;
            while committed < n {
                let done = done_rx.recv().expect("workers alive while tasks remain");
                if done.panicked {
                    // Abort dispatch; joining the worker below re-raises
                    // the body's panic.
                    break;
                }
                // Propagate readiness on first completion only: a
                // re-execution's dependents were released long ago.
                if done.attempt == 0 {
                    for &dep in &dependents[done.task as usize] {
                        deps_left[dep as usize] -= 1;
                    }
                }
                for squashed in commit.absorb(done) {
                    // Rollback: discard the speculative output and
                    // re-dispatch the task to its stage, ahead of any
                    // not-yet-released work.
                    let stage = graph.task(TaskId(squashed.task)).stage.0 as usize;
                    requeue[stage].push_back(squashed);
                }
                committed = commit.committed_tasks();
                for s in 0..stage_count {
                    Self::release_ready(s, &mut stage_tasks, &mut requeue, &deps_left, &queues);
                }
            }

            queues.close();
            let worker_stats = workers
                .into_iter()
                .map(|w| match w.join() {
                    Ok(stat) => stat,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect();
            commit.into_report(started.elapsed(), worker_stats)
        });
        Ok(report)
    }

    /// Pushes released-but-unqueued work into stage `s`'s queue without
    /// blocking; anything that does not fit stays pending for the next
    /// event. Requeued (squashed) tasks go first.
    fn release_ready(
        s: usize,
        stage_tasks: &mut [VecDeque<u32>],
        requeue: &mut [VecDeque<WorkItem>],
        deps_left: &[usize],
        queues: &StageQueues,
    ) {
        while let Some(&item) = requeue[s].front() {
            if queues.try_send(s, item) {
                requeue[s].pop_front();
            } else {
                return;
            }
        }
        while let Some(&task) = stage_tasks[s].front() {
            if deps_left[task as usize] > 0 {
                return;
            }
            if queues.try_send(s, WorkItem { task, attempt: 0 }) {
                stage_tasks[s].pop_front();
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests;
