//! The real-thread pipelined executor.
//!
//! [`Simulator`](crate::Simulator) *estimates* what a plan would do on
//! the paper's modelled hardware; [`NativeExecutor`] actually *runs* the
//! plan on OS threads. It consumes the same inputs — an
//! [`ExecutionPlan`] and a [`TaskGraph`] — plus a [`NativeBody`] that
//! supplies each task's real computation, and enforces the paper's
//! execution model with real concurrency primitives:
//!
//! * **Bounded queues** (§3.1's 32-entry core-to-core queues): each
//!   stage's input is a bounded channel of [`ExecConfig::queue_capacity`]
//!   entries; a producer stage that runs too far ahead blocks.
//! * **Replicated parallel stages** (§3.2's dynamic least-loaded
//!   assignment): a `Parallel` stage's workers share one MPMC channel,
//!   so the next task goes to whichever worker frees up first — the
//!   runnable equivalent of "least work enqueued". `RoundRobin` stages
//!   get per-worker queues fed statically by iteration number.
//! * **In-order commit**: a reorder buffer releases task outputs in
//!   task order (the sequential program order), exactly the commit
//!   discipline the paper's versioned memory enforces.
//! * **Misspeculation rollback**, from one of two squash sources:
//!   * *Trace-driven* ([`NativeExecutor::run`]): the dynamic dependence
//!     events recorded in the task graph drive squashes. A task's first
//!     attempt is dispatched without waiting for its speculated
//!     producers — that is what makes it speculative — so when a
//!     speculated dependence *manifested* (a violated
//!     [`SpecDep`](crate::SpecDep)), the commit unit rejects the
//!     attempt, discards its output, and re-dispatches the task.
//!   * *Conflict-driven* ([`NativeExecutor::run_versioned`]): the task
//!     bodies route their speculative state through a shared
//!     [`ConcurrentVersionedMemory`], each attempt running inside its
//!     own version. Reads eagerly forward uncommitted stores from
//!     earlier versions; a non-silent write that contradicts a value a
//!     later version already observed squashes that version *at the
//!     memory substrate*, at access granularity — real conflict
//!     detection, not a replayed recording. The commit frontier checks
//!     the version ([`ConcurrentVersionedMemory::commit_check`]) before
//!     irrevocably publishing anything, rolls conflicted versions back,
//!     and re-dispatches.
//!
//!   Either way the re-execution starts only after every earlier task
//!   has committed (commit is in-order), mirroring how a TLS restart
//!   re-reads committed memory versions.
//!
//! Because commit order is fixed and trace-driven squash decisions
//! depend only on the recorded dependence events — not on thread timing
//! — [`NativeExecutor::run`]'s output byte stream, squash count, and
//! per-task work counters are fully deterministic across runs and
//! thread interleavings. Under [`NativeExecutor::run_versioned`] the
//! *conflict counts* are genuinely timing-dependent (they record real
//! races), but the committed output is still byte-identical to
//! sequential execution: a version only commits when every value it
//! read matched the state all earlier commits produced. The
//! differential suites (`tests/differential_native.rs`,
//! `tests/versioned_native.rs`) check these properties against the
//! simulator and the sequential oracle for every workload.

mod commit;
mod faults;
pub(crate) mod governor;
mod metrics;
mod stage;
mod trace;

pub use commit::CommitView;
pub use faults::{supervise_task, FaultKind, FaultPlan, RecoveryCounts, TaskSupervision};
pub use governor::{GovernorConfig, GovernorStats};
pub use metrics::{NativeReport, WorkerStat};
pub use trace::{
    CriticalPath, DurationStats, SquashReason, StageMetrics, TimeUnit, Timeline, TraceDefect,
    TraceEvent, TraceEventKind,
};

use crate::plan::ExecutionPlan;
use crate::sim::SimError;
use crate::task::{StageId, TaskGraph, TaskId};
use commit::{Absorbed, CommitUnit, Redispatch, Release, Supervisor};
use crossbeam::channel::RecvTimeoutError;
use governor::Governor;
use seqpar_specmem::{ConcurrentVersionedMemory, VersionId};
use stage::{StageQueues, WorkItem, WorkerDone};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use trace::{TraceBuffer, TraceClock};

/// The attempt number the sequential fallback runs tasks at: far above
/// any pipelined attempt, never speculative, never fault-injected.
/// Trace consumers see it on the [`TraceEventKind::Commit`] events of
/// fallback-committed tasks, which have no worker-side dispatch.
pub const FALLBACK_ATTEMPT: u32 = u32::MAX;

/// The attempt number governor-degraded inline commits run at. Like
/// [`FALLBACK_ATTEMPT`] these tasks execute on the supervisor thread
/// with no worker-side dispatch events — but unlike the fallback they
/// still run *through* the versioned-memory substrate and the run stays
/// live: pipelined dispatch resumes at the governor's next re-probe.
pub const DEGRADED_ATTEMPT: u32 = u32::MAX - 1;

/// Why a native run could not produce a report.
///
/// Recoverable failures (worker panics, corrupted outputs, stalls,
/// spurious squashes) never surface here — the supervisor squashes and
/// replays them, degrading to sequential execution when a retry budget
/// runs out. `ExecError` is reserved for the cases where no legal
/// sequential outcome can be produced at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The plan failed validation against the graph (shared with the
    /// simulator's checks).
    Invalid(SimError),
    /// A task body panicked where no replay is possible: on the
    /// sequential fallback path or inside the validation oracle. The
    /// body itself cannot produce the task's sequential result, so the
    /// run has no legal outcome.
    TaskFailed {
        /// The task whose body failed.
        task: TaskId,
    },
    /// Every worker exited while tasks remained uncommitted (a runtime
    /// invariant violation, reported instead of hanging forever).
    WorkersDisconnected {
        /// Tasks committed before the workers vanished.
        committed: u64,
    },
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Invalid(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Invalid(e) => write!(f, "invalid plan: {e}"),
            ExecError::TaskFailed { task } => write!(
                f,
                "task {} failed un-replayably (body panicked on the sequential path)",
                task.0
            ),
            ExecError::WorkersDisconnected { committed } => write!(
                f,
                "all workers disconnected with only {committed} tasks committed"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Machine and supervision parameters for native execution.
///
/// Not `Copy` (the fault plan owns a forced-injection list); clone it
/// to share across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Entries per stage input queue (the paper models 32-entry
    /// hardware queues; [`crate::SimConfig::queue_capacity`] is the
    /// simulated twin of this knob). Values below 1 are clamped to 1 —
    /// a zero-capacity queue could never transfer an item under this
    /// try-send/retry protocol, so capacity 0 behaves exactly like
    /// capacity 1 (see [`ExecConfig::with_queue_capacity`]).
    pub queue_capacity: usize,
    /// Fault-recovery replays allowed per task (worker panics,
    /// corrupted outputs, spurious squashes — misspeculation replays
    /// are part of the normal protocol and are not charged). When a
    /// task exceeds the budget the executor degrades to in-order
    /// sequential execution of the remaining tasks instead of
    /// aborting; budget 0 falls back on the first fault.
    pub retry_budget: u32,
    /// Heartbeat deadline for the stall watchdog: when no completion
    /// arrives for this long while tasks remain, the supervisor
    /// declares the pipeline wedged and switches to the sequential
    /// fallback.
    pub watchdog_deadline: Duration,
    /// The chaos schedule (default: [`FaultPlan::none`], which injects
    /// nothing).
    pub fault_plan: FaultPlan,
    /// Validate every committing attempt against the body's sequential
    /// oracle, even when the fault plan cannot corrupt outputs.
    /// Validation runs each body once more on the supervisor thread,
    /// so it is off by default; it turns itself on whenever
    /// `fault_plan` can corrupt. Requires the body's committed output
    /// to be attempt-independent for non-violated tasks (true of every
    /// [`NativeBody`] built from a replayable sequential oracle).
    pub validate_outputs: bool,
    /// Record a structured execution trace: every dispatch, completion,
    /// queue push/pop, squash, and commit lands in a per-thread
    /// [`TraceBuffer`](Timeline) and the stitched [`Timeline`] is
    /// returned on [`NativeReport::timeline`]. Off by default — when
    /// off, recording is a single branch per would-be event.
    pub trace: bool,
    /// The contention-aware speculation governor: AIMD runahead
    /// throttling, per-address squash backoff, and graceful degradation
    /// to sequential inline issue under conflict storms (see
    /// [`GovernorConfig`]). `None` (the default) reproduces the
    /// ungoverned protocol exactly — every conflict redispatches
    /// immediately and runahead is bounded only by queue capacity.
    pub governor: Option<GovernorConfig>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 32,
            retry_budget: 3,
            watchdog_deadline: Duration::from_secs(30),
            fault_plan: FaultPlan::none(),
            validate_outputs: false,
            trace: false,
            governor: None,
        }
    }
}

impl ExecConfig {
    /// A default config whose queues hold `queue_capacity` entries.
    ///
    /// `queue_capacity` is clamped to a minimum of 1 — **explicitly**:
    /// a 0-capacity queue cannot transfer any item under the
    /// dispatcher's non-blocking try-send protocol, so every dispatch
    /// would be refused and the pipeline could never start. Capacity 0
    /// therefore behaves exactly like capacity 1 (one in-flight item
    /// per queue, maximum backpressure), which the regression test
    /// `zero_capacity_clamps_to_one_and_both_drain_a_parallel_stage`
    /// pins down.
    pub fn with_queue_capacity(queue_capacity: usize) -> Self {
        Self {
            queue_capacity: queue_capacity.max(1),
            ..Self::default()
        }
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Replaces the per-task retry budget.
    pub fn with_retry_budget(mut self, retry_budget: u32) -> Self {
        self.retry_budget = retry_budget;
        self
    }

    /// Replaces the watchdog deadline.
    pub fn with_watchdog_deadline(mut self, watchdog_deadline: Duration) -> Self {
        self.watchdog_deadline = watchdog_deadline;
        self
    }

    /// Forces commit-time output validation on (or off — though the
    /// executor re-enables it whenever the fault plan can corrupt).
    pub fn with_validation(mut self, validate_outputs: bool) -> Self {
        self.validate_outputs = validate_outputs;
        self
    }

    /// Turns structured execution tracing on or off (see
    /// [`ExecConfig::trace`]).
    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Enables the speculation governor with the given knobs (see
    /// [`ExecConfig::governor`]; set the field to `None` to disable).
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = Some(governor);
        self
    }
}

/// What one task produced: the bytes it contributes to the in-order
/// output stream plus the work units it really performed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskOutput {
    /// Bytes appended to the committed output stream (commit order =
    /// task order). Most stages of most workloads emit nothing; the
    /// transform stage emits its iteration's output.
    pub bytes: Vec<u8>,
    /// Work units performed (a deterministic cost meter, the native
    /// twin of simulated task cost).
    pub work: u64,
}

impl TaskOutput {
    /// An output with `bytes` and no metered work.
    pub fn bytes(bytes: Vec<u8>) -> Self {
        Self { bytes, work: 0 }
    }

    /// An empty output.
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Execution context handed to [`NativeBody::run`].
#[derive(Debug)]
pub struct TaskCtx<'a> {
    /// The stage this task belongs to.
    pub stage: StageId,
    /// The loop iteration this task came from.
    pub iter: u64,
    /// 0 for the original (speculative) dispatch; incremented by each
    /// rollback re-execution.
    pub attempt: u32,
    /// Live view of the in-order commit frontier.
    pub commits: &'a CommitView,
    /// The concurrent versioned memory this attempt's speculative state
    /// flows through, when the run came in via
    /// [`NativeExecutor::run_versioned`]. The executor has already
    /// opened version `VersionId(task.0)` for the attempt; the body
    /// issues `read`/`write` against it and must **not** begin, commit,
    /// or roll it back itself. `None` on trace-driven runs *and* on the
    /// sequential oracle / fallback paths — a versioned body must
    /// compute its sequential result without the substrate when this is
    /// `None`.
    pub mem: Option<&'a ConcurrentVersionedMemory>,
}

impl TaskCtx<'_> {
    /// Whether this execution is the speculative first attempt.
    ///
    /// A first attempt is dispatched without waiting for the task's
    /// speculated producers, so a body whose trace recorded a
    /// manifested dependence must produce its *stale* result here (the
    /// value speculation would really have computed); re-executions
    /// (`attempt > 0`) run after every earlier task committed and must
    /// produce the true result. Branching on this flag rather than on
    /// the racy commit watermark keeps outputs deterministic.
    pub fn speculative(&self) -> bool {
        self.attempt == 0
    }
}

/// The real computation behind a task graph: the executor calls
/// [`NativeBody::run`] on worker threads, one call per dispatch (so a
/// squashed task's body runs again for the re-execution).
pub trait NativeBody: Send + Sync {
    /// Executes `task` and returns its output.
    fn run(&self, task: TaskId, ctx: &TaskCtx<'_>) -> TaskOutput;
}

impl<F> NativeBody for F
where
    F: Fn(TaskId, &TaskCtx<'_>) -> TaskOutput + Send + Sync,
{
    fn run(&self, task: TaskId, ctx: &TaskCtx<'_>) -> TaskOutput {
        self(task, ctx)
    }
}

/// The real-thread pipelined executor.
#[derive(Clone, Debug, Default)]
pub struct NativeExecutor {
    config: ExecConfig,
}

impl NativeExecutor {
    /// Creates an executor with the given queue parameters.
    pub fn new(config: ExecConfig) -> Self {
        Self { config }
    }

    /// The queue parameters in use.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Runs `graph` under `plan`, with `body` supplying each task's
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Invalid`] when the plan fails validation
    /// ([`SimError::StageMismatch`] when plan and graph disagree on
    /// stage count, [`SimError::EmptyStagePool`] when a stage has no
    /// cores — the same checks the simulator performs; core- and
    /// queue-count limits are physical-machine model parameters and do
    /// not constrain native execution). Returns
    /// [`ExecError::TaskFailed`] only when a body panics where no
    /// replay exists (the sequential fallback or the validation
    /// oracle); pipelined worker panics are recovered, not raised.
    pub fn run(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        body: &dyn NativeBody,
    ) -> Result<NativeReport, ExecError> {
        self.run_inner(graph, plan, body, None)
    }

    /// Runs `graph` under `plan` with every attempt's speculative state
    /// routed through `mem`, a shared [`ConcurrentVersionedMemory`].
    ///
    /// This replaces the trace-driven squash source of
    /// [`NativeExecutor::run`] with real conflict detection at the
    /// memory substrate: the executor opens version `VersionId(task.0)`
    /// before each attempt's body runs (handing the substrate to the
    /// body via [`TaskCtx::mem`]), reads eagerly forward uncommitted
    /// stores from earlier versions, conflicting non-silent writes
    /// squash later readers, and the in-order commit frontier publishes
    /// each surviving version's write buffer
    /// ([`ConcurrentVersionedMemory::try_commit`]) right as the task
    /// commits. Conflicted versions are rolled back and their tasks
    /// re-dispatched — never charged against the retry budget, exactly
    /// like trace-driven misspeculation.
    ///
    /// `mem` must be freshly created (or fully committed/rolled back);
    /// the caller can inspect [`ConcurrentVersionedMemory::committed`]
    /// state and [`NativeReport::mem`] counters afterwards. Recorded
    /// [`SpecDep`](crate::SpecDep) violations in `graph` are *ignored*
    /// as a squash source here — the substrate decides.
    ///
    /// # Errors
    ///
    /// Exactly as for [`NativeExecutor::run`].
    pub fn run_versioned(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        body: &dyn NativeBody,
        mem: &ConcurrentVersionedMemory,
    ) -> Result<NativeReport, ExecError> {
        self.run_inner(graph, plan, body, Some(mem))
    }

    fn run_inner(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        body: &dyn NativeBody,
        mem: Option<&ConcurrentVersionedMemory>,
    ) -> Result<NativeReport, ExecError> {
        // A plan that was stamped by the static soundness lint must not
        // have been structurally mutated since: execution would then run
        // a shape the lint never saw. Unstamped (hand-built) plans pass.
        debug_assert!(
            plan.lint_stamp_intact(),
            "execution plan was mutated after it passed seqpar-lint"
        );
        crate::diag::PlanShape::of(plan).check_against(graph.stage_count())?;
        let started = Instant::now();
        if graph.is_empty() {
            return Ok(NativeReport::empty(started.elapsed()));
        }

        let n = graph.len();
        // Dependence bookkeeping: outstanding synchronized deps per task
        // and the reverse edges to decrement when a task finishes.
        // Speculated deps deliberately do NOT gate dispatch — running
        // ahead of them is what speculation means.
        let mut deps_left: Vec<usize> = vec![0; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (idx, task) in graph.tasks().iter().enumerate() {
            let task_deps = graph.deps(task);
            deps_left[idx] = task_deps.len();
            for d in task_deps {
                dependents[d.0 as usize].push(idx as u32);
            }
        }
        // Per-stage release cursors: tasks enter their stage queue in
        // iteration order, like the simulator's list scheduling.
        let stage_count = graph.stage_count() as usize;
        let mut stage_tasks: Vec<VecDeque<u32>> = vec![VecDeque::new(); stage_count];
        for (idx, task) in graph.tasks().iter().enumerate() {
            stage_tasks[task.stage.0 as usize].push_back(idx as u32);
        }
        // Squashed tasks re-enter at the front of the release order.
        let mut requeue: Vec<VecDeque<WorkItem>> = vec![VecDeque::new(); stage_count];

        let watermark = Arc::new(AtomicU64::new(0));
        let view = CommitView::new(Arc::clone(&watermark));
        // One shared clock, one private buffer per recording site: the
        // commit frontier, the dispatcher (this thread), and every
        // worker. All no-ops when tracing is off.
        let clock = TraceClock::new(self.config.trace);
        let mut commit = CommitUnit::new(
            graph,
            watermark,
            TraceBuffer::new(clock),
            mem,
            self.config.governor.map(Governor::new),
        );
        let mut dispatch_trace = TraceBuffer::new(clock);

        let faults = &self.config.fault_plan;
        let supervisor = Supervisor {
            faults,
            retry_budget: self.config.retry_budget,
            // Validation costs one extra body run per commit, so it is
            // opt-in — but a plan that can corrupt outputs forces it,
            // otherwise corruption would commit silently.
            validate: self.config.validate_outputs || faults.can_corrupt(),
        };

        let mut queues = StageQueues::new(graph, plan, self.config.queue_capacity);
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<WorkerDone>();

        std::thread::scope(|scope| {
            // Worker threads spawn lazily, on the first pipelined
            // dispatch. A run the governor holds degraded end-to-end
            // issues every task inline on this thread and never pays
            // thread startup at all — on short loops that fixed cost
            // alone is a double-digit share of the sequential runtime.
            // The sender lives in an Option so spawning can drop the
            // supervisor's clone: from then on worker exits disconnect
            // `done_rx` exactly as an eager spawn would.
            let mut workers: Vec<std::thread::ScopedJoinHandle<'_, (WorkerStat, Vec<TraceEvent>)>> =
                Vec::new();
            let mut done_tx = Some(done_tx);

            // Replays the body sequentially on this thread: the
            // validation oracle and the fallback executor. A panic here
            // is unrecoverable — the body cannot produce the task's
            // sequential result at all. `mem: None` on purpose even for
            // versioned runs: an oracle replay must compute the task's
            // sequential result without opening (or double-applying
            // into) a memory version.
            let mut oracle = |task: u32, attempt: u32| -> Result<TaskOutput, ExecError> {
                let t = graph.task(TaskId(task));
                let ctx = TaskCtx {
                    stage: t.stage,
                    iter: t.iter,
                    attempt,
                    commits: &view,
                    mem: None,
                };
                catch_unwind(AssertUnwindSafe(|| body.run(TaskId(task), &ctx)))
                    .map_err(|_| ExecError::TaskFailed { task: TaskId(task) })
            };

            // Seed: release every stage's dep-free prefix.
            let mut in_flight = vec![false; n];
            let mut in_flight_count = 0usize;
            let limit = commit.dispatch_limit();
            for s in 0..stage_count {
                Self::release_ready(
                    s,
                    &mut stage_tasks,
                    &mut requeue,
                    &deps_left,
                    &queues,
                    &mut dispatch_trace,
                    limit,
                    &mut in_flight,
                    &mut in_flight_count,
                );
            }

            let mut watchdog_trips = 0u64;
            let mut fallback = false;
            // Governor backoff holding pens. Delayed items mature at an
            // absorbed-completion tick (deterministic given the trace,
            // unlike wall time); parked items when the task they lost to
            // commits. Both force-release the moment they become the
            // frontier task or the pipeline drains empty — the liveness
            // rule that makes backoff unable to stall the run.
            let mut tick = 0u64;
            let mut delayed: Vec<(WorkItem, u64)> = Vec::new();
            let mut parked: Vec<(WorkItem, u32)> = Vec::new();
            // Readiness is propagated on a task's first *productive*
            // completion (a panicked attempt ran nothing, so its
            // replay's completion propagates instead); this flag keeps
            // it once-per-task.
            let mut deps_propagated = vec![false; n];
            let supervise = 'sup: loop {
                if commit.committed_tasks() >= n {
                    break Ok(());
                }

                // Mature governor backoffs back into the requeues.
                if !delayed.is_empty() || !parked.is_empty() {
                    let next = commit.committed_tasks() as u32;
                    let force = in_flight_count == 0;
                    let mut ripe = |item: WorkItem| {
                        let stage = graph.task(TaskId(item.task)).stage.0 as usize;
                        requeue[stage].push_back(item);
                    };
                    let mut i = 0;
                    while i < delayed.len() {
                        let (item, at) = delayed[i];
                        if tick >= at || item.task <= next || force {
                            delayed.remove(i);
                            ripe(item);
                        } else {
                            i += 1;
                        }
                    }
                    let mut i = 0;
                    while i < parked.len() {
                        let (item, behind) = parked[i];
                        if behind < next || item.task <= next || force {
                            parked.remove(i);
                            ripe(item);
                        } else {
                            i += 1;
                        }
                    }
                }

                // Degraded inline issue: while the governor holds the
                // loop collapsed, the supervisor runs the frontier task
                // on this thread — *through* the substrate, so committed
                // memory state stays exact for the eventual re-probe —
                // instead of paying cross-thread dispatch for window-1
                // throughput. The stretch runs as a tight inner loop:
                // per-commit it pays the substrate's inline fast path
                // plus one buffered-completion check, not the full
                // dispatch/recv round trip. Straggler completions from
                // before the collapse still drain through `absorb`
                // below, and any pending backoff pen breaks the stretch
                // so maturation at the loop top keeps its liveness rule.
                while commit.governor_degraded() {
                    let next = commit.committed_tasks();
                    if next >= n {
                        break;
                    }
                    let next32 = next as u32;
                    let stage = graph.task(TaskId(next32)).stage.0 as usize;
                    // The frontier task is almost always the released
                    // order's front while degraded; the positional scans
                    // only run for stragglers and requeued squashes.
                    let taken = !in_flight[next]
                        && deps_left[next] == 0
                        && (if stage_tasks[stage].front() == Some(&next32) {
                            stage_tasks[stage].pop_front();
                            true
                        } else {
                            stage_tasks[stage]
                                .iter()
                                .position(|&t| t == next32)
                                .map(|pos| {
                                    stage_tasks[stage].remove(pos);
                                })
                                .is_some()
                        } || requeue[stage]
                            .iter()
                            .position(|w| w.task == next32)
                            .map(|pos| {
                                requeue[stage].remove(pos);
                            })
                            .is_some());
                    if !taken {
                        break;
                    }
                    let t = graph.task(TaskId(next32));
                    // Prefer the substrate's inline fast path: with
                    // nothing speculative in flight, per-version
                    // machinery (registry handles, shard buffers,
                    // the commit sweep) is pure overhead, and it is
                    // exactly what would drag inline issue below
                    // the sequential baseline the governor promises
                    // to stay near. Stragglers from before the
                    // collapse force the full versioned protocol.
                    let mut inline_fast = false;
                    if let Some(m) = mem {
                        let v = VersionId(u64::from(next32));
                        inline_fast = in_flight_count == 0 && m.try_begin_inline(v);
                        if !inline_fast {
                            m.begin(v);
                        }
                        dispatch_trace.record(TraceEventKind::VersionOpen {
                            stage: t.stage.0,
                            task: next32,
                            attempt: DEGRADED_ATTEMPT,
                        });
                    }
                    let ctx = TaskCtx {
                        stage: t.stage,
                        iter: t.iter,
                        attempt: DEGRADED_ATTEMPT,
                        commits: &view,
                        mem,
                    };
                    let output =
                        match catch_unwind(AssertUnwindSafe(|| body.run(TaskId(next32), &ctx))) {
                            Ok(output) => output,
                            Err(_) => {
                                break 'sup Err(ExecError::TaskFailed {
                                    task: TaskId(next32),
                                })
                            }
                        };
                    if !inline_fast {
                        if let Some(m) = mem {
                            if let Some(p) = m.probe(VersionId(u64::from(next32))) {
                                dispatch_trace.record(TraceEventKind::VersionReads {
                                    stage: t.stage.0,
                                    task: next32,
                                    attempt: DEGRADED_ATTEMPT,
                                    reads: p.reads,
                                    forwards: p.forwards,
                                });
                            }
                        }
                    }
                    commit.commit_degraded(&output, inline_fast);
                    // The governor may have left degraded mode on
                    // that commit (re-probe): publish the inline
                    // stretch's overlay before any pipelined
                    // version can begin and read around it.
                    if inline_fast && !commit.governor_degraded() {
                        if let Some(m) = mem {
                            m.end_inline();
                        }
                    }
                    if !deps_propagated[next] {
                        deps_propagated[next] = true;
                        for &dep in &dependents[next] {
                            deps_left[dep as usize] -= 1;
                        }
                    }
                    // Flush successors buffered past the frontier.
                    match commit.drain(&supervisor, &mut oracle) {
                        Ok(Absorbed::Continue(redispatches)) => {
                            for r in redispatches {
                                Self::sort_redispatch(
                                    r,
                                    tick,
                                    graph,
                                    &mut requeue,
                                    &mut delayed,
                                    &mut parked,
                                );
                            }
                        }
                        Ok(Absorbed::Fallback) => {
                            fallback = true;
                            break 'sup Ok(());
                        }
                        Err(e) => break 'sup Err(e),
                    }
                    // A pen gaining an item (a straggler redispatched
                    // with backoff) hands control back to the loop top
                    // so maturation and force-release run.
                    if !delayed.is_empty() || !parked.is_empty() {
                        break;
                    }
                }
                if commit.committed_tasks() >= n {
                    break Ok(());
                }

                let limit = commit.dispatch_limit();
                for s in 0..stage_count {
                    Self::release_ready(
                        s,
                        &mut stage_tasks,
                        &mut requeue,
                        &deps_left,
                        &queues,
                        &mut dispatch_trace,
                        limit,
                        &mut in_flight,
                        &mut in_flight_count,
                    );
                }

                if in_flight_count > 0 {
                    if let Some(tx) = done_tx.take() {
                        workers = queues
                            .spawn_workers(scope, graph, body, &view, &tx, faults, clock, mem);
                    }
                }

                let done = match done_rx.recv_timeout(self.config.watchdog_deadline) {
                    Ok(done) => done,
                    Err(RecvTimeoutError::Timeout) => {
                        // Heartbeat watchdog: nothing completed for a
                        // whole deadline — a stage is wedged. Degrade
                        // to sequential execution of the rest.
                        watchdog_trips += 1;
                        dispatch_trace.record(TraceEventKind::WatchdogTrip);
                        fallback = true;
                        break Ok(());
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        break Err(ExecError::WorkersDisconnected {
                            committed: commit.committed_tasks() as u64,
                        });
                    }
                };
                tick += 1;
                if in_flight[done.task as usize] {
                    in_flight[done.task as usize] = false;
                    in_flight_count -= 1;
                }
                if !done.panicked && !deps_propagated[done.task as usize] {
                    deps_propagated[done.task as usize] = true;
                    for &dep in &dependents[done.task as usize] {
                        deps_left[dep as usize] -= 1;
                    }
                }
                match commit.absorb(done, &supervisor, &mut oracle) {
                    Ok(Absorbed::Continue(redispatches)) => {
                        for r in redispatches {
                            // Rollback: the discarded attempt's output is
                            // gone; the task re-enters its stage ahead of
                            // any not-yet-released work, immediately or
                            // behind the governor's backoff.
                            Self::sort_redispatch(
                                r,
                                tick,
                                graph,
                                &mut requeue,
                                &mut delayed,
                                &mut parked,
                            );
                        }
                    }
                    Ok(Absorbed::Fallback) => {
                        fallback = true;
                        break Ok(());
                    }
                    Err(e) => break Err(e),
                }
            };

            // Close any open inline stretch so committed memory state
            // (and the caller's post-run inspection) reflects every
            // inline-committed task, on success and error paths alike.
            if let Some(m) = mem {
                m.end_inline();
            }

            let supervise = supervise.and_then(|()| {
                if !fallback {
                    return Ok(());
                }
                // Graceful degradation: commit every remaining task
                // in order on this thread, fault-free and
                // non-speculative — exactly a resumed sequential run.
                dispatch_trace.record(TraceEventKind::FallbackActivated {
                    from_task: commit.committed_tasks() as u32,
                });
                for task in commit.committed_tasks()..n {
                    let output = oracle(task as u32, FALLBACK_ATTEMPT)?;
                    commit.commit_inline(&output);
                }
                Ok(())
            });

            // Shut the pipeline down before surfacing any error:
            // closing the queues (and dropping the completion channel)
            // is what lets blocked workers exit so the scope can join
            // them.
            queues.close();
            drop(done_rx);
            let mut worker_stats = Vec::with_capacity(workers.len());
            let mut worker_events = Vec::with_capacity(workers.len());
            let mut join_failed = false;
            for w in workers {
                match w.join() {
                    Ok((stat, events)) => {
                        worker_stats.push(stat);
                        worker_events.push(events);
                    }
                    Err(_) => join_failed = true,
                }
            }
            supervise?;
            if join_failed {
                return Err(ExecError::WorkersDisconnected {
                    committed: commit.committed_tasks() as u64,
                });
            }
            Ok(commit.into_report(
                started.elapsed(),
                worker_stats,
                watchdog_trips,
                fallback,
                dispatch_trace.into_events(),
                worker_events,
            ))
        })
    }

    /// Pushes released-but-unqueued work into stage `s`'s queue without
    /// blocking; anything that does not fit stays pending for the next
    /// event. Requeued (squashed) tasks go first. Each successful push
    /// is traced with the queue's occupancy right after it.
    /// Route a commit-unit redispatch to its holding structure: `Now`
    /// straight into the stage's requeue (ahead of unreleased fresh
    /// work), `AfterTick` into the delayed pen with an absolute
    /// maturity tick, `AfterCommit` into the parked pen keyed by the
    /// committer it must wait out.
    fn sort_redispatch(
        r: Redispatch,
        tick: u64,
        graph: &TaskGraph,
        requeue: &mut [VecDeque<WorkItem>],
        delayed: &mut Vec<(WorkItem, u64)>,
        parked: &mut Vec<(WorkItem, u32)>,
    ) {
        match r.release {
            Release::Now => {
                let stage = graph.task(TaskId(r.item.task)).stage.0 as usize;
                requeue[stage].push_back(r.item);
            }
            Release::AfterTick(d) => delayed.push((r.item, tick.saturating_add(d))),
            Release::AfterCommit(behind) => parked.push((r.item, behind)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn release_ready(
        s: usize,
        stage_tasks: &mut [VecDeque<u32>],
        requeue: &mut [VecDeque<WorkItem>],
        deps_left: &[usize],
        queues: &StageQueues,
        trace: &mut TraceBuffer,
        limit: Option<u64>,
        in_flight: &mut [bool],
        in_flight_count: &mut usize,
    ) {
        // Without a governor the limit is `None` and this scan degrades
        // to the original strict-FIFO drain. With one, items past the
        // dynamic speculation window stay queued (skipped, not popped)
        // so a window-blocked front item can never starve an admitted
        // one behind it — in particular never the frontier task.
        let admitted = |task: u32| limit.is_none_or(|l| u64::from(task) < l);
        let mut i = 0;
        while i < requeue[s].len() {
            let item = requeue[s][i];
            if !admitted(item.task) {
                i += 1;
                continue;
            }
            let Some(occupancy) = queues.try_send(s, item) else {
                return;
            };
            trace.record(TraceEventKind::QueuePush {
                stage: s as u8,
                task: item.task,
                attempt: item.attempt,
                occupancy,
            });
            in_flight[item.task as usize] = true;
            *in_flight_count += 1;
            requeue[s].remove(i);
        }
        while let Some(&task) = stage_tasks[s].front() {
            if deps_left[task as usize] > 0 || !admitted(task) {
                return;
            }
            let Some(occupancy) = queues.try_send(s, WorkItem { task, attempt: 0 }) else {
                return;
            };
            trace.record(TraceEventKind::QueuePush {
                stage: s as u8,
                task,
                attempt: 0,
                occupancy,
            });
            in_flight[task as usize] = true;
            *in_flight_count += 1;
            stage_tasks[s].pop_front();
        }
    }
}

#[cfg(test)]
mod tests;
