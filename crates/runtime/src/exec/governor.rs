//! Contention-aware speculation governor: the feedback controller that
//! keeps the pipelined executor honest when speculation stops paying.
//!
//! The paper's premise is that speculative pipelining must *degrade
//! gracefully* toward sequential execution when speculation stops
//! paying — never below it. Two failure shapes matter:
//!
//! * **conflict storms** — tasks race on the same addresses, squash
//!   rates explode, and every squash wastes a body execution plus a
//!   rollback; and
//! * **sub-granularity loops** — task bodies are so short that
//!   cross-thread dispatch costs more than the work itself, so even a
//!   conflict-free pipeline runs below 1× sequential.
//!
//! The governor handles both with four mechanisms layered on the
//! commit frontier:
//!
//! 1. **Runahead throttling** — a dynamic speculation-window cap over
//!    how far past the commit frontier tasks may dispatch. The cap
//!    follows AIMD with hysteresis: a conflict shrinks it
//!    multiplicatively (once per cooldown period, so a burst counts as
//!    one signal), a full window of clean commits grows it additively.
//! 2. **Per-address squash backoff** — a task squashed by a
//!    `MemoryConflict` on a hot address is redispatched after a
//!    jittered exponential delay (measured in absorbed-completion
//!    ticks). Past a heat threshold the task is *parked* behind the
//!    conflicting committer instead of re-racing it.
//! 3. **Graceful degradation** — the governor collapses to
//!    effectively-sequential issue (the supervisor runs frontier tasks
//!    inline through the substrate) when the windowed misspeculation
//!    rate stays above a configurable ceiling, or when AIMD walks the
//!    window down to 1 (a window-1 *pipelined* loop pays cross-thread
//!    dispatch for zero speculation, so inline issue strictly
//!    dominates it).
//! 4. **Throughput pay-off checks** — speculation must *earn* the
//!    pipeline. The run starts with a degraded warm-up stretch that
//!    measures sequential inter-commit time, then periodically probes
//!    a small pipelined window. A probe that commits slower than the
//!    sequential estimate — or that conflicts at all — drops straight
//!    back to degraded; one that keeps up graduates to normal
//!    pipelining, where periodic reviews keep comparing. This is what
//!    bounds the whole run at roughly ≥ 1× sequential even for loops
//!    whose tasks are too small to ever win.
//!
//! Backoff *decisions* (delay ticks, park targets, jitter) are a pure
//! seeded function of `(task, attempt, address)` — deterministic given
//! the observed conflict sequence. The pay-off checks consume a caller
//! supplied clock: the native executor feeds wall time (making governed
//! native scheduling timing-dependent, like the substrate's conflict
//! counts, while the committed output stays byte-identical), and the
//! simulator twin feeds virtual time, which keeps simulated governor
//! runs fully deterministic.
//!
//! The governor is deliberately trace-free: it returns
//! [`GovernorEvent`]s and lets the caller translate them into
//! `TraceEvent`s, so the native executor and the simulator twin share
//! one controller.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use super::faults::splitmix64;

/// Commits a speculation probe runs before its throughput verdict.
/// Short on purpose: a probe pays worker wakeups, cross-thread
/// dispatch, and a straggler drain, so with `reprobe_period` degraded
/// commits between probes the probe tax on a loop that never profits
/// from speculation stays in the low single-digit percent.
const PROBE_LEN: u32 = 4;

/// Window cap a probe pipelines at (clamped to the configured max).
/// Large enough to expose real overlap, small enough that a storm
/// probe squashes only a handful of tasks before the governor
/// re-degrades.
const PROBE_WINDOW: u32 = 4;

/// Knobs for the speculation governor. All fields are plain integers so
/// the config stays `Copy + Eq` and serializes into run manifests.
///
/// The default is calibrated against the PR 6 baseline
/// (`BENCH_6.json`): storm workloads (vpr, twolf, parser) run ~40-50%
/// conflict rates at 8 threads, so the degrade ceiling sits well below
/// that while staying above the noise floor of clean workloads, and
/// the reprobe period is long enough that probe overhead cannot drag a
/// degraded loop below ~0.9× sequential.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Maximum speculation window (tasks in flight past the commit
    /// frontier). The dynamic cap lives in `[1, window]`. Clamped to
    /// ≥ 1.
    pub window: u32,
    /// Percent of the window *kept* on a conflict burst (multiplicative
    /// decrease); 50 halves it. Clamped to 0..=99.
    pub shrink: u32,
    /// Additive window growth after a full clean window of commits.
    pub grow: u32,
    /// Windowed misspeculation ceiling in permille (conflicts per 1000
    /// outcomes over the sliding history). Sustained rates at or above
    /// this collapse the loop to sequential issue.
    pub degrade_ceiling: u32,
    /// Commits to run degraded (inline, window=1) before re-probing
    /// speculation; also the length of the initial calibration stretch
    /// and the review cadence while pipelined. Clamped to ≥ 1.
    pub reprobe_period: u32,
    /// Base redispatch delay in absorbed-completion ticks for a
    /// conflict-squashed task.
    pub backoff_base: u64,
    /// Ceiling on the exponential backoff delay, in ticks.
    pub max_backoff: u64,
    /// Squashes on one address before the next victim is parked behind
    /// the conflicting committer instead of re-raced with a delay.
    pub park_threshold: u32,
    /// Sliding-window length (frontier outcomes) for the
    /// misspeculation rate. Clamped to ≥ 1.
    pub history: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            window: 64,
            shrink: 50,
            grow: 4,
            degrade_ceiling: 250,
            reprobe_period: 2048,
            backoff_base: 2,
            max_backoff: 64,
            park_threshold: 3,
            history: 32,
            seed: 0x5ec_90b3,
        }
    }
}

impl GovernorConfig {
    /// Returns the config with the maximum speculation window replaced.
    #[must_use]
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// Returns the config with the degrade ceiling (permille) replaced.
    #[must_use]
    pub fn with_degrade_ceiling(mut self, permille: u32) -> Self {
        self.degrade_ceiling = permille;
        self
    }

    /// Returns the config with the reprobe period replaced.
    #[must_use]
    pub fn with_reprobe_period(mut self, commits: u32) -> Self {
        self.reprobe_period = commits;
        self
    }

    /// Returns the config with the jitter seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Effective maximum window after clamping (≥ 1).
    fn max_window(&self) -> u32 {
        self.window.max(1)
    }

    /// Effective history length after clamping (≥ 1).
    fn history_len(&self) -> usize {
        self.history.max(1) as usize
    }

    /// Effective reprobe period after clamping (≥ 1).
    fn period(&self) -> u32 {
        self.reprobe_period.max(1)
    }
}

/// Counters the governor accumulates over a run, reported in
/// `NativeReport::governor` next to `MemStats` and `RecoveryCounts`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorStats {
    /// Multiplicative window shrinks (throttle-down decisions).
    pub shrinks: u64,
    /// Additive window grows (throttle-up decisions).
    pub grows: u64,
    /// Collapses to degraded (sequential-issue) mode. The initial
    /// calibration stretch is a posture, not a collapse, and is not
    /// counted here.
    pub degrades: u64,
    /// Speculation re-probes attempted from degraded mode.
    pub reprobes: u64,
    /// Conflict redispatches delayed by exponential backoff.
    pub backoffs: u64,
    /// Conflict redispatches parked behind the conflicting committer.
    pub parks: u64,
    /// Tasks committed inline while degraded (calibration included).
    pub degraded_commits: u64,
    /// Speculation window when the run finished.
    pub final_window: u32,
    /// Smallest speculation window the run ever reached. Always 1 for
    /// a governed run (the warm-up stretch runs at window 1).
    pub min_window: u32,
}

/// How a conflict-squashed task should be redispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BackoffDecision {
    /// Requeue immediately (frontier task, or no backoff warranted).
    Immediate,
    /// Requeue after this many absorbed-completion ticks.
    Delay(u64),
    /// Hold until the named task has committed (serialize behind it).
    Park { behind: u32 },
}

/// A governor decision the caller should surface as a trace event,
/// stamped with whatever task/timestamp context it has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum GovernorEvent {
    /// The window cap moved (either direction).
    Throttle { from: u32, to: u32 },
    /// Collapsed to sequential issue at the given windowed rate.
    Degrade { rate_permille: u32 },
    /// Left degraded mode to probe speculation at the given window.
    Reprobe { window: u32 },
}

/// Controller mode. `Probing` exists so one conflict (or a losing
/// throughput verdict) right after a re-probe drops straight back to
/// degraded instead of oscillating at a small pipelined window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Pipelined dispatch under the dynamic window cap; `since` counts
    /// commits since entry, for the periodic throughput review.
    Normal { since: u32 },
    /// Pipelined at a small window; `left` commits until the verdict.
    Probing { left: u32 },
    /// Sequential inline issue; `left` commits until the next probe.
    Degraded { left: u32 },
}

/// Exponential moving average over inter-commit gaps, `7/8` decay.
fn ema(prev: Option<u64>, sample: u64) -> u64 {
    match prev {
        None => sample,
        Some(p) => (p.saturating_mul(7).saturating_add(sample)) / 8,
    }
}

/// The per-run feedback controller. One instance lives in the commit
/// unit (native) or the frontier loop (simulator twin); all inputs
/// arrive in commit-frontier order.
#[derive(Debug)]
pub(crate) struct Governor {
    cfg: GovernorConfig,
    /// Current speculation window cap, in [1, cfg.window].
    window: u32,
    mode: Mode,
    /// Sliding window of frontier outcomes (true = conflict squash).
    outcomes: VecDeque<bool>,
    conflicts_in_history: u32,
    /// Consecutive clean commits since the last conflict.
    clean_streak: u32,
    /// Commits remaining before another shrink may fire (hysteresis).
    cooldown: u32,
    /// Squash counts per conflicting address (the "hot address" map).
    heat: HashMap<u64, u32>,
    /// EMA of inter-commit time while degraded (sequential estimate).
    seq_gap: Option<u64>,
    /// Average inter-commit time over the current pipelined stretch:
    /// `(now - stretch_t0) / stretch_n`. Pipelined commits arrive in
    /// bursts (the frontier drains several buffered completions at
    /// once), so a per-gap EMA would be dominated by near-zero
    /// intra-burst gaps and flatter any throughput verdict; elapsed
    /// time over the whole stretch — including the pipeline fill paid
    /// at its start — is what actually competes with sequential issue.
    pipe_gap: Option<u64>,
    /// Clock value when the current pipelined stretch began (the commit
    /// that launched the probe, or the last periodic review).
    stretch_t0: Option<u64>,
    /// Commits since `stretch_t0`.
    stretch_n: u64,
    /// Clock value of the last commit fed in.
    last_commit: Option<u64>,
    /// Set across mode switches: the next gap spans two regimes and
    /// would poison whichever EMA it landed in.
    skip_sample: bool,
    stats: GovernorStats,
}

impl Governor {
    pub(crate) fn new(cfg: GovernorConfig) -> Self {
        Self {
            cfg,
            // The run opens with a degraded calibration stretch: window
            // 1, inline issue, measuring the sequential commit rate the
            // pay-off checks compare against. Speculation starts when
            // the first probe earns it.
            window: 1,
            mode: Mode::Degraded { left: cfg.period() },
            outcomes: VecDeque::with_capacity(cfg.history_len()),
            conflicts_in_history: 0,
            clean_streak: 0,
            cooldown: 0,
            heat: HashMap::new(),
            seq_gap: None,
            pipe_gap: None,
            stretch_t0: None,
            stretch_n: 0,
            last_commit: None,
            skip_sample: false,
            stats: GovernorStats {
                final_window: 1,
                min_window: 1,
                ..GovernorStats::default()
            },
        }
    }

    /// Current speculation window cap (always ≥ 1).
    pub(crate) fn window(&self) -> u32 {
        self.window
    }

    /// Whether the loop is collapsed to sequential inline issue.
    pub(crate) fn degraded(&self) -> bool {
        matches!(self.mode, Mode::Degraded { .. })
    }

    /// Snapshot of the counters with the final window stamped in.
    pub(crate) fn stats(&self) -> GovernorStats {
        GovernorStats {
            final_window: self.window,
            ..self.stats
        }
    }

    fn record_outcome(&mut self, conflict: bool) {
        if self.outcomes.len() == self.cfg.history_len() && self.outcomes.pop_front() == Some(true)
        {
            self.conflicts_in_history -= 1;
        }
        self.outcomes.push_back(conflict);
        if conflict {
            self.conflicts_in_history += 1;
        }
    }

    fn rate_permille(&self) -> u32 {
        if self.outcomes.is_empty() {
            return 0;
        }
        let len = u32::try_from(self.outcomes.len()).unwrap_or(u32::MAX);
        self.conflicts_in_history.saturating_mul(1000) / len
    }

    fn set_window(&mut self, to: u32) {
        self.window = to.clamp(1, self.cfg.max_window());
        self.stats.min_window = self.stats.min_window.min(self.window);
    }

    fn enter_degraded(&mut self, events: &mut Vec<GovernorEvent>) {
        let rate = self.rate_permille();
        self.mode = Mode::Degraded {
            left: self.cfg.period(),
        };
        self.set_window(1);
        self.outcomes.clear();
        self.conflicts_in_history = 0;
        self.skip_sample = true;
        self.stats.degrades += 1;
        events.push(GovernorEvent::Degrade {
            rate_permille: rate,
        });
    }

    /// Whether pipelined commits are keeping up with the sequential
    /// estimate. Missing data on either side gives speculation the
    /// benefit of the doubt.
    fn pipeline_pays(&self) -> bool {
        // The pipelined gap must beat the sequential estimate by a
        // clear margin (>= 1/9, i.e. about 11% faster), not merely tie
        // it. A probe's verdict averages a handful of noisy samples;
        // without the margin, jitter on a loop with no real overlap win
        // intermittently promotes, and the pipelined stretch that
        // follows runs below the sequential baseline until the next
        // periodic review catches it. Ties go to sequential — a real
        // pipeline win scales with worker count and clears the margin
        // by construction.
        match (self.pipe_gap, self.seq_gap) {
            (Some(pipe), Some(seq)) => pipe.saturating_mul(9) <= seq.saturating_mul(8),
            _ => true,
        }
    }

    /// Feeds one conflict squash (a `MemoryConflict` at or before the
    /// frontier) into the controller. `addr` is the conflicting address
    /// when the substrate recorded one, `by` the squashing task,
    /// `at_frontier` whether the victim is the next task to commit
    /// (frontier tasks always redispatch immediately — delaying the
    /// frontier would stall the pipeline for nothing).
    ///
    /// Only speculation failures feed this path; fault-recovery
    /// squashes (panics, corruption, spurious) stay with the
    /// supervisor's retry budget so the two mechanisms compose instead
    /// of fighting.
    pub(crate) fn on_conflict(
        &mut self,
        task: u32,
        attempt: u32,
        addr: Option<u64>,
        by: Option<u32>,
        at_frontier: bool,
    ) -> (BackoffDecision, Vec<GovernorEvent>) {
        let mut events = Vec::new();
        self.clean_streak = 0;
        match self.mode {
            Mode::Normal { .. } => {
                self.record_outcome(true);
                if self.cooldown == 0 {
                    let from = self.window;
                    let kept = u64::from(self.window) * u64::from(self.cfg.shrink.min(99)) / 100;
                    self.set_window(u32::try_from(kept).unwrap_or(1).max(1));
                    if self.window != from {
                        self.stats.shrinks += 1;
                        events.push(GovernorEvent::Throttle {
                            from,
                            to: self.window,
                        });
                    }
                    self.cooldown = self.window;
                }
                // Two routes into degradation. Rate: a full history
                // above the misspeculation ceiling. Floor: AIMD walked
                // the window down to 1 — a window-1 *pipelined* loop
                // pays cross-thread dispatch for zero speculation, so
                // inline sequential issue strictly dominates it.
                if self.window == 1
                    || (self.outcomes.len() == self.cfg.history_len()
                        && self.rate_permille() >= self.cfg.degrade_ceiling)
                {
                    self.enter_degraded(&mut events);
                }
            }
            // One conflict during a probe proves the storm is still
            // live: drop straight back instead of oscillating at a
            // small pipelined window (which runs below sequential).
            Mode::Probing { .. } => self.enter_degraded(&mut events),
            // Stragglers from before the collapse; already sequential.
            Mode::Degraded { .. } => {}
        }

        let decision = if at_frontier || self.degraded() {
            BackoffDecision::Immediate
        } else {
            let heat = match addr {
                Some(a) => {
                    let h = self.heat.entry(a).or_insert(0);
                    *h += 1;
                    *h
                }
                // No recorded address: scale off the replay count.
                None => attempt.saturating_add(1),
            };
            if heat > self.cfg.park_threshold {
                if let Some(behind) = by {
                    self.stats.parks += 1;
                    return (BackoffDecision::Park { behind }, events);
                }
            }
            let exp = heat.saturating_sub(1).min(16);
            let raw = self.cfg.backoff_base.saturating_shl(exp);
            let jitter = splitmix64(
                self.cfg.seed
                    ^ u64::from(task).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            ) % self.cfg.backoff_base.saturating_add(1);
            self.stats.backoffs += 1;
            BackoffDecision::Delay(raw.min(self.cfg.max_backoff).max(1) + jitter)
        };
        (decision, events)
    }

    /// Feeds one committed task into the controller. `now` is a
    /// monotonic clock in arbitrary units — wall nanoseconds from the
    /// native executor, virtual time from the simulator twin — used for
    /// the throughput pay-off checks.
    pub(crate) fn on_commit(&mut self, now: u64) -> Vec<GovernorEvent> {
        let mut events = Vec::new();
        self.cooldown = self.cooldown.saturating_sub(1);
        let gap = match (self.last_commit, self.skip_sample) {
            (Some(prev), false) => Some(now.saturating_sub(prev)),
            _ => None,
        };
        self.last_commit = Some(now);
        self.skip_sample = false;
        if let Some(g) = gap {
            if self.degraded() {
                self.seq_gap = Some(ema(self.seq_gap, g));
            }
        }
        if !self.degraded() {
            if let Some(t0) = self.stretch_t0 {
                self.stretch_n += 1;
                self.pipe_gap = Some(now.saturating_sub(t0) / self.stretch_n);
            }
        }
        match &mut self.mode {
            Mode::Degraded { left } => {
                *left = left.saturating_sub(1);
                let probe = *left == 0;
                self.stats.degraded_commits += 1;
                if probe {
                    // Probe speculation: pipeline a small window and
                    // measure it fresh against the sequential estimate.
                    self.mode = Mode::Probing { left: PROBE_LEN };
                    self.set_window(PROBE_WINDOW);
                    self.outcomes.clear();
                    self.conflicts_in_history = 0;
                    self.pipe_gap = None;
                    self.stretch_t0 = Some(now);
                    self.stretch_n = 0;
                    self.skip_sample = true;
                    self.stats.reprobes += 1;
                    events.push(GovernorEvent::Reprobe {
                        window: self.window,
                    });
                }
            }
            Mode::Probing { left } => {
                *left = left.saturating_sub(1);
                let done = *left == 0;
                self.record_outcome(false);
                if done {
                    // The conflict check already passed (a probe
                    // conflict re-degrades on the spot); the verdict
                    // left is throughput.
                    if self.pipeline_pays() {
                        self.mode = Mode::Normal { since: 0 };
                        self.clean_streak = 0;
                        self.stretch_t0 = Some(now);
                        self.stretch_n = 0;
                    } else {
                        self.enter_degraded(&mut events);
                    }
                }
            }
            Mode::Normal { since } => {
                *since += 1;
                let review = *since % self.cfg.period() == 0;
                self.record_outcome(false);
                self.clean_streak += 1;
                if self.clean_streak >= self.window && self.window < self.cfg.max_window() {
                    let from = self.window;
                    self.set_window(self.window.saturating_add(self.cfg.grow.max(1)));
                    self.clean_streak = 0;
                    self.stats.grows += 1;
                    events.push(GovernorEvent::Throttle {
                        from,
                        to: self.window,
                    });
                }
                // Periodic review: conflicts aside, a pipeline that
                // commits slower than the sequential estimate is not
                // paying for its dispatch — collapse it.
                if review {
                    if self.pipeline_pays() {
                        self.stretch_t0 = Some(now);
                        self.stretch_n = 0;
                    } else {
                        self.enter_degraded(&mut events);
                    }
                }
            }
        }
        events
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic clock: every `tick` advances `gap` units and feeds
    /// one commit.
    struct Clock {
        now: u64,
    }

    impl Clock {
        fn new() -> Self {
            Self { now: 0 }
        }

        fn commit(&mut self, g: &mut Governor, gap: u64) -> Vec<GovernorEvent> {
            self.now += gap;
            g.on_commit(self.now)
        }
    }

    fn storm(g: &mut Governor, conflicts: u32) {
        for t in 0..conflicts {
            let _ = g.on_conflict(t, 0, Some(u64::from(t % 4)), Some(t.wrapping_sub(1)), false);
        }
    }

    /// Drives a fresh governor through warm-up and a winning probe into
    /// Normal mode (pipelined gaps at half the sequential estimate: a
    /// clear win over the promotion margin).
    fn promote(g: &mut Governor, clock: &mut Clock) {
        let period = g.cfg.period();
        for _ in 0..period {
            let _ = clock.commit(g, 10);
        }
        assert!(!g.degraded(), "warm-up must end in a probe");
        for _ in 0..PROBE_LEN {
            let _ = clock.commit(g, 5);
        }
        assert!(
            matches!(g.mode, Mode::Normal { .. }),
            "a clearly faster probe must graduate to Normal"
        );
    }

    #[test]
    fn tied_probe_stays_degraded() {
        // Equal throughput must NOT promote: with no real overlap win,
        // pipelining only adds dispatch cost, and probe samples are too
        // noisy to trust a tie.
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        for _ in 0..cfg.reprobe_period {
            let _ = clock.commit(&mut g, 10);
        }
        assert!(!g.degraded(), "warm-up must end in a probe");
        for _ in 0..PROBE_LEN {
            let _ = clock.commit(&mut g, 10);
        }
        assert!(g.degraded(), "an equal-throughput probe collapses back");
        assert_eq!(g.stats().degrades, 1);
    }

    /// Grows the window to the configured max with clean commits fast
    /// enough to keep clearing the periodic throughput review.
    fn grow_to_max(g: &mut Governor, clock: &mut Clock) {
        for _ in 0..20_000 {
            if g.window() == g.cfg.max_window() {
                return;
            }
            let _ = clock.commit(g, 5);
        }
        panic!("window never reached the max");
    }

    #[test]
    fn run_starts_degraded_and_speculation_must_earn_the_pipeline() {
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        assert!(g.degraded(), "calibration posture is degraded");
        assert_eq!(g.window(), 1);
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        assert_eq!(g.window(), PROBE_WINDOW, "probe window carries into Normal");
        let stats = g.stats();
        assert_eq!(stats.reprobes, 1);
        assert_eq!(stats.degrades, 0, "the initial posture is not a collapse");
        assert_eq!(stats.degraded_commits, u64::from(cfg.reprobe_period));
    }

    #[test]
    fn slow_pipeline_redegrades_without_any_conflicts() {
        // The sub-granularity case: zero conflicts, but pipelined
        // commits take 4x the sequential gap — the probe must fail on
        // throughput alone.
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        for _ in 0..cfg.reprobe_period {
            let _ = clock.commit(&mut g, 10);
        }
        assert!(!g.degraded(), "probing after warm-up");
        for _ in 0..PROBE_LEN {
            let _ = clock.commit(&mut g, 40);
        }
        assert!(g.degraded(), "a losing probe collapses back");
        let stats = g.stats();
        assert_eq!(stats.degrades, 1);
        assert_eq!(stats.reprobes, 1);
        assert_eq!(g.window(), 1);
    }

    #[test]
    fn fast_pipeline_stays_normal_through_reviews() {
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        for _ in 0..cfg.reprobe_period {
            let _ = clock.commit(&mut g, 10);
        }
        // Probe and two full review periods at 3x the sequential speed.
        for _ in 0..(PROBE_LEN + 2 * cfg.reprobe_period) {
            let _ = clock.commit(&mut g, 3);
            assert!(!g.degraded(), "a paying pipeline is never collapsed");
        }
        assert_eq!(g.window(), cfg.window, "clean commits grow to the max");
    }

    #[test]
    fn window_never_leaves_bounds() {
        let cfg = GovernorConfig::default().with_window(16);
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        grow_to_max(&mut g, &mut clock);
        // Hammer conflicts: window must shrink but never drop below 1.
        for t in 0..500 {
            let _ = g.on_conflict(t, 1, Some(7), Some(t.saturating_sub(1)), false);
            assert!(g.window() >= 1, "window fell below 1");
        }
        // Hammer clean commits: window must grow but never exceed max.
        // Model a loop whose pipeline genuinely runs 2x the sequential
        // pace, so the post-storm reprobe clears the promotion margin
        // and growth resumes.
        for _ in 0..20_000 {
            let gap = if g.degraded() { 10 } else { 5 };
            let _ = clock.commit(&mut g, gap);
            assert!(g.window() <= 16, "window exceeded the configured max");
        }
        assert_eq!(g.window(), 16, "sustained clean commits restore the max");
        let stats = g.stats();
        assert!(stats.shrinks >= 1);
        assert!(stats.grows >= 1);
        assert_eq!(stats.min_window, 1);
        assert_eq!(stats.final_window, 16);
    }

    #[test]
    fn shrink_has_hysteresis() {
        let mut g = Governor::new(GovernorConfig {
            window: 64,
            degrade_ceiling: 1001, // rate alone never degrades here
            ..GovernorConfig::default()
        });
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        grow_to_max(&mut g, &mut clock);
        let _ = g.on_conflict(0, 0, Some(1), None, false);
        assert_eq!(g.window(), 32, "first conflict halves the window");
        // A burst inside the cooldown is one signal, not many.
        let _ = g.on_conflict(1, 0, Some(1), None, false);
        let _ = g.on_conflict(2, 0, Some(1), None, false);
        assert_eq!(g.window(), 32, "burst within cooldown shrinks once");
        for _ in 0..32 {
            let _ = clock.commit(&mut g, 10);
        }
        // The clean run both expires the cooldown and earns one growth
        // step (32 -> 36); the re-armed shrink then halves from there.
        let grown = g.window();
        assert!(grown > 32, "a clean window's worth of commits grows");
        let _ = g.on_conflict(3, 0, Some(1), None, false);
        assert_eq!(g.window(), grown / 2, "cooldown expiry re-arms the shrink");
    }

    #[test]
    fn sustained_storm_degrades_and_probe_conflict_redegrades() {
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        storm(&mut g, cfg.history + 4);
        assert!(g.degraded(), "a sustained storm must degrade");
        assert_eq!(g.window(), 1);
        // reprobe_period degraded commits later, the governor probes.
        for _ in 0..cfg.reprobe_period {
            let _ = clock.commit(&mut g, 10);
        }
        assert!(!g.degraded(), "reprobe leaves degraded mode");
        assert_eq!(g.window(), PROBE_WINDOW, "probes pipeline a small window");
        // One conflict during the probe re-degrades immediately.
        let _ = g.on_conflict(999, 0, Some(1), Some(998), false);
        assert!(g.degraded(), "probe conflict re-degrades without dithering");
        let stats = g.stats();
        assert!(stats.degrades >= 2);
        assert_eq!(stats.reprobes, 2, "warm-up probe plus the storm reprobe");
    }

    #[test]
    fn clean_probe_returns_to_normal_growth() {
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        storm(&mut g, cfg.history + 4);
        for _ in 0..cfg.reprobe_period {
            let _ = clock.commit(&mut g, 10);
        }
        // Survive the probe cleanly, clearly faster than sequential.
        for _ in 0..PROBE_LEN {
            let _ = clock.commit(&mut g, 5);
        }
        assert!(!g.degraded());
        // Normal mode now grows additively toward the max again.
        let before = g.window();
        for _ in 0..u64::from(before) {
            let _ = clock.commit(&mut g, 10);
        }
        assert!(g.window() > before, "clean windows grow the cap");
    }

    #[test]
    fn hot_address_escalates_to_park() {
        let cfg = GovernorConfig::default();
        let mut g = Governor::new(cfg);
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        let mut delays = Vec::new();
        for attempt in 0..cfg.park_threshold {
            let (d, _) = g.on_conflict(10, attempt, Some(42), Some(9), false);
            match d {
                BackoffDecision::Delay(t) => delays.push(t),
                other => panic!("expected a delay below the threshold, got {other:?}"),
            }
        }
        assert!(
            delays
                .windows(2)
                .all(|w| w[0] <= w[1] || w[1] >= cfg.backoff_base),
            "delays follow an exponential (jittered) ramp: {delays:?}"
        );
        let (d, _) = g.on_conflict(10, cfg.park_threshold, Some(42), Some(9), false);
        assert_eq!(
            d,
            BackoffDecision::Park { behind: 9 },
            "past the threshold the victim serializes behind the committer"
        );
        assert_eq!(g.stats().parks, 1);
    }

    #[test]
    fn frontier_conflicts_redispatch_immediately() {
        let mut g = Governor::new(GovernorConfig::default());
        let mut clock = Clock::new();
        promote(&mut g, &mut clock);
        let (d, _) = g.on_conflict(0, 0, Some(1), None, true);
        assert_eq!(d, BackoffDecision::Immediate, "never delay the frontier");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = GovernorConfig::default().with_seed(7);
        let run = || {
            let mut g = Governor::new(cfg);
            let mut clock = Clock::new();
            promote(&mut g, &mut clock);
            g.on_conflict(3, 1, Some(5), None, false).0
        };
        assert_eq!(run(), run(), "same seed, same decision");
        assert!(
            matches!(run(), BackoffDecision::Delay(_)),
            "a first non-frontier conflict backs off"
        );
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let mut g = Governor::new(GovernorConfig {
            window: 0,
            shrink: 0,
            grow: 0,
            history: 0,
            reprobe_period: 0,
            ..GovernorConfig::default()
        });
        assert_eq!(g.window(), 1, "zero max window clamps to 1");
        let _ = g.on_conflict(0, 0, None, None, false);
        assert_eq!(g.window(), 1);
        let mut clock = Clock::new();
        for _ in 0..10 {
            let _ = clock.commit(&mut g, 10);
        }
        assert_eq!(g.window(), 1, "window never exceeds the clamped max");
    }
}
