use super::*;
use crate::plan::ExecutionPlan;
use crate::task::{SpecDep, TaskGraph, TaskId};

/// The canonical three-phase graph: A serial, B parallel, C serial with
/// a loop-carried chain; B_i speculates on B_{i-1} with violations at
/// the given iterations.
fn three_phase_graph(iters: u64, violate_at: &[u64]) -> TaskGraph {
    let mut graph = TaskGraph::new(3);
    let mut prev_a = None;
    let mut prev_b: Option<TaskId> = None;
    let mut prev_c = None;
    for i in 0..iters {
        let a_deps: Vec<TaskId> = prev_a.into_iter().collect();
        let a = graph.add_task(0, i, 10, &a_deps, &[]);
        let spec: Vec<SpecDep> = prev_b
            .map(|on| SpecDep {
                on,
                violated: violate_at.contains(&i),
            })
            .into_iter()
            .collect();
        let b = graph.add_task(1, i, 40, &[a], &spec);
        let mut c_deps = vec![b];
        if let Some(c) = prev_c {
            c_deps.push(c);
        }
        let c = graph.add_task(2, i, 10, &c_deps, &[]);
        prev_a = Some(a);
        prev_b = Some(b);
        prev_c = Some(c);
    }
    graph
}

/// A body that emits each B task's iteration tag — and a deliberately
/// corrupt tag while speculative, so a missed squash or a phantom
/// squash both corrupt the output stream.
fn tagging_body(violate_at: Vec<u64>) -> impl NativeBody {
    move |task: TaskId, ctx: &TaskCtx<'_>| {
        if ctx.stage.0 != 1 {
            return TaskOutput::empty();
        }
        let mut bytes = ctx.iter.to_le_bytes().to_vec();
        if ctx.speculative() && violate_at.contains(&ctx.iter) {
            bytes[0] ^= 0xFF; // stale value speculation would produce
        }
        TaskOutput {
            bytes,
            work: task.0 as u64 + 1,
        }
    }
}

fn expected_stream(iters: u64) -> Vec<u8> {
    (0..iters).flat_map(|i| i.to_le_bytes()).collect()
}

#[test]
fn pipeline_output_matches_sequential_order() {
    let graph = three_phase_graph(50, &[]);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap();
    assert_eq!(report.output, expected_stream(50));
    assert_eq!(report.tasks_committed, 150);
    assert_eq!(report.attempts, 150);
    assert_eq!(report.squashes, 0);
    assert_eq!(report.violations, 0);
    assert_eq!(report.speculations_survived, 49);
}

#[test]
fn violated_speculation_squashes_and_reexecutes() {
    let violate = vec![3, 7, 20];
    let graph = three_phase_graph(30, &violate);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(violate.clone()))
        .unwrap();
    // Rollback is load-bearing: the speculative attempts wrote corrupt
    // bytes, so the stream is clean only if each violation squashed and
    // re-executed exactly once.
    assert_eq!(report.output, expected_stream(30));
    assert_eq!(report.squashes, violate.len() as u64);
    assert_eq!(report.violations, violate.len() as u64);
    assert_eq!(report.speculations_survived, 29 - violate.len() as u64);
    assert_eq!(report.attempts, 90 + violate.len() as u64);
}

#[test]
fn single_core_plan_still_completes() {
    let graph = three_phase_graph(20, &[5]);
    let plan = ExecutionPlan::three_phase(1);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![5]))
        .unwrap();
    assert_eq!(report.output, expected_stream(20));
    assert_eq!(report.threads(), 3); // one worker per stage, all core 0
}

#[test]
fn round_robin_assignment_matches_shared_queue_output() {
    let graph = three_phase_graph(40, &[2, 9]);
    let body = tagging_body(vec![2, 9]);
    let dynamic = NativeExecutor::default()
        .run(&graph, &ExecutionPlan::three_phase(6), &body)
        .unwrap();
    let static_rr = NativeExecutor::default()
        .run(&graph, &ExecutionPlan::three_phase_static(6), &body)
        .unwrap();
    assert_eq!(dynamic.output, static_rr.output);
    assert_eq!(dynamic.squashes, static_rr.squashes);
}

#[test]
fn tiny_queues_apply_backpressure_without_deadlock() {
    let graph = three_phase_graph(200, &[17, 90, 91]);
    let plan = ExecutionPlan::three_phase(4);
    let exec = NativeExecutor::new(ExecConfig::with_queue_capacity(1));
    let report = exec
        .run(&graph, &plan, &tagging_body(vec![17, 90, 91]))
        .unwrap();
    assert_eq!(report.output, expected_stream(200));
    assert_eq!(report.squashes, 3);
}

#[test]
fn stage_mismatch_is_rejected() {
    let graph = three_phase_graph(4, &[]);
    let plan = ExecutionPlan::tls(4); // 1-stage plan vs 3-stage graph
    let err = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap_err();
    assert!(matches!(err, SimError::StageMismatch { .. }));
}

#[test]
fn empty_graph_commits_nothing() {
    let graph = TaskGraph::new(3);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap();
    assert!(report.output.is_empty());
    assert_eq!(report.tasks_committed, 0);
}

#[test]
fn repeated_runs_are_deterministic() {
    let violate = vec![1, 4, 11, 12];
    let graph = three_phase_graph(60, &violate);
    let plan = ExecutionPlan::three_phase(8);
    let body = tagging_body(violate);
    let first = NativeExecutor::default().run(&graph, &plan, &body).unwrap();
    for _ in 0..5 {
        let again = NativeExecutor::default().run(&graph, &plan, &body).unwrap();
        assert_eq!(again.output, first.output);
        assert_eq!(again.squashes, first.squashes);
        assert_eq!(again.violations, first.violations);
        assert_eq!(again.work, first.work);
    }
}
