use super::*;
use crate::plan::ExecutionPlan;
use crate::task::{SpecDep, TaskGraph, TaskId};

/// The canonical three-phase graph: A serial, B parallel, C serial with
/// a loop-carried chain; B_i speculates on B_{i-1} with violations at
/// the given iterations.
fn three_phase_graph(iters: u64, violate_at: &[u64]) -> TaskGraph {
    let mut graph = TaskGraph::new(3);
    let mut prev_a = None;
    let mut prev_b: Option<TaskId> = None;
    let mut prev_c = None;
    for i in 0..iters {
        let a_deps: Vec<TaskId> = prev_a.into_iter().collect();
        let a = graph.add_task(0, i, 10, &a_deps, &[]);
        let spec: Vec<SpecDep> = prev_b
            .map(|on| SpecDep {
                on,
                violated: violate_at.contains(&i),
            })
            .into_iter()
            .collect();
        let b = graph.add_task(1, i, 40, &[a], &spec);
        let mut c_deps = vec![b];
        if let Some(c) = prev_c {
            c_deps.push(c);
        }
        let c = graph.add_task(2, i, 10, &c_deps, &[]);
        prev_a = Some(a);
        prev_b = Some(b);
        prev_c = Some(c);
    }
    graph
}

/// A body that emits each B task's iteration tag — and a deliberately
/// corrupt tag while speculative, so a missed squash or a phantom
/// squash both corrupt the output stream.
fn tagging_body(violate_at: Vec<u64>) -> impl NativeBody {
    move |task: TaskId, ctx: &TaskCtx<'_>| {
        if ctx.stage.0 != 1 {
            return TaskOutput::empty();
        }
        let mut bytes = ctx.iter.to_le_bytes().to_vec();
        if ctx.speculative() && violate_at.contains(&ctx.iter) {
            bytes[0] ^= 0xFF; // stale value speculation would produce
        }
        TaskOutput {
            bytes,
            work: task.0 as u64 + 1,
        }
    }
}

fn expected_stream(iters: u64) -> Vec<u8> {
    (0..iters).flat_map(u64::to_le_bytes).collect()
}

#[test]
fn pipeline_output_matches_sequential_order() {
    let graph = three_phase_graph(50, &[]);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap();
    assert_eq!(report.output, expected_stream(50));
    assert_eq!(report.tasks_committed, 150);
    assert_eq!(report.attempts, 150);
    assert_eq!(report.squashes, 0);
    assert_eq!(report.violations, 0);
    assert_eq!(report.speculations_survived, 49);
}

#[test]
fn violated_speculation_squashes_and_reexecutes() {
    let violate = vec![3, 7, 20];
    let graph = three_phase_graph(30, &violate);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(violate.clone()))
        .unwrap();
    // Rollback is load-bearing: the speculative attempts wrote corrupt
    // bytes, so the stream is clean only if each violation squashed and
    // re-executed exactly once.
    assert_eq!(report.output, expected_stream(30));
    assert_eq!(report.squashes, violate.len() as u64);
    assert_eq!(report.violations, violate.len() as u64);
    assert_eq!(report.speculations_survived, 29 - violate.len() as u64);
    assert_eq!(report.attempts, 90 + violate.len() as u64);
}

#[test]
fn single_core_plan_still_completes() {
    let graph = three_phase_graph(20, &[5]);
    let plan = ExecutionPlan::three_phase(1);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![5]))
        .unwrap();
    assert_eq!(report.output, expected_stream(20));
    assert_eq!(report.threads(), 3); // one worker per stage, all core 0
}

#[test]
fn round_robin_assignment_matches_shared_queue_output() {
    let graph = three_phase_graph(40, &[2, 9]);
    let body = tagging_body(vec![2, 9]);
    let dynamic = NativeExecutor::default()
        .run(&graph, &ExecutionPlan::three_phase(6), &body)
        .unwrap();
    let static_rr = NativeExecutor::default()
        .run(&graph, &ExecutionPlan::three_phase_static(6), &body)
        .unwrap();
    assert_eq!(dynamic.output, static_rr.output);
    assert_eq!(dynamic.squashes, static_rr.squashes);
}

#[test]
fn tiny_queues_apply_backpressure_without_deadlock() {
    let graph = three_phase_graph(200, &[17, 90, 91]);
    let plan = ExecutionPlan::three_phase(4);
    let exec = NativeExecutor::new(ExecConfig::with_queue_capacity(1));
    let report = exec
        .run(&graph, &plan, &tagging_body(vec![17, 90, 91]))
        .unwrap();
    assert_eq!(report.output, expected_stream(200));
    assert_eq!(report.squashes, 3);
}

#[test]
fn stage_mismatch_is_rejected() {
    let graph = three_phase_graph(4, &[]);
    let plan = ExecutionPlan::tls(4); // 1-stage plan vs 3-stage graph
    let err = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap_err();
    assert!(matches!(
        err,
        ExecError::Invalid(SimError::StageMismatch { .. })
    ));
}

#[test]
fn empty_stage_pool_is_rejected() {
    let graph = three_phase_graph(4, &[]);
    let plan = ExecutionPlan::new(vec![
        crate::plan::StageAssignment::serial(0),
        crate::plan::StageAssignment::Parallel { cores: vec![] },
        crate::plan::StageAssignment::serial(1),
    ]);
    let err = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::Invalid(SimError::EmptyStagePool { stage: 1 })
    );
}

#[test]
fn empty_graph_commits_nothing() {
    let graph = TaskGraph::new(3);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap();
    assert!(report.output.is_empty());
    assert_eq!(report.tasks_committed, 0);
}

#[test]
fn repeated_runs_are_deterministic() {
    let violate = vec![1, 4, 11, 12];
    let graph = three_phase_graph(60, &violate);
    let plan = ExecutionPlan::three_phase(8);
    let body = tagging_body(violate);
    let first = NativeExecutor::default().run(&graph, &plan, &body).unwrap();
    for _ in 0..5 {
        let again = NativeExecutor::default().run(&graph, &plan, &body).unwrap();
        assert_eq!(again.output, first.output);
        assert_eq!(again.squashes, first.squashes);
        assert_eq!(again.violations, first.violations);
        assert_eq!(again.work, first.work);
    }
}

// ---------------------------------------------------------------------
// Fault injection and supervised recovery.
// ---------------------------------------------------------------------

use std::time::Duration;

/// Task index of phase B of iteration `i` in `three_phase_graph`.
fn b_task(i: u64) -> u32 {
    (3 * i + 1) as u32
}

/// Runs the canonical graph under `config` and asserts the output is
/// still byte-identical to sequential; returns the report.
fn run_faulted(iters: u64, violate: &[u64], config: ExecConfig) -> NativeReport {
    let graph = three_phase_graph(iters, violate);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::new(config)
        .run(&graph, &plan, &tagging_body(violate.to_vec()))
        .expect("recoverable faults never abort the run");
    assert_eq!(
        report.output,
        expected_stream(iters),
        "output must stay byte-identical to sequential under faults"
    );
    assert_eq!(report.tasks_committed, 3 * iters);
    report
}

#[test]
fn injected_worker_panic_is_recovered() {
    let config = ExecConfig::default().with_faults(FaultPlan::none().with_forced(
        b_task(5),
        0,
        FaultKind::WorkerPanic,
    ));
    let report = run_faulted(20, &[], config);
    assert_eq!(report.recovery.panics_recovered, 1);
    assert_eq!(report.recovery.retries, 1);
    assert!(!report.fallback_activated);
    // The panicked attempt costs exactly one extra dispatch.
    assert_eq!(report.attempts, 60 + 1);
}

#[test]
fn injected_corruption_is_caught_by_commit_validation() {
    let config = ExecConfig::default().with_faults(FaultPlan::none().with_forced(
        b_task(5),
        0,
        FaultKind::CorruptOutput,
    ));
    let report = run_faulted(20, &[], config);
    assert_eq!(report.recovery.corruptions_caught, 1);
    assert_eq!(report.recovery.retries, 1);
    assert!(!report.fallback_activated);
    assert_eq!(report.attempts, 60 + 1);
}

#[test]
fn injected_spurious_squash_replays_a_good_attempt() {
    let config = ExecConfig::default().with_faults(FaultPlan::none().with_forced(
        b_task(5),
        0,
        FaultKind::SpuriousSquash,
    ));
    let report = run_faulted(20, &[], config);
    assert_eq!(report.recovery.spurious_squashes, 1);
    assert_eq!(report.recovery.retries, 1);
    assert!(!report.fallback_activated);
    assert_eq!(report.attempts, 60 + 1);
}

#[test]
fn injected_stall_is_absorbed_within_the_deadline() {
    let config = ExecConfig::default().with_faults(
        FaultPlan::none()
            .with_forced(b_task(5), 0, FaultKind::StageStall)
            .with_stall_duration(Duration::from_millis(5)),
    );
    let report = run_faulted(20, &[], config);
    assert_eq!(report.recovery.stalls_absorbed, 1);
    assert_eq!(
        report.recovery.retries, 0,
        "a finished stall costs no retry"
    );
    assert_eq!(report.watchdog_trips, 0);
    assert!(!report.fallback_activated);
    assert_eq!(report.attempts, 60);
}

#[test]
fn watchdog_trips_on_a_wedged_stage_and_falls_back() {
    // One B task sleeps for 10× the watchdog deadline: the pipeline
    // wedges at the commit frontier and the supervisor must degrade to
    // sequential execution — with the output still byte-identical.
    let config = ExecConfig::default()
        .with_faults(
            FaultPlan::none()
                .with_forced(b_task(5), 0, FaultKind::StageStall)
                .with_stall_duration(Duration::from_millis(600)),
        )
        .with_watchdog_deadline(Duration::from_millis(60));
    let report = run_faulted(20, &[], config);
    assert!(report.watchdog_trips >= 1);
    assert!(report.fallback_activated);
    assert!(report.recovery.fallback_tasks > 0);
}

#[test]
fn budget_zero_degrades_to_sequential_fallback_instead_of_aborting() {
    let config = ExecConfig::default()
        .with_faults(FaultPlan::none().with_forced(b_task(5), 0, FaultKind::WorkerPanic))
        .with_retry_budget(0);
    let report = run_faulted(20, &[], config);
    assert!(report.fallback_activated);
    assert_eq!(report.recovery.panics_recovered, 1);
    // Tasks 0..=15 committed pipelined (the frontier stood at B_5 =
    // task 16 when the budget ran out); 16.. ran sequentially.
    assert_eq!(report.recovery.fallback_tasks, 60 - 16);
    assert_eq!(report.watchdog_trips, 0);
}

#[test]
fn real_body_panic_is_squashed_and_replayed() {
    let graph = three_phase_graph(20, &[]);
    let plan = ExecutionPlan::three_phase(4);
    let body = move |task: TaskId, ctx: &TaskCtx<'_>| {
        if ctx.stage.0 == 1 && ctx.iter == 7 && ctx.attempt == 0 {
            panic!("flaky body");
        }
        if ctx.stage.0 == 1 {
            TaskOutput::bytes(ctx.iter.to_le_bytes().to_vec())
        } else {
            let _ = task;
            TaskOutput::empty()
        }
    };
    let report = NativeExecutor::default().run(&graph, &plan, &body).unwrap();
    assert_eq!(report.output, expected_stream(20));
    assert_eq!(report.recovery.panics_recovered, 1);
    assert!(!report.fallback_activated);
}

#[test]
fn unreplayable_body_panic_is_a_typed_error() {
    // A body that panics on *every* attempt of one task: the budget
    // exhausts, the fallback re-runs it sequentially, and that panic is
    // unrecoverable — surfaced as ExecError::TaskFailed, not a crash.
    let graph = three_phase_graph(8, &[]);
    let plan = ExecutionPlan::three_phase(4);
    let body = move |_: TaskId, ctx: &TaskCtx<'_>| -> TaskOutput {
        if ctx.stage.0 == 1 && ctx.iter == 2 {
            panic!("permanently broken body");
        }
        TaskOutput::empty()
    };
    let err = NativeExecutor::new(ExecConfig::default().with_retry_budget(1))
        .run(&graph, &plan, &body)
        .unwrap_err();
    assert_eq!(err, ExecError::TaskFailed { task: TaskId(7) });
}

#[test]
fn seeded_chaos_is_deterministic_and_matches_the_predictor() {
    let violate = vec![3, 9];
    let iters = 40u64;
    let graph = three_phase_graph(iters, &violate);
    let plan = ExecutionPlan::three_phase(4);
    let faults = FaultPlan::seeded(7);
    let config = ExecConfig::default().with_faults(faults.clone());
    let body = tagging_body(violate);
    let a = NativeExecutor::new(config.clone())
        .run(&graph, &plan, &body)
        .unwrap();
    let b = NativeExecutor::new(config)
        .run(&graph, &plan, &body)
        .unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.squashes, b.squashes);
    assert_eq!(a.violations, b.violations);
    assert!(!a.fallback_activated, "seed 7 must not exhaust budget 3");
    assert_eq!(a.output, expected_stream(iters));
    assert!(a.recovery.faults_recovered() > 0);

    // The pure predictor replays the frontier protocol exactly.
    let mut predicted = RecoveryCounts::default();
    let mut attempts = 0u64;
    let mut squashes = 0u64;
    for (idx, task) in graph.tasks().iter().enumerate() {
        let violated = graph.spec_deps(task).iter().any(|d| d.violated);
        let sup = supervise_task(&faults, 3, idx as u32, violated);
        assert!(!sup.exhausted);
        predicted.absorb(&sup.counts);
        attempts += sup.attempts as u64;
        squashes += sup.misspec_squashed as u64;
    }
    assert_eq!(a.recovery, predicted);
    assert_eq!(a.attempts, attempts);
    assert_eq!(a.squashes, squashes);
}

#[test]
fn zero_capacity_clamps_to_one_and_both_drain_a_parallel_stage() {
    // `with_queue_capacity(0)` is documented to clamp to 1: a zero-
    // capacity queue could never transfer an item under the dispatcher's
    // try-send protocol. Pin the clamp and prove capacities 0 and 1
    // behave identically through a Parallel stage with squashes in
    // flight.
    let zero = ExecConfig::with_queue_capacity(0);
    assert_eq!(zero.queue_capacity, 1, "capacity 0 must clamp to 1");
    let one = ExecConfig::with_queue_capacity(1);
    assert_eq!(one.queue_capacity, 1);

    let violate = vec![2, 9];
    let graph = three_phase_graph(30, &violate);
    let plan = ExecutionPlan::three_phase(4); // phase B is Parallel
    let body = tagging_body(violate);
    let r0 = NativeExecutor::new(zero).run(&graph, &plan, &body).unwrap();
    let r1 = NativeExecutor::new(one).run(&graph, &plan, &body).unwrap();
    assert_eq!(r0.output, expected_stream(30));
    assert_eq!(r0.output, r1.output);
    assert_eq!(r0.squashes, r1.squashes);
    assert_eq!(r0.attempts, r1.attempts);
    assert_eq!(r0.work, r1.work);
}

// --- structured tracing ----------------------------------------------

#[test]
fn untraced_runs_carry_no_timeline() {
    let graph = three_phase_graph(10, &[]);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::default()
        .run(&graph, &plan, &tagging_body(vec![]))
        .unwrap();
    assert!(report.timeline.is_none(), "tracing is off by default");
}

#[test]
fn traced_run_yields_a_well_formed_timeline() {
    let violate = vec![3, 11];
    let graph = three_phase_graph(25, &violate);
    let plan = ExecutionPlan::three_phase(4);
    let report = NativeExecutor::new(ExecConfig::default().with_tracing(true))
        .run(&graph, &plan, &tagging_body(violate.clone()))
        .unwrap();
    assert_eq!(report.output, expected_stream(25));
    let timeline = report.timeline.as_ref().expect("tracing was on");
    timeline.validate().expect("native traces are well-formed");
    assert_eq!(timeline.unit(), TimeUnit::Nanos);
    assert_eq!(timeline.stage_count(), 3);
    // Commits are the sequential order, one per task.
    let order = timeline.commit_order();
    assert_eq!(order.len(), graph.len());
    assert!(order.iter().enumerate().all(|(i, t)| t.0 as usize == i));
    // Event tallies line up with the report's counters.
    let squash_events = timeline
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::Squash { .. }))
        .count() as u64;
    assert_eq!(squash_events, report.squashes);
    let metrics = timeline.stage_metrics();
    assert_eq!(metrics.len(), 3);
    let attempts: u64 = metrics.iter().map(|m| m.attempts).sum();
    assert_eq!(attempts, report.attempts);
    let committed: u64 = metrics.iter().map(|m| m.committed).sum();
    assert_eq!(committed, report.tasks_committed);
    // Phase B carries the two squashed replays, so it attempts strictly
    // more than phase A. (Not a wall-clock comparison: these bodies run
    // in nanoseconds, so real service times are scheduler noise.)
    assert_eq!(metrics[0].attempts, 25);
    assert_eq!(metrics[1].attempts, 25 + violate.len() as u64);
    // The critical path is non-trivial and starts inside the graph.
    let cp = timeline.critical_path(&graph);
    assert!(cp.length > 0);
    assert!(!cp.tasks.is_empty());
    // The Chrome export wraps every slice.
    let json = timeline.to_chrome_json(&["A".into(), "B".into(), "C".into()]);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("B t4#0"));
}

#[test]
fn traced_chaos_run_still_validates_and_commits_in_order() {
    let config = ExecConfig::default()
        .with_faults(FaultPlan::seeded(7))
        .with_tracing(true);
    let report = run_faulted(40, &[4, 19], config);
    let timeline = report.timeline.as_ref().expect("tracing was on");
    timeline
        .validate()
        .expect("chaos traces are well-formed too");
    assert_eq!(timeline.commit_order().len(), 120);
}

#[test]
fn traced_fallback_commits_carry_the_fallback_attempt() {
    let config = ExecConfig::default()
        .with_faults(FaultPlan::none().with_forced(b_task(5), 0, FaultKind::WorkerPanic))
        .with_retry_budget(0)
        .with_tracing(true);
    let report = run_faulted(20, &[], config);
    assert!(report.fallback_activated);
    let timeline = report.timeline.as_ref().expect("tracing was on");
    timeline
        .validate()
        .expect("fallback traces are well-formed");
    let fallback_commits = timeline
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::Commit { attempt, .. } if attempt == FALLBACK_ATTEMPT))
        .count() as u64;
    assert_eq!(fallback_commits, report.recovery.fallback_tasks);
    assert!(timeline
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::FallbackActivated { .. })));
}

// --- versioned-memory runs -------------------------------------------

use seqpar_specmem::{Addr, ConcurrentVersionedMemory, VersionId};

/// A single-stage TLS loop over a shared counter: each task reads the
/// counter through its memory version, increments it, and emits the
/// value it observed. Sequentially, task `i` observes `i` — so the
/// committed output stream pins both the byte-identity guarantee and
/// the substrate's conflict detection (a stale racing read that
/// escaped squashing would emit the wrong tag).
fn counter_graph(iters: u64) -> TaskGraph {
    let mut graph = TaskGraph::new(1);
    for i in 0..iters {
        graph.add_task(0, i, 10, &[], &[]);
    }
    graph
}

fn counter_body() -> impl NativeBody {
    |task: TaskId, ctx: &TaskCtx<'_>| {
        let value = if let Some(m) = ctx.mem {
            let v = VersionId(u64::from(task.0));
            let got = m.read(v, Addr(0));
            m.write(v, Addr(0), got + 1);
            got
        } else {
            // Sequential oracle / fallback path: task `i` observes the
            // `i` increments before it, without touching the substrate.
            ctx.iter
        };
        TaskOutput::bytes(value.to_le_bytes().to_vec())
    }
}

#[test]
fn versioned_run_commits_sequential_output_and_memory_state() {
    let iters = 40;
    let graph = counter_graph(iters);
    let plan = ExecutionPlan::tls(4);
    let mem = ConcurrentVersionedMemory::new();
    let report = NativeExecutor::default()
        .run_versioned(&graph, &plan, &counter_body(), &mem)
        .unwrap();
    assert_eq!(report.output, expected_stream(iters));
    assert_eq!(report.tasks_committed, iters);
    // Every task's version committed and published: the counter holds
    // the full tally, and no version is left open.
    assert_eq!(mem.committed(Addr(0)), Some(iters));
    assert_eq!(mem.active_count(), 0);
    let stats = report.mem.expect("versioned runs report memory stats");
    assert_eq!(stats.commits, iters);
    // Conflict counts are timing-dependent, but every substrate
    // violation surfaces as exactly one frontier squash (and replays
    // are never charged to the retry budget).
    assert_eq!(report.squashes, stats.violations);
    assert_eq!(report.attempts, iters + report.squashes);
    assert_eq!(report.recovery.retries, 0);
    assert!(!report.fallback_activated);
}

#[test]
fn versioned_runs_ignore_recorded_spec_deps() {
    // Every B task carries a *violated* recorded dependence — the
    // trace-driven squash source would replay all of them. The bodies
    // never touch memory, so the substrate sees no conflicts and the
    // versioned frontier must squash nothing: the recording is not the
    // squash source any more.
    let iters = 20;
    let violate: Vec<u64> = (1..iters).collect();
    let graph = three_phase_graph(iters, &violate);
    let plan = ExecutionPlan::three_phase(4);
    let body = |_: TaskId, ctx: &TaskCtx<'_>| {
        if ctx.stage.0 != 1 {
            return TaskOutput::empty();
        }
        TaskOutput::bytes(ctx.iter.to_le_bytes().to_vec())
    };
    let mem = ConcurrentVersionedMemory::new();
    let report = NativeExecutor::default()
        .run_versioned(&graph, &plan, &body, &mem)
        .unwrap();
    assert_eq!(report.output, expected_stream(iters));
    assert_eq!(report.squashes, 0);
    assert_eq!(report.violations, 0);
    assert_eq!(report.attempts, iters * 3);
    // The trace-driven twin, for contrast, replays every violation.
    let trace_driven = NativeExecutor::default().run(&graph, &plan, &body).unwrap();
    assert_eq!(trace_driven.squashes, iters - 1);
}

#[test]
fn traced_versioned_run_emits_version_events() {
    let iters = 25;
    let graph = counter_graph(iters);
    let plan = ExecutionPlan::tls(4);
    let mem = ConcurrentVersionedMemory::new();
    let report = NativeExecutor::new(ExecConfig::default().with_tracing(true))
        .run_versioned(&graph, &plan, &counter_body(), &mem)
        .unwrap();
    assert_eq!(report.output, expected_stream(iters));
    let timeline = report.timeline.as_ref().expect("tracing was on");
    timeline
        .validate()
        .expect("versioned traces are well-formed");
    let count = |pred: &dyn Fn(&TraceEventKind) -> bool| {
        timeline.events().iter().filter(|e| pred(&e.kind)).count() as u64
    };
    // One version open per attempt, one version commit per task.
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::VersionOpen { .. })),
        report.attempts
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::VersionCommit { .. })),
        report.tasks_committed
    );
    // Conflicts pair 1:1 with memory-conflict squashes, and no other
    // squash reason appears on a fault-free versioned run.
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::VersionConflict { .. })),
        report.squashes
    );
    assert_eq!(
        count(&|k| matches!(
            k,
            TraceEventKind::Squash {
                reason: SquashReason::MemoryConflict,
                ..
            }
        )),
        report.squashes
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::Squash { .. })),
        report.squashes
    );
    // Committed attempts recorded their read/forward tallies.
    assert!(count(&|k| matches!(k, TraceEventKind::VersionReads { .. })) >= report.tasks_committed);
}

#[test]
fn versioned_chaos_run_still_commits_sequential_output() {
    // Injected panics, stalls, corruptions, and spurious squashes all
    // land on attempts that hold open memory versions; every recovery
    // path must roll the version back before replaying, or the replay's
    // `begin` would panic the substrate.
    for seed in [7, 42] {
        let iters = 30;
        let graph = counter_graph(iters);
        let plan = ExecutionPlan::tls(4);
        let mem = ConcurrentVersionedMemory::new();
        let config = ExecConfig::default()
            .with_faults(FaultPlan::seeded(seed))
            .with_retry_budget(4)
            .with_tracing(true);
        let report = NativeExecutor::new(config)
            .run_versioned(&graph, &plan, &counter_body(), &mem)
            .unwrap();
        assert_eq!(report.output, expected_stream(iters), "seed {seed}");
        assert_eq!(report.tasks_committed, iters);
        report
            .timeline
            .as_ref()
            .expect("tracing was on")
            .validate()
            .expect("versioned chaos traces are well-formed");
        if !report.fallback_activated {
            assert_eq!(mem.committed(Addr(0)), Some(iters), "seed {seed}");
            assert_eq!(mem.active_count(), 0, "seed {seed}");
        }
    }
}
