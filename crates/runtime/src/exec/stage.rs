//! Stage queues and worker threads.
//!
//! Each pipeline stage gets real bounded channels sized to
//! [`ExecConfig::queue_capacity`](super::ExecConfig::queue_capacity) and
//! one OS thread per core the plan assigns it. `Serial` stages own a
//! single queue and worker; `Parallel` stages share one MPMC queue
//! between their workers, so work lands on whichever core frees up
//! first (the dynamic least-loaded discipline of paper §3.2);
//! `RoundRobin` stages get one queue per worker, fed statically by
//! iteration number.

use super::commit::CommitView;
use super::faults::{corrupt_output, FaultKind, FaultPlan};
use super::metrics::WorkerStat;
use super::trace::{TraceBuffer, TraceClock, TraceEvent, TraceEventKind};
use super::{NativeBody, TaskCtx, TaskOutput};
use crate::plan::{ExecutionPlan, StageAssignment};
use crate::task::{TaskGraph, TaskId};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use seqpar_specmem::{ConcurrentVersionedMemory, VersionId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::{Scope, ScopedJoinHandle};
use std::time::{Duration, Instant};

/// One dispatch of one task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) struct WorkItem {
    /// Index of the task in the graph.
    pub task: u32,
    /// 0 for the speculative first attempt; >0 for rollback
    /// re-executions.
    pub attempt: u32,
}

/// A finished execution, reported back to the commit unit.
#[derive(Debug)]
pub(super) struct WorkerDone {
    pub task: u32,
    pub attempt: u32,
    pub output: TaskOutput,
    /// Set when the attempt produced no result: the body panicked (the
    /// worker catches it and keeps serving) or the fault plan injected
    /// a [`FaultKind::WorkerPanic`]. The commit unit treats either like
    /// a misspeculation: discard and replay, charged against the
    /// task's retry budget.
    pub panicked: bool,
    /// The attempt ran behind an injected [`FaultKind::StageStall`];
    /// the commit unit tallies it when the attempt reaches the
    /// frontier.
    pub stalled: bool,
}

/// How released work reaches a stage's workers.
enum Route {
    /// One queue, drained by the stage's worker(s): `Serial` and
    /// `Parallel` assignments.
    Shared(Sender<WorkItem>),
    /// One queue per worker, selected by `iter % workers`: the
    /// `RoundRobin` ablation.
    PerWorker(Vec<Sender<WorkItem>>),
}

/// An unstarted worker: the core it models, its stage, and the queue it
/// drains.
struct WorkerSeat {
    stage: u8,
    core: usize,
    rx: Receiver<WorkItem>,
}

/// All stage queues plus the not-yet-started worker seats.
pub(super) struct StageQueues<'g> {
    graph: &'g TaskGraph,
    routes: Vec<Route>,
    seats: Vec<WorkerSeat>,
}

impl<'g> StageQueues<'g> {
    /// Builds the queue fabric `plan` describes, each queue bounded to
    /// `capacity` entries.
    pub(super) fn new(graph: &'g TaskGraph, plan: &ExecutionPlan, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut routes = Vec::new();
        let mut seats = Vec::new();
        for stage in 0..plan.stage_count() {
            match plan.stage(stage) {
                StageAssignment::Serial { core } => {
                    let (tx, rx) = bounded(capacity);
                    routes.push(Route::Shared(tx));
                    seats.push(WorkerSeat {
                        stage,
                        core: *core,
                        rx,
                    });
                }
                StageAssignment::Parallel { cores } => {
                    let (tx, rx) = bounded(capacity);
                    routes.push(Route::Shared(tx));
                    for &core in cores {
                        seats.push(WorkerSeat {
                            stage,
                            core,
                            rx: rx.clone(),
                        });
                    }
                }
                StageAssignment::RoundRobin { cores } => {
                    let mut txs = Vec::with_capacity(cores.len());
                    for &core in cores {
                        let (tx, rx) = bounded(capacity);
                        txs.push(tx);
                        seats.push(WorkerSeat { stage, core, rx });
                    }
                    routes.push(Route::PerWorker(txs));
                }
            }
        }
        Self {
            graph,
            routes,
            seats,
        }
    }

    /// Non-blocking enqueue of `item` on its stage's queue. Returns the
    /// queue's occupancy right after the push (for the trace's
    /// `QueuePush` events), or `None` when the queue is full
    /// (backpressure: the dispatcher retries after the next completion
    /// event).
    pub(super) fn try_send(&self, stage: usize, item: WorkItem) -> Option<usize> {
        let tx = match &self.routes[stage] {
            Route::Shared(tx) => tx,
            Route::PerWorker(txs) => {
                let iter = self.graph.task(TaskId(item.task)).iter;
                &txs[iter as usize % txs.len()]
            }
        };
        match tx.try_send(item) {
            Ok(()) => Some(tx.len()),
            Err(TrySendError::Full(_)) => None,
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("stage workers outlive the dispatcher")
            }
        }
    }

    /// Starts one thread per seat. Each worker drains its queue, runs
    /// the body, and reports completions until the queue disconnects.
    /// Each worker owns a private [`TraceBuffer`] on `clock` and
    /// returns its recorded events alongside its timing stat.
    // Every parameter is one shared facet of the worker environment,
    // forwarded verbatim into `worker_loop`; a bundling struct would
    // only rename the same nine things.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn spawn_workers<'scope>(
        &mut self,
        scope: &'scope Scope<'scope, '_>,
        graph: &'scope TaskGraph,
        body: &'scope dyn NativeBody,
        view: &'scope CommitView,
        done_tx: &Sender<WorkerDone>,
        faults: &'scope FaultPlan,
        clock: TraceClock,
        mem: Option<&'scope ConcurrentVersionedMemory>,
    ) -> Vec<ScopedJoinHandle<'scope, (WorkerStat, Vec<TraceEvent>)>> {
        std::mem::take(&mut self.seats)
            .into_iter()
            .map(|seat| {
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    worker_loop(seat, graph, body, view, done_tx, faults, clock, mem)
                })
            })
            .collect()
    }

    /// Drops every stage sender, disconnecting the queues so idle
    /// workers exit their receive loops.
    pub(super) fn close(self) {}
}

// Takes `seat` and `done_tx` by value on purpose: each worker thread owns
// its seat's receiver, and dropping its `done_tx` clone on exit is what
// disconnects the completion channel.
#[allow(clippy::needless_pass_by_value, clippy::too_many_arguments)]
fn worker_loop(
    seat: WorkerSeat,
    graph: &TaskGraph,
    body: &dyn NativeBody,
    view: &CommitView,
    done_tx: Sender<WorkerDone>,
    faults: &FaultPlan,
    clock: TraceClock,
    mem: Option<&ConcurrentVersionedMemory>,
) -> (WorkerStat, Vec<TraceEvent>) {
    let mut trace = TraceBuffer::new(clock);
    let mut busy = Duration::ZERO;
    let mut tasks = 0u64;
    while let Ok(item) = seat.rx.recv() {
        trace.record(TraceEventKind::QueuePop {
            stage: seat.stage,
            task: item.task,
            attempt: item.attempt,
            occupancy: seat.rx.len(),
        });
        let fault = faults.fault_at(item.task, item.attempt);
        if fault == Some(FaultKind::WorkerPanic) {
            // Injected panic: the attempt dies before the body runs.
            // Reported through the same `panicked` channel as a caught
            // real panic (rather than unwinding for real) so chaos runs
            // do not spray panic-hook noise over the test output. The
            // trace still gets a dispatch/complete pair so the attempt
            // shows up as a (zero-length) slice.
            tasks += 1;
            trace.record(TraceEventKind::Dispatch {
                core: seat.core,
                stage: seat.stage,
                task: item.task,
                attempt: item.attempt,
            });
            trace.record(TraceEventKind::Complete {
                core: seat.core,
                stage: seat.stage,
                task: item.task,
                attempt: item.attempt,
                panicked: true,
                stalled: false,
            });
            if done_tx
                .send(WorkerDone {
                    task: item.task,
                    attempt: item.attempt,
                    output: TaskOutput::empty(),
                    panicked: true,
                    stalled: false,
                })
                .is_err()
            {
                break;
            }
            continue;
        }
        trace.record(TraceEventKind::Dispatch {
            core: seat.core,
            stage: seat.stage,
            task: item.task,
            attempt: item.attempt,
        });
        let stalled = fault == Some(FaultKind::StageStall);
        if stalled {
            // The injected stall counts into the traced service time
            // (the slice shows the wedged stage) but not into `busy`.
            std::thread::sleep(faults.stall_duration());
        }
        let task = graph.task(TaskId(item.task));
        // Versioned runs: open the attempt's memory version before the
        // body runs. A squashed predecessor attempt was rolled back at
        // the frontier before this re-dispatch, so `begin` never sees a
        // live duplicate.
        let version = VersionId(u64::from(item.task));
        if let Some(m) = mem {
            m.begin(version);
            trace.record(TraceEventKind::VersionOpen {
                stage: seat.stage,
                task: item.task,
                attempt: item.attempt,
            });
        }
        let ctx = TaskCtx {
            stage: task.stage,
            iter: task.iter,
            attempt: item.attempt,
            commits: view,
            mem,
        };
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| body.run(TaskId(item.task), &ctx)));
        busy += started.elapsed();
        tasks += 1;
        if let (Some(m), Ok(_)) = (mem, &result) {
            // What the attempt actually did to its version, recorded
            // from the worker's side while the version is still open
            // (the frontier decides later whether it commits).
            if let Some(probe) = m.probe(version) {
                trace.record(TraceEventKind::VersionReads {
                    stage: seat.stage,
                    task: item.task,
                    attempt: item.attempt,
                    reads: probe.reads,
                    forwards: probe.forwards,
                });
            }
        }
        let done = match result {
            Ok(mut output) => {
                if fault == Some(FaultKind::CorruptOutput) {
                    corrupt_output(&mut output);
                }
                WorkerDone {
                    task: item.task,
                    attempt: item.attempt,
                    output,
                    panicked: false,
                    stalled,
                }
            }
            // A real body panic no longer kills the run: the worker
            // survives and the commit unit squashes and replays the
            // attempt under the task's retry budget.
            Err(_) => WorkerDone {
                task: item.task,
                attempt: item.attempt,
                output: TaskOutput::empty(),
                panicked: true,
                stalled,
            },
        };
        trace.record(TraceEventKind::Complete {
            core: seat.core,
            stage: seat.stage,
            task: item.task,
            attempt: item.attempt,
            panicked: done.panicked,
            stalled,
        });
        if done_tx.send(done).is_err() {
            break;
        }
    }
    (
        WorkerStat {
            core: seat.core,
            stage: crate::task::StageId(seat.stage),
            busy,
            tasks,
        },
        trace.into_events(),
    )
}
