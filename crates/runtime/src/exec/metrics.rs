//! What a native run reports: the committed output stream, speculation
//! counters that line up one-for-one with the simulator's, and real
//! wall-clock / per-worker timing.

use super::faults::RecoveryCounts;
use super::governor::GovernorStats;
use super::trace::Timeline;
use crate::task::StageId;
use seqpar_specmem::MemStats;
use std::time::Duration;

/// Timing for one worker thread (one core of the plan).
#[derive(Clone, Debug)]
pub struct WorkerStat {
    /// The plan core this worker modelled.
    pub core: usize,
    /// The stage it served.
    pub stage: StageId,
    /// Total time spent inside task bodies.
    pub busy: Duration,
    /// Executions performed (including squashed attempts).
    pub tasks: u64,
}

/// The result of one [`NativeExecutor::run`](super::NativeExecutor::run).
///
/// `violations` and `speculations_survived` are defined identically to
/// [`SimResult`](crate::SimResult)'s fields — one count per speculated
/// dependence, charged once per task — so differential tests can
/// compare them directly.
///
/// Every counter except `wall`, `workers`, and `watchdog_trips` is
/// decided at the commit frontier from `(task, attempt)` and the
/// [`FaultPlan`](super::FaultPlan) alone, so two runs with the same
/// config report identical values — even under injected chaos, and even
/// when a retry budget forced the sequential fallback. `watchdog_trips`
/// is the one genuinely timing-dependent recovery counter: whether a
/// stall outlasts the deadline depends on real elapsed time.
#[derive(Clone, Debug)]
pub struct NativeReport {
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// The committed output stream, in task (= sequential program)
    /// order.
    pub output: Vec<u8>,
    /// Tasks committed (equals the graph size on success).
    pub tasks_committed: u64,
    /// Body executions, including squashed attempts.
    pub attempts: u64,
    /// Attempts discarded by misspeculation rollback.
    pub squashes: u64,
    /// Violated speculated dependences (squash causes), matching
    /// `SimResult::violations`.
    pub violations: u64,
    /// Speculated dependences that did not manifest, matching
    /// `SimResult::speculations_survived`.
    pub speculations_survived: u64,
    /// Deterministic work units metered by committed attempts.
    pub work: u64,
    /// Fault-recovery tallies (panics recovered, corruptions caught,
    /// spurious squashes, stalls absorbed, budget-charged retries,
    /// fallback-committed tasks). All zero on a fault-free run.
    pub recovery: RecoveryCounts,
    /// Times the heartbeat watchdog fired because no completion arrived
    /// within [`ExecConfig::watchdog_deadline`](super::ExecConfig::watchdog_deadline)
    /// (each trip activates the sequential fallback).
    pub watchdog_trips: u64,
    /// Whether the run finished under the in-order sequential fallback
    /// (retry budget exhausted or watchdog tripped) rather than fully
    /// pipelined. The output is byte-identical either way.
    pub fallback_activated: bool,
    /// Per-worker timing, one entry per plan core.
    pub workers: Vec<WorkerStat>,
    /// The structured execution timeline, present when the run was
    /// traced ([`ExecConfig::trace`](super::ExecConfig::trace)); `None`
    /// otherwise, and for empty graphs. See `OBSERVABILITY.md` for how
    /// to read and export it.
    pub timeline: Option<Timeline>,
    /// A snapshot of the concurrent versioned memory's counters
    /// (reads, eager forwards, silent stores suppressed, conflict
    /// squashes, commits, rollbacks) when the run went through
    /// [`NativeExecutor::run_versioned`](super::NativeExecutor::run_versioned);
    /// `None` for trace-driven (non-versioned) runs. Unlike the
    /// frontier-decided counters above, conflict counts here are
    /// genuinely timing-dependent — they record real races detected at
    /// access granularity, while the committed output stays
    /// byte-identical.
    pub mem: Option<MemStats>,
    /// The speculation governor's decision counters (window moves,
    /// degraded periods, backoffs) when the run was governed
    /// ([`ExecConfig::governor`](super::ExecConfig::governor)); `None`
    /// when the governor was off. Like conflict counts, these are
    /// timing-dependent — they react to real races.
    pub governor: Option<GovernorStats>,
}

impl NativeReport {
    /// An all-zero report over `wall` — what running an empty task
    /// graph produces (no workers spawned, nothing attempted, nothing
    /// committed). Public so doc examples and downstream tests can
    /// exercise the zero-task / zero-worker edges of the derived
    /// metrics without running an executor.
    pub fn empty(wall: Duration) -> Self {
        Self {
            wall,
            output: Vec::new(),
            tasks_committed: 0,
            attempts: 0,
            squashes: 0,
            violations: 0,
            speculations_survived: 0,
            work: 0,
            recovery: RecoveryCounts::default(),
            watchdog_trips: 0,
            fallback_activated: false,
            workers: Vec::new(),
            timeline: None,
            mem: None,
            governor: None,
        }
    }

    /// Worker threads used.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Fraction of worker wall time spent inside task bodies.
    ///
    /// Edge cases are defined, not NaN: a report with **no workers**
    /// (an empty graph never spawns any) or a **zero wall clock**
    /// (theoretical, but a sub-resolution run could produce one)
    /// reports `0.0` utilization rather than dividing by zero.
    ///
    /// ```
    /// use seqpar_runtime::NativeReport;
    /// use std::time::Duration;
    ///
    /// let idle = NativeReport::empty(Duration::from_millis(5));
    /// assert_eq!(idle.threads(), 0);
    /// assert_eq!(idle.utilization(), 0.0); // no workers: defined, not NaN
    /// ```
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        busy / (self.wall.as_secs_f64() * self.workers.len() as f64)
    }

    /// Wall-clock speedup against a measured sequential run.
    ///
    /// A zero-wall report (the division-by-zero edge) reports `0.0` —
    /// "no speedup measured" — rather than infinity.
    pub fn speedup_vs(&self, sequential: Duration) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        sequential.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// Fraction of attempts that were squashed.
    ///
    /// A report with **zero attempts** (an empty graph commits nothing
    /// and attempts nothing) reports a misspeculation rate of `0.0`
    /// rather than dividing by zero:
    ///
    /// ```
    /// use seqpar_runtime::NativeReport;
    /// use std::time::Duration;
    ///
    /// let idle = NativeReport::empty(Duration::ZERO);
    /// assert_eq!(idle.attempts, 0);
    /// assert_eq!(idle.misspec_rate(), 0.0); // 0 tasks: defined, not NaN
    /// ```
    pub fn misspec_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.squashes as f64 / self.attempts as f64
    }
}
