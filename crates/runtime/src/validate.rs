//! Independent schedule validation.
//!
//! [`check_schedule`] re-verifies a traced simulation against every
//! constraint the machine model imposes, using none of the simulator's
//! own bookkeeping — a second implementation that keeps the scheduler
//! honest (and gives downstream users a way to validate hand-written
//! schedules).

use crate::diag::{Diagnostic, PlanShape};
use crate::plan::{ExecutionPlan, StageAssignment};
use crate::sim::{SimConfig, SimError, TaskPlacement};
use crate::task::TaskGraph;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A constraint violated by a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// The plan's stage count does not match the graph's, so placements
    /// cannot even be checked against stage pools.
    PlanMismatch {
        /// Stages in the plan.
        plan: u8,
        /// Stages in the graph.
        graph: u8,
    },
    /// A parallel or round-robin stage has an empty core pool, so no
    /// placement in that stage can be legal.
    EmptyStagePool {
        /// The stage with no cores.
        stage: u8,
    },
    /// A placement references a task the graph does not contain.
    UnknownTask {
        /// The out-of-range task index.
        task: u32,
    },
    /// Not every task was placed exactly once.
    WrongTaskCount {
        /// Placements provided.
        got: usize,
        /// Tasks in the graph.
        expected: usize,
    },
    /// A task ran on a core its stage may not use.
    CoreOutsidePool {
        /// Offending task index.
        task: u32,
    },
    /// A task's span does not match its cost.
    WrongDuration {
        /// Offending task index.
        task: u32,
    },
    /// Two tasks overlapped on one core.
    CoreOverlap {
        /// The core.
        core: usize,
    },
    /// A dependence (or violated speculation) was not respected.
    DependenceViolated {
        /// Consumer task index.
        task: u32,
        /// Producer task index.
        dep: u32,
    },
    /// A serial stage executed out of iteration order.
    SerialOrderBroken {
        /// The stage.
        stage: u8,
    },
    /// A producer overran its output queue's capacity.
    QueueOverrun {
        /// Producer stage.
        producer: u8,
        /// Consumer stage.
        consumer: u8,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::PlanMismatch { plan, graph } => {
                write!(f, "plan has {plan} stages but the graph has {graph}")
            }
            ScheduleViolation::EmptyStagePool { stage } => {
                write!(f, "stage {stage} has an empty core pool")
            }
            ScheduleViolation::UnknownTask { task } => {
                write!(f, "placement references unknown task {task}")
            }
            ScheduleViolation::WrongTaskCount { got, expected } => {
                write!(
                    f,
                    "schedule places {got} tasks but the graph has {expected}"
                )
            }
            ScheduleViolation::CoreOutsidePool { task } => {
                write!(f, "task {task} ran outside its stage's core pool")
            }
            ScheduleViolation::WrongDuration { task } => {
                write!(f, "task {task} span does not equal its cost")
            }
            ScheduleViolation::CoreOverlap { core } => {
                write!(f, "core {core} ran two tasks at once")
            }
            ScheduleViolation::DependenceViolated { task, dep } => {
                write!(f, "task {task} started before dependence {dep} arrived")
            }
            ScheduleViolation::SerialOrderBroken { stage } => {
                write!(f, "serial stage {stage} executed out of iteration order")
            }
            ScheduleViolation::QueueOverrun { producer, consumer } => {
                write!(
                    f,
                    "channel {producer}->{consumer} exceeded its queue capacity"
                )
            }
        }
    }
}

impl Error for ScheduleViolation {}

impl ScheduleViolation {
    /// The stable diagnostic code for this violation.
    pub fn code(&self) -> &'static str {
        match self {
            ScheduleViolation::PlanMismatch { .. } => "SPR010",
            ScheduleViolation::EmptyStagePool { .. } => "SPR011",
            ScheduleViolation::UnknownTask { .. } => "SPR012",
            ScheduleViolation::WrongTaskCount { .. } => "SPR013",
            ScheduleViolation::CoreOutsidePool { .. } => "SPR014",
            ScheduleViolation::WrongDuration { .. } => "SPR015",
            ScheduleViolation::CoreOverlap { .. } => "SPR016",
            ScheduleViolation::DependenceViolated { .. } => "SPR017",
            ScheduleViolation::SerialOrderBroken { .. } => "SPR018",
            ScheduleViolation::QueueOverrun { .. } => "SPR019",
        }
    }

    /// This violation as a deny-level [`Diagnostic`] (the shared type
    /// the static lint also renders with).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::deny(self.code(), self.to_string())
    }
}

/// Checks `placements` against every machine constraint; returns all
/// violations found (empty means the schedule is valid).
pub fn check_schedule(
    graph: &TaskGraph,
    plan: &ExecutionPlan,
    config: &SimConfig,
    placements: &[TaskPlacement],
) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();
    // Shape first (shared with the simulator, the native executor, and
    // the static lint): placements cannot be checked against stage
    // pools the plan does not coherently define.
    match PlanShape::of(plan).check_against(graph.stage_count()) {
        Ok(()) => {}
        Err(SimError::EmptyStagePool { stage }) => {
            violations.push(ScheduleViolation::EmptyStagePool { stage });
            return violations;
        }
        Err(_) => {
            violations.push(ScheduleViolation::PlanMismatch {
                plan: plan.stage_count(),
                graph: graph.stage_count(),
            });
            return violations;
        }
    }
    if placements.len() != graph.len() {
        violations.push(ScheduleViolation::WrongTaskCount {
            got: placements.len(),
            expected: graph.len(),
        });
        return violations;
    }
    let mut slots: Vec<Option<&TaskPlacement>> = vec![None; graph.len()];
    for p in placements {
        match slots.get_mut(p.task.0 as usize) {
            Some(slot) => *slot = Some(p),
            None => {
                violations.push(ScheduleViolation::UnknownTask { task: p.task.0 });
                return violations;
            }
        }
    }
    // Resolving the options here (rather than indexing under an
    // `expect` later) keeps the checker panic-free on any input.
    let by_task: Vec<&TaskPlacement> = match slots.into_iter().collect() {
        Some(v) => v,
        None => {
            violations.push(ScheduleViolation::WrongTaskCount {
                got: placements.len(),
                expected: graph.len(),
            });
            return violations;
        }
    };
    let place = |i: u32| by_task[i as usize];

    // Per-task: duration, pool membership, dependences.
    for (idx, task) in graph.tasks().iter().enumerate() {
        let p = place(idx as u32);
        // `checked_sub`: a placement with end < start is malformed
        // input, not a reason to underflow-panic.
        if p.end.checked_sub(p.start) != Some(task.cost) {
            violations.push(ScheduleViolation::WrongDuration { task: idx as u32 });
        }
        let pool = plan.stage(task.stage.0).cores();
        if !pool.contains(&p.core) {
            violations.push(ScheduleViolation::CoreOutsidePool { task: idx as u32 });
        }
        let mut deps: Vec<u32> = graph.deps(task).iter().map(|d| d.0).collect();
        deps.extend(
            graph
                .spec_deps(task)
                .iter()
                .filter(|s| s.violated)
                .map(|s| s.on.0),
        );
        for d in deps {
            let dp = place(d);
            let lat = if dp.core == p.core {
                0
            } else {
                config.comm_latency
            };
            if p.start < dp.end + lat {
                violations.push(ScheduleViolation::DependenceViolated {
                    task: idx as u32,
                    dep: d,
                });
            }
        }
    }

    // Per-core: no overlap.
    let mut by_core: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
    for p in placements {
        by_core.entry(p.core).or_default().push((p.start, p.end));
    }
    for (core, spans) in by_core.iter_mut() {
        spans.sort_unstable();
        if spans.windows(2).any(|w| w[0].1 > w[1].0) {
            violations.push(ScheduleViolation::CoreOverlap { core: *core });
        }
    }

    // Serial stages run in iteration order.
    for stage in 0..graph.stage_count() {
        if !matches!(plan.stage(stage), StageAssignment::Serial { .. }) {
            continue;
        }
        let mut last_end = 0u64;
        let mut ordered = true;
        for (idx, task) in graph.tasks().iter().enumerate() {
            if task.stage.0 != stage {
                continue;
            }
            let p = place(idx as u32);
            if p.start < last_end {
                ordered = false;
            }
            last_end = last_end.max(p.end);
        }
        if !ordered {
            violations.push(ScheduleViolation::SerialOrderBroken { stage });
        }
    }

    // Queue capacity: producer iteration i must not start before the
    // consumer of iteration i - capacity started (its slot frees then).
    let mut start_of: HashMap<(u8, u64), u64> = HashMap::new();
    for (idx, task) in graph.tasks().iter().enumerate() {
        start_of.insert((task.stage.0, task.iter), place(idx as u32).start);
    }
    for (s, t) in graph.channels() {
        let k = config.queue_capacity as u64;
        let mut overrun = false;
        for task in graph.tasks() {
            if task.stage != s || task.iter < k {
                continue;
            }
            if let (Some(&p_start), Some(&c_start)) = (
                start_of.get(&(s.0, task.iter)),
                start_of.get(&(t.0, task.iter - k)),
            ) {
                if p_start < c_start {
                    overrun = true;
                }
            }
        }
        if overrun {
            violations.push(ScheduleViolation::QueueOverrun {
                producer: s.0,
                consumer: t.0,
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::task::{SpecDep, TaskId};

    fn graph() -> TaskGraph {
        let mut g = TaskGraph::new(3);
        let mut prev_a: Option<TaskId> = None;
        let mut prev_c: Option<TaskId> = None;
        for i in 0..40 {
            let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
            let ta = g.add_task(0, i, 3, &deps_a, &[]);
            let spec: Vec<SpecDep> = prev_a
                .map(|_| SpecDep {
                    on: ta,
                    violated: false,
                })
                .into_iter()
                .collect();
            let _ = spec;
            let tb = g.add_task(1, i, 25 + (i % 7) * 4, &[ta], &[]);
            let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
            prev_c = Some(g.add_task(2, i, 2, &deps_c, &[]));
            prev_a = Some(ta);
        }
        g
    }

    #[test]
    fn simulator_schedules_pass_the_independent_checker() {
        let g = graph();
        for cores in [2usize, 4, 8] {
            for (lat, cap) in [(0u64, 32usize), (25, 4), (100, 1)] {
                let cfg = SimConfig {
                    cores,
                    comm_latency: lat,
                    queue_capacity: cap,
                    ..SimConfig::default()
                };
                let plan = ExecutionPlan::three_phase(cores);
                let (_, placements) = Simulator::new(cfg)
                    .run_traced(&g, &plan)
                    .expect("valid plan");
                let violations = check_schedule(&g, &plan, &cfg, &placements);
                assert!(
                    violations.is_empty(),
                    "cores={cores} lat={lat} cap={cap}: {violations:?}"
                );
            }
        }
    }

    #[test]
    fn checker_catches_a_tampered_schedule() {
        let g = graph();
        let cfg = SimConfig {
            cores: 4,
            comm_latency: 10,
            ..SimConfig::default()
        };
        let plan = ExecutionPlan::three_phase(4);
        let (_, mut placements) = Simulator::new(cfg).run_traced(&g, &plan).expect("valid");
        // Move a phase-B task to time zero: dependences break.
        let victim = placements
            .iter()
            .position(|p| g.task(p.task).stage.0 == 1 && p.start > 0)
            .expect("a late B task exists");
        let dur = placements[victim].end - placements[victim].start;
        placements[victim].start = 0;
        placements[victim].end = dur;
        let violations = check_schedule(&g, &plan, &cfg, &placements);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::DependenceViolated { .. })));
    }

    #[test]
    fn checker_catches_wrong_core_pools() {
        let g = graph();
        let cfg = SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        };
        let plan = ExecutionPlan::three_phase(4);
        let (_, mut placements) = Simulator::new(cfg).run_traced(&g, &plan).expect("valid");
        // Put a phase-A task on a phase-B core.
        let victim = placements
            .iter()
            .position(|p| g.task(p.task).stage.0 == 0)
            .expect("a phase-A task exists");
        placements[victim].core = 2;
        let violations = check_schedule(&g, &plan, &cfg, &placements);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::CoreOutsidePool { .. })));
    }

    #[test]
    fn checker_catches_missing_tasks() {
        let g = graph();
        let cfg = SimConfig {
            cores: 4,
            ..SimConfig::default()
        };
        let plan = ExecutionPlan::three_phase(4);
        let (_, mut placements) = Simulator::new(cfg).run_traced(&g, &plan).expect("valid");
        placements.pop();
        let violations = check_schedule(&g, &plan, &cfg, &placements);
        assert!(matches!(
            violations[0],
            ScheduleViolation::WrongTaskCount { .. }
        ));
    }

    #[test]
    fn violation_messages_are_prose() {
        let v = ScheduleViolation::CoreOverlap { core: 3 };
        assert!(v.to_string().contains("core 3"));
    }

    #[test]
    fn violations_lower_to_shared_diagnostics() {
        let v = ScheduleViolation::PlanMismatch { plan: 1, graph: 3 };
        let d = v.to_diagnostic();
        assert_eq!(d.code(), "SPR010");
        assert!(d.is_deny());
        assert!(d.render().starts_with("error[SPR010]:"));
        // Every variant has a distinct stable code.
        let codes = [
            ScheduleViolation::PlanMismatch { plan: 0, graph: 0 }.code(),
            ScheduleViolation::EmptyStagePool { stage: 0 }.code(),
            ScheduleViolation::UnknownTask { task: 0 }.code(),
            ScheduleViolation::WrongTaskCount {
                got: 0,
                expected: 0,
            }
            .code(),
            ScheduleViolation::CoreOutsidePool { task: 0 }.code(),
            ScheduleViolation::WrongDuration { task: 0 }.code(),
            ScheduleViolation::CoreOverlap { core: 0 }.code(),
            ScheduleViolation::DependenceViolated { task: 0, dep: 0 }.code(),
            ScheduleViolation::SerialOrderBroken { stage: 0 }.code(),
            ScheduleViolation::QueueOverrun {
                producer: 0,
                consumer: 0,
            }
            .code(),
        ];
        let unique: std::collections::BTreeSet<_> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
    }

    #[test]
    fn checker_rejects_empty_stage_pools_before_placement_checks() {
        let g = graph();
        let cfg = SimConfig::with_cores(4);
        let plan = ExecutionPlan::new(vec![
            StageAssignment::serial(0),
            StageAssignment::Parallel { cores: vec![] },
            StageAssignment::serial(1),
        ]);
        let violations = check_schedule(&g, &plan, &cfg, &[]);
        assert_eq!(
            violations,
            vec![ScheduleViolation::EmptyStagePool { stage: 1 }]
        );
    }

    #[test]
    fn checker_rejects_plan_graph_stage_mismatch_without_panicking() {
        let g = graph(); // 3 stages
        let cfg = SimConfig::with_cores(4);
        let plan = crate::plan::ExecutionPlan::tls(4); // 1 stage
        let violations = check_schedule(&g, &plan, &cfg, &[]);
        assert_eq!(
            violations,
            vec![ScheduleViolation::PlanMismatch { plan: 1, graph: 3 }]
        );
    }

    #[test]
    fn checker_reports_out_of_range_and_duplicate_tasks_without_panicking() {
        let g = graph();
        let cfg = SimConfig::with_cores(4);
        let plan = ExecutionPlan::three_phase(4);
        let (_, mut placements) = Simulator::new(cfg).run_traced(&g, &plan).expect("valid");
        // Point one placement at a task beyond the graph.
        placements[0].task = TaskId(10_000);
        let violations = check_schedule(&g, &plan, &cfg, &placements);
        assert_eq!(
            violations,
            vec![ScheduleViolation::UnknownTask { task: 10_000 }]
        );
        // Duplicate an existing task instead: some slot is left empty.
        placements[0].task = placements[1].task;
        let violations = check_schedule(&g, &plan, &cfg, &placements);
        assert!(matches!(
            violations[0],
            ScheduleViolation::WrongTaskCount { .. }
        ));
    }

    #[test]
    fn checker_flags_inverted_spans_instead_of_underflowing() {
        let g = graph();
        let cfg = SimConfig::with_cores(4);
        let plan = ExecutionPlan::three_phase(4);
        let (_, mut placements) = Simulator::new(cfg).run_traced(&g, &plan).expect("valid");
        // end < start: must report WrongDuration, not panic on u64
        // subtraction.
        let victim = placements
            .iter()
            .position(|p| p.start > 0)
            .expect("a late task exists");
        let (s, e) = (placements[victim].start, placements[victim].end);
        placements[victim].start = e;
        placements[victim].end = s;
        let violations = check_schedule(&g, &plan, &cfg, &placements);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::WrongDuration { .. })));
    }
}
