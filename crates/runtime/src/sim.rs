//! The performance simulator.

use crate::exec::governor::{Governor, GovernorEvent};
use crate::exec::{
    supervise_task, FaultPlan, GovernorConfig, GovernorStats, RecoveryCounts, TimeUnit, Timeline,
    TraceEvent, TraceEventKind,
};
use crate::plan::{ExecutionPlan, StageAssignment};
use crate::task::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Machine model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores.
    pub cores: usize,
    /// Cycles to move a value between cores through a queue.
    pub comm_latency: u64,
    /// Entries per core-to-core queue (the paper models 32).
    pub queue_capacity: usize,
    /// Number of queues available (the paper models 256).
    pub num_queues: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            comm_latency: 50,
            queue_capacity: 32,
            num_queues: 256,
        }
    }
}

impl SimConfig {
    /// A config with `cores` cores and default queue parameters.
    pub fn with_cores(cores: usize) -> Self {
        Self {
            cores,
            ..Self::default()
        }
    }
}

/// Why a simulation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The plan references more cores than the machine has.
    NotEnoughCores {
        /// Cores the plan needs.
        required: usize,
        /// Cores the machine has.
        available: usize,
    },
    /// The plan's stage count does not match the task graph's.
    StageMismatch {
        /// Stages in the plan.
        plan: u8,
        /// Stages in the graph.
        graph: u8,
    },
    /// The dependence structure needs more queues than the machine has.
    TooManyChannels {
        /// Queues required.
        required: usize,
        /// Queues available.
        available: usize,
    },
    /// A parallel or round-robin stage has an empty core pool (possible
    /// via deserialization; the constructors reject it).
    EmptyStagePool {
        /// The stage with no cores.
        stage: u8,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotEnoughCores {
                required,
                available,
            } => {
                write!(
                    f,
                    "plan requires {required} cores but machine has {available}"
                )
            }
            SimError::StageMismatch { plan, graph } => {
                write!(f, "plan has {plan} stages but task graph has {graph}")
            }
            SimError::TooManyChannels {
                required,
                available,
            } => {
                write!(
                    f,
                    "dependences require {required} queues but machine has {available}"
                )
            }
            SimError::EmptyStagePool { stage } => {
                write!(f, "stage {stage} has an empty core pool")
            }
        }
    }
}

impl Error for SimError {}

/// Occupancy statistics for one stage-to-stage channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStat {
    /// Producer stage.
    pub producer: u8,
    /// Consumer stage.
    pub consumer: u8,
    /// Maximum entries simultaneously in flight (enqueued at producer
    /// finish, dequeued at consumer start).
    pub max_occupancy: usize,
}

/// Where and when one task executed (from [`Simulator::run_traced`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPlacement {
    /// The task.
    pub task: crate::task::TaskId,
    /// The core it ran on.
    pub core: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// The outcome of one simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Parallel execution time in cycles.
    pub makespan: u64,
    /// Single-threaded execution time (sum of task costs).
    pub serial_cycles: u64,
    /// Busy cycles per core.
    pub core_busy: Vec<u64>,
    /// Number of tasks executed.
    pub tasks_executed: usize,
    /// Cycles tasks were delayed waiting for queue space (backpressure).
    pub queue_stall_cycles: u64,
    /// Speculated dependences that manifested and serialized execution.
    pub violations: u64,
    /// Speculated dependences that were successfully broken.
    pub speculations_survived: u64,
    /// Fault-recovery tallies when simulated under a
    /// [`FaultPlan`] (see
    /// [`Simulator::run_with_faults`]); all zero for fault-free runs.
    /// Defined identically to
    /// [`NativeReport::recovery`](crate::NativeReport::recovery) so
    /// differential chaos tests can compare them directly.
    pub recovery: RecoveryCounts,
    /// Per-channel peak queue occupancy.
    pub channel_stats: Vec<ChannelStat>,
}

impl SimResult {
    /// Speedup of the parallel execution over single-threaded execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.makespan as f64
        }
    }

    /// Average fraction of core time spent executing tasks.
    pub fn utilization(&self) -> f64 {
        let cores = self.core_busy.len().max(1) as u64;
        if self.makespan == 0 {
            0.0
        } else {
            let busy: u64 = self.core_busy.iter().sum();
            busy as f64 / (self.makespan * cores) as f64
        }
    }
}

/// The list-scheduling performance simulator.
///
/// Tasks are scheduled in `(iter, stage)` order. A task becomes ready when
/// its synchronized dependences — plus any *violated* speculated
/// dependences — have finished (cross-core edges pay
/// [`SimConfig::comm_latency`]) and its output queues have space; it then
/// runs on its stage's core (serial stages) or on the least-loaded core of
/// its stage's pool (parallel stages, matching the dynamic assignment of
/// paper §3.2).
#[derive(Clone, Debug, Default)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given machine model.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// The machine model in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates `graph` under `plan`.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the validation failures.
    pub fn run(&self, graph: &TaskGraph, plan: &ExecutionPlan) -> Result<SimResult, SimError> {
        self.run_traced(graph, plan).map(|(r, _)| r)
    }

    /// Like [`Simulator::run`], but also returns each task's placement —
    /// which core ran it and when — for schedule visualization.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the validation failures.
    pub fn run_traced(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
    ) -> Result<(SimResult, Vec<TaskPlacement>), SimError> {
        let shape = crate::diag::PlanShape::of(plan);
        shape.check_against(graph.stage_count())?;
        if shape.cores_required > self.config.cores {
            return Err(SimError::NotEnoughCores {
                required: shape.cores_required,
                available: self.config.cores,
            });
        }
        // One queue per (producer core, consumer stage) pair is the upper
        // bound the hardware must provide; we conservatively count
        // channel-pairs × max pool size.
        let channels = graph.channels();
        let queues_needed: usize = channels
            .iter()
            .map(|(s, t)| plan.stage(s.0).cores().len() * plan.stage(t.0).cores().len())
            .sum();
        if queues_needed > self.config.num_queues {
            return Err(SimError::TooManyChannels {
                required: queues_needed,
                available: self.config.num_queues,
            });
        }
        // consumers_of[s] = stages fed by stage s (for backpressure).
        let mut consumers_of: HashMap<u8, Vec<u8>> = HashMap::new();
        for (s, t) in &channels {
            consumers_of.entry(s.0).or_default().push(t.0);
        }

        let n = graph.len();
        let mut finish = vec![0u64; n];
        let mut core_of = vec![0usize; n];
        let mut start_by_stage_iter: HashMap<(u8, u64), u64> = HashMap::new();
        let mut finish_by_stage_iter: HashMap<(u8, u64), u64> = HashMap::new();
        let mut core_avail = vec![0u64; self.config.cores];
        let mut core_busy = vec![0u64; self.config.cores];
        let mut queue_stall = 0u64;
        let mut violations = 0u64;
        let mut survived = 0u64;
        let mut placements: Vec<TaskPlacement> = Vec::with_capacity(n);

        for (idx, task) in graph.tasks().iter().enumerate() {
            // Effective dependences: synchronized + violated speculative.
            let mut dep_ids: Vec<u32> = graph.deps(task).iter().map(|d| d.0).collect();
            for s in graph.spec_deps(task) {
                if s.violated {
                    violations += 1;
                    dep_ids.push(s.on.0);
                } else {
                    survived += 1;
                }
            }
            // Pick the core.
            let core = match plan.stage(task.stage.0) {
                StageAssignment::Serial { core } => *core,
                StageAssignment::Parallel { cores } => {
                    // Least work enqueued = earliest available. The
                    // empty-pool case was rejected up front
                    // (`SimError::EmptyStagePool`), so the fallback arm
                    // is unreachable rather than a panic site.
                    cores
                        .iter()
                        .min_by_key(|c| core_avail[**c])
                        .copied()
                        .unwrap_or(0)
                }
                StageAssignment::RoundRobin { cores } => cores[(task.iter as usize) % cores.len()],
            };
            let dep_ready = dep_ids
                .iter()
                .map(|&d| {
                    let lat = if core_of[d as usize] == core {
                        0
                    } else {
                        self.config.comm_latency
                    };
                    finish[d as usize] + lat
                })
                .max()
                .unwrap_or(0);
            // Backpressure: the producer of iteration i cannot run ahead
            // of its consumers by more than the queue capacity.
            let mut queue_ready = 0u64;
            if let Some(consumers) = consumers_of.get(&task.stage.0) {
                let k = self.config.queue_capacity as u64;
                if task.iter >= k {
                    for t in consumers {
                        if let Some(&s) = start_by_stage_iter.get(&(*t, task.iter - k)) {
                            queue_ready = queue_ready.max(s);
                        }
                    }
                }
            }
            let unconstrained = dep_ready.max(core_avail[core]);
            if queue_ready > unconstrained {
                queue_stall += queue_ready - unconstrained;
            }
            let start = unconstrained.max(queue_ready);
            let end = start + task.cost;
            finish[idx] = end;
            core_of[idx] = core;
            core_avail[core] = end;
            core_busy[core] += task.cost;
            start_by_stage_iter.insert((task.stage.0, task.iter), start);
            finish_by_stage_iter.insert((task.stage.0, task.iter), end);
            placements.push(TaskPlacement {
                task: crate::task::TaskId(idx as u32),
                core,
                start,
                end,
            });
        }

        // Post-hoc channel occupancy: an entry lives from the producer's
        // finish to the consumer's start.
        let mut channel_stats = Vec::with_capacity(channels.len());
        for (s, t) in &channels {
            let mut events: Vec<(u64, i32)> = Vec::new();
            for ((stage, iter), &fin) in &finish_by_stage_iter {
                if *stage == s.0 {
                    if let Some(&st) = start_by_stage_iter.get(&(t.0, *iter)) {
                        events.push((fin, 1));
                        events.push((st, -1));
                    }
                }
            }
            // Dequeues before enqueues at equal timestamps.
            events.sort_unstable_by_key(|(time, delta)| (*time, *delta));
            let mut occupancy = 0i32;
            let mut max_occupancy = 0i32;
            for (_, delta) in events {
                occupancy += delta;
                max_occupancy = max_occupancy.max(occupancy);
            }
            channel_stats.push(ChannelStat {
                producer: s.0,
                consumer: t.0,
                max_occupancy: max_occupancy.max(0) as usize,
            });
        }

        Ok((
            SimResult {
                makespan: finish.iter().copied().max().unwrap_or(0),
                serial_cycles: graph.serial_cycles(),
                core_busy,
                tasks_executed: n,
                queue_stall_cycles: queue_stall,
                violations,
                speculations_survived: survived,
                recovery: RecoveryCounts::default(),
                channel_stats,
            },
            placements,
        ))
    }

    /// Like [`Simulator::run_traced`], but renders the simulated
    /// schedule in the native executor's trace-event schema: a
    /// [`Timeline`] with [`TimeUnit::Cycles`] timestamps, directly
    /// diffable against [`NativeReport::timeline`](crate::NativeReport::timeline)
    /// (the differential suite checks both agree on commit order).
    ///
    /// Each placement becomes a dispatch/complete pair on its core; the
    /// commit frontier advances in task order at the running maximum of
    /// finish cycles (the earliest cycle by which every earlier task
    /// has also finished — the in-order commit rule); tasks carrying
    /// speculated dependences get the same `SpecDecision` instants the
    /// native frontier emits. Queue push/pop events are absent: the
    /// simulator models queues analytically (backpressure delays
    /// starts), so there are no discrete queue transfers to record —
    /// [`Timeline::validate`] treats queue-event-free timelines as
    /// legal.
    ///
    /// The simulator serializes a *violated* speculation instead of
    /// replaying it, so its timeline shows one committing attempt per
    /// task (attempt 0) where the native timeline shows a squashed
    /// attempt 0 and a committing attempt 1; commit order — the
    /// sequential program order — is identical on both sides.
    ///
    /// The paper's model presumes versioned-memory hardware, so the
    /// simulated timeline also carries the substrate's event twins:
    /// a `VersionOpen` at each task's dispatch, a `VersionReads` at its
    /// completion (one tracked read per speculated dependence, the
    /// surviving ones counted as eager forwards), a `VersionConflict`
    /// at the frontier for every manifested dependence, and a
    /// `VersionCommit` at every commit — the same four instants
    /// [`NativeExecutor::run_versioned`](crate::NativeExecutor::run_versioned)
    /// records from real conflict detection.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the validation failures.
    pub fn run_timeline(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
    ) -> Result<(SimResult, Timeline), SimError> {
        let (result, timeline, _) = self.timeline_with(graph, plan, None)?;
        Ok((result, timeline))
    }

    /// Like [`Simulator::run_timeline`], but threads the simulated
    /// frontier through the same speculation-governor automaton the
    /// native executor runs, so trace consumers can diff the governor's
    /// decision sequence between the model and the machine.
    ///
    /// The governor sees the simulated schedule exactly as the native
    /// one sees the real schedule: each in-order commit feeds
    /// `on_commit` with the frontier's virtual clock (cycles), and each
    /// violated speculated dependence feeds `on_conflict` first. Its
    /// decisions surface as the same `GovernorThrottle` /
    /// `GovernorDegrade` / `GovernorReprobe` events the native frontier
    /// emits, stamped at the frontier cycle, and its counters come back
    /// as [`GovernorStats`]. `GovernorBackoff` never appears in the
    /// simulated twin: the analytic model serializes a violated
    /// speculation instead of replaying it, so there is no redispatch
    /// to delay — the one structural difference from the native trace.
    ///
    /// The timing model itself is *not* re-run under the governor's
    /// window decisions — the analytic schedule stays the plan's. The
    /// twin answers "what would the governor have decided given this
    /// commit cadence", which is what the differential suite needs to
    /// pin the native governor's determinism; re-timing the model under
    /// a dynamic window would make the twin's clock disagree with the
    /// placements it annotates.
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the validation failures.
    pub fn run_timeline_governed(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        governor: &GovernorConfig,
    ) -> Result<(SimResult, Timeline, GovernorStats), SimError> {
        let (result, timeline, stats) = self.timeline_with(graph, plan, Some(governor))?;
        Ok((result, timeline, stats.unwrap_or_default()))
    }

    fn timeline_with(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        governor: Option<&GovernorConfig>,
    ) -> Result<(SimResult, Timeline, Option<GovernorStats>), SimError> {
        let (result, placements) = self.run_traced(graph, plan)?;
        let mut exec_events: Vec<TraceEvent> = Vec::with_capacity(placements.len() * 2);
        for p in &placements {
            let task = graph.task(p.task);
            exec_events.push(TraceEvent {
                ts: p.start,
                kind: TraceEventKind::Dispatch {
                    core: p.core,
                    stage: task.stage.0,
                    task: p.task.0,
                    attempt: 0,
                },
            });
            exec_events.push(TraceEvent {
                ts: p.start,
                kind: TraceEventKind::VersionOpen {
                    stage: task.stage.0,
                    task: p.task.0,
                    attempt: 0,
                },
            });
            if !graph.spec_deps(task).is_empty() {
                // The modelled version tracks one read per speculated
                // dependence; the ones that did not manifest were
                // satisfied by eager forwarding.
                let survived = graph.spec_deps(task).iter().filter(|d| !d.violated).count() as u64;
                exec_events.push(TraceEvent {
                    ts: p.end,
                    kind: TraceEventKind::VersionReads {
                        stage: task.stage.0,
                        task: p.task.0,
                        attempt: 0,
                        reads: graph.spec_deps(task).len() as u64,
                        forwards: survived,
                    },
                });
            }
            exec_events.push(TraceEvent {
                ts: p.end,
                kind: TraceEventKind::Complete {
                    core: p.core,
                    stage: task.stage.0,
                    task: p.task.0,
                    attempt: 0,
                    panicked: false,
                    stalled: false,
                },
            });
        }
        // Frontier events, in task order: task i commits once it and
        // every earlier task have finished.
        let mut frontier_events: Vec<TraceEvent> = Vec::with_capacity(placements.len());
        let mut frontier = 0u64;
        let mut gov = governor.map(|cfg| Governor::new(*cfg));
        let push_gov = |events: &mut Vec<TraceEvent>, ts: u64, task: u32, decisions| {
            for d in decisions {
                let kind = match d {
                    GovernorEvent::Throttle { from, to } => {
                        TraceEventKind::GovernorThrottle { task, from, to }
                    }
                    GovernorEvent::Degrade { rate_permille } => TraceEventKind::GovernorDegrade {
                        task,
                        rate_permille,
                    },
                    GovernorEvent::Reprobe { window } => {
                        TraceEventKind::GovernorReprobe { task, window }
                    }
                };
                events.push(TraceEvent { ts, kind });
            }
        };
        for (idx, p) in placements.iter().enumerate() {
            frontier = frontier.max(p.end);
            let task = graph.task(TaskId(idx as u32));
            if !graph.spec_deps(task).is_empty() {
                let violated = graph.spec_deps(task).iter().filter(|d| d.violated).count() as u32;
                if let Some(g) = gov.as_mut() {
                    // The model serializes a violated speculation at the
                    // frontier, so every conflict reaches the governor
                    // as a frontier squash: immediate redispatch, no
                    // backoff — but the rate/window automaton still
                    // advances exactly as on the native side.
                    for dep in graph.spec_deps(task).iter().filter(|d| d.violated) {
                        let (_, evs) = g.on_conflict(idx as u32, 0, None, Some(dep.on.0), true);
                        push_gov(&mut frontier_events, frontier, idx as u32, evs);
                    }
                }
                frontier_events.push(TraceEvent {
                    ts: frontier,
                    kind: TraceEventKind::SpecDecision {
                        task: idx as u32,
                        violated,
                        survived: graph.spec_deps(task).len() as u32 - violated,
                    },
                });
                for dep in graph.spec_deps(task).iter().filter(|d| d.violated) {
                    frontier_events.push(TraceEvent {
                        ts: frontier,
                        kind: TraceEventKind::VersionConflict {
                            stage: task.stage.0,
                            task: idx as u32,
                            by: dep.on.0,
                        },
                    });
                }
            }
            frontier_events.push(TraceEvent {
                ts: frontier,
                kind: TraceEventKind::VersionCommit {
                    stage: task.stage.0,
                    task: idx as u32,
                    // The analytic model carries no write counts; the
                    // twin records the commit instant, not a volume.
                    writes: 0,
                },
            });
            frontier_events.push(TraceEvent {
                ts: frontier,
                kind: TraceEventKind::Commit {
                    task: idx as u32,
                    attempt: 0,
                },
            });
            if let Some(g) = gov.as_mut() {
                let evs = g.on_commit(frontier);
                push_gov(&mut frontier_events, frontier, idx as u32, evs);
            }
        }
        let timeline = Timeline::stitch(
            TimeUnit::Cycles,
            graph.stage_count(),
            vec![exec_events, frontier_events],
        );
        Ok((result, timeline, gov.map(|g| g.stats())))
    }

    /// Simulates `graph` under `plan` with `faults` injected — the
    /// simulated twin of the native executor's supervised recovery, so
    /// differential chaos tests can predict the native recovery
    /// counters exactly.
    ///
    /// Each task is passed through [`supervise_task`], the same pure
    /// commit-frontier decision procedure the native executor applies:
    /// its per-task attempt count inflates the task's simulated cost,
    /// its recovery tallies accumulate into [`SimResult::recovery`],
    /// and `violations`/`speculations_survived` are re-derived under
    /// fault semantics (a task whose first attempt panicked replays
    /// non-speculatively, so its violations go untallied — exactly as
    /// at the native frontier). When a task exhausts `retry_budget`,
    /// the remaining tasks are serialized into an in-order tail — the
    /// timing model of the native sequential fallback — and the
    /// speculation counters freeze, with `recovery.fallback_tasks`
    /// counting the tail.
    ///
    /// With an inert plan this reduces to [`Simulator::run`] (plus
    /// identical counters).
    ///
    /// # Errors
    ///
    /// See [`SimError`] for the validation failures.
    pub fn run_with_faults(
        &self,
        graph: &TaskGraph,
        plan: &ExecutionPlan,
        faults: &FaultPlan,
        retry_budget: u32,
    ) -> Result<SimResult, SimError> {
        if faults.is_inert() {
            return self.run(graph, plan);
        }
        // First pass: replay the supervision automaton per task, in
        // task (= commit) order, to find the per-task attempt counts,
        // the recovery tallies, and the fallback point if any.
        let n = graph.len();
        let mut recovery = RecoveryCounts::default();
        let mut violations = 0u64;
        let mut survived = 0u64;
        let mut attempts_total = 0usize;
        let mut attempts_of = vec![1u32; n];
        let mut fallback_from: Option<usize> = None;
        for (idx, task) in graph.tasks().iter().enumerate() {
            let violated = graph.spec_deps(task).iter().any(|d| d.violated);
            let sup = supervise_task(faults, retry_budget, idx as u32, violated);
            recovery.absorb(&sup.counts);
            attempts_of[idx] = sup.attempts;
            attempts_total += sup.attempts as usize;
            if sup.exhausted {
                // The native executor abandons dispatch here and
                // re-runs tasks idx..n inline, one attempt each.
                fallback_from = Some(idx);
                recovery.fallback_tasks = (n - idx) as u64;
                attempts_total += n - idx;
                break;
            }
            if sup.misspec_squashed {
                violations += graph.spec_deps(task).iter().filter(|d| d.violated).count() as u64;
            }
            survived += graph.spec_deps(task).iter().filter(|d| !d.violated).count() as u64;
        }
        // Second pass: rebuild the graph with fault-inflated costs (a
        // replayed task occupies its core once per attempt) and, after
        // the fallback point, a fully serialized in-order tail — then
        // reuse the ordinary timing model.
        let mut twin = TaskGraph::new(graph.stage_count());
        let mut prev: Option<TaskId> = None;
        for (idx, task) in graph.tasks().iter().enumerate() {
            let in_tail = fallback_from.is_some_and(|f| idx >= f);
            let id = if in_tail {
                let deps: Vec<TaskId> = prev.into_iter().collect();
                twin.add_task(task.stage.0, task.iter, task.cost, &deps, &[])
            } else {
                twin.add_task(
                    task.stage.0,
                    task.iter,
                    task.cost * attempts_of[idx] as u64,
                    graph.deps(task),
                    graph.spec_deps(task),
                )
            };
            prev = Some(id);
        }
        let (mut result, _) = self.run_traced(&twin, plan)?;
        result.serial_cycles = graph.serial_cycles();
        result.tasks_executed = attempts_total;
        result.violations = violations;
        result.speculations_survived = survived;
        result.recovery = recovery;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{SpecDep, TaskId};

    fn three_phase_graph(iters: u64, a: u64, b: u64, c: u64) -> TaskGraph {
        let mut g = TaskGraph::new(3);
        let mut prev_a: Option<TaskId> = None;
        let mut prev_c: Option<TaskId> = None;
        for i in 0..iters {
            let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
            let ta = g.add_task(0, i, a, &deps_a, &[]);
            let tb = g.add_task(1, i, b, &[ta], &[]);
            let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
            let tc = g.add_task(2, i, c, &deps_c, &[]);
            prev_a = Some(ta);
            prev_c = Some(tc);
        }
        g
    }

    #[test]
    fn serial_machine_gets_no_speedup() {
        let g = three_phase_graph(50, 10, 100, 10);
        let plan = ExecutionPlan::three_phase(1);
        let sim = Simulator::new(SimConfig {
            cores: 1,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let r = sim.run(&g, &plan).unwrap();
        assert_eq!(r.makespan, g.serial_cycles());
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_stage_scales_with_cores() {
        let g = three_phase_graph(200, 1, 100, 1);
        let sim8 = Simulator::new(SimConfig {
            cores: 8,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let sim16 = Simulator::new(SimConfig {
            cores: 16,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let r8 = sim8.run(&g, &ExecutionPlan::three_phase(8)).unwrap();
        let r16 = sim16.run(&g, &ExecutionPlan::three_phase(16)).unwrap();
        assert!(r8.speedup() > 4.0, "8-core speedup {}", r8.speedup());
        assert!(r16.speedup() > r8.speedup() * 1.5);
    }

    #[test]
    fn violated_speculation_serializes() {
        // TLS-style: every iteration speculates on the previous one.
        let make = |violated: bool| {
            let mut g = TaskGraph::new(1);
            let mut prev: Option<TaskId> = None;
            for i in 0..64 {
                let spec: Vec<SpecDep> = prev
                    .into_iter()
                    .map(|on| SpecDep { on, violated })
                    .collect();
                prev = Some(g.add_task(0, i, 100, &[], &spec));
            }
            g
        };
        let sim = Simulator::new(SimConfig {
            cores: 8,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let plan = ExecutionPlan::tls(8);
        let ok = sim.run(&make(false), &plan).unwrap();
        let bad = sim.run(&make(true), &plan).unwrap();
        assert!(
            ok.speedup() > 7.0,
            "clean speculation speedup {}",
            ok.speedup()
        );
        assert!(
            (bad.speedup() - 1.0).abs() < 0.05,
            "violated speedup {}",
            bad.speedup()
        );
        assert_eq!(bad.violations, 63);
        assert_eq!(ok.speculations_survived, 63);
    }

    #[test]
    fn queue_capacity_limits_runahead() {
        // Fast producer, slow consumer: the producer must stall once the
        // queue fills.
        let mut g = TaskGraph::new(2);
        for i in 0..100 {
            let p = g.add_task(0, i, 1, &[], &[]);
            g.add_task(1, i, 100, &[p], &[]);
        }
        let cfg = SimConfig {
            cores: 2,
            comm_latency: 0,
            queue_capacity: 4,
            ..SimConfig::default()
        };
        let sim = Simulator::new(cfg);
        let plan = ExecutionPlan::new(vec![StageAssignment::serial(0), StageAssignment::serial(1)]);
        let r = sim.run(&g, &plan).unwrap();
        assert!(r.queue_stall_cycles > 0);
        // With unbounded queues there would be no stall.
        let wide = SimConfig {
            queue_capacity: 1000,
            ..cfg
        };
        let r2 = Simulator::new(wide).run(&g, &plan).unwrap();
        assert_eq!(r2.queue_stall_cycles, 0);
        assert!(r2.makespan <= r.makespan);
    }

    #[test]
    fn comm_latency_slows_cross_core_pipelines() {
        let g = three_phase_graph(50, 10, 10, 10);
        let plan = ExecutionPlan::three_phase(4);
        let fast = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let slow = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 500,
            ..SimConfig::default()
        });
        let rf = fast.run(&g, &plan).unwrap();
        let rs = slow.run(&g, &plan).unwrap();
        assert!(rs.makespan > rf.makespan);
    }

    #[test]
    fn plan_validation_errors() {
        let g = three_phase_graph(2, 1, 1, 1);
        let sim = Simulator::new(SimConfig::with_cores(2));
        assert_eq!(
            sim.run(&g, &ExecutionPlan::three_phase(8)),
            Err(SimError::NotEnoughCores {
                required: 8,
                available: 2
            })
        );
        assert_eq!(
            sim.run(&g, &ExecutionPlan::tls(2)),
            Err(SimError::StageMismatch { plan: 1, graph: 3 })
        );
        let tiny = Simulator::new(SimConfig {
            num_queues: 1,
            ..SimConfig::with_cores(3)
        });
        assert!(matches!(
            tiny.run(&g, &ExecutionPlan::three_phase(3)),
            Err(SimError::TooManyChannels { .. })
        ));
    }

    #[test]
    fn empty_stage_pool_is_an_error_not_a_panic() {
        // The constructors forbid empty pools, but a deserialized plan
        // can carry one; the simulator must reject it typed-ly.
        let g = three_phase_graph(2, 1, 1, 1);
        let raw = ExecutionPlan::new(vec![
            StageAssignment::serial(0),
            StageAssignment::Parallel { cores: vec![] },
            StageAssignment::serial(1),
        ]);
        let sim = Simulator::new(SimConfig::with_cores(4));
        assert_eq!(
            sim.run(&g, &raw),
            Err(SimError::EmptyStagePool { stage: 1 })
        );
        let rr = ExecutionPlan::new(vec![
            StageAssignment::serial(0),
            StageAssignment::RoundRobin { cores: vec![] },
            StageAssignment::serial(1),
        ]);
        assert_eq!(sim.run(&g, &rr), Err(SimError::EmptyStagePool { stage: 1 }));
    }

    #[test]
    fn fault_simulation_is_deterministic_and_inert_plans_change_nothing() {
        let g = three_phase_graph(60, 5, 40, 5);
        let plan = ExecutionPlan::three_phase(4);
        let sim = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let clean = sim.run(&g, &plan).unwrap();
        let inert = sim
            .run_with_faults(&g, &plan, &crate::FaultPlan::none(), 3)
            .unwrap();
        assert_eq!(clean, inert, "an inert fault plan must change nothing");

        let faults = crate::FaultPlan::seeded(42);
        let a = sim.run_with_faults(&g, &plan, &faults, 3).unwrap();
        let b = sim.run_with_faults(&g, &plan, &faults, 3).unwrap();
        assert_eq!(a, b, "same seed, same simulated chaos");
        assert!(
            a.recovery.faults_recovered() > 0,
            "seed 42 injects something over 180 tasks"
        );
        // Replayed attempts cost real (simulated) time.
        assert!(a.makespan >= clean.makespan);
        assert!(a.tasks_executed > clean.tasks_executed);
    }

    #[test]
    fn fault_simulation_budget_exhaustion_serializes_the_tail() {
        let g = three_phase_graph(20, 5, 40, 5);
        let plan = ExecutionPlan::three_phase(4);
        let sim = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        // Panic on every attempt: task 0 exhausts any finite budget.
        let always = crate::FaultPlan::none().with_panic_permille(1000);
        let r = sim.run_with_faults(&g, &plan, &always, 2).unwrap();
        assert_eq!(r.recovery.fallback_tasks, g.len() as u64);
        assert_eq!(r.violations, 0, "speculation counters freeze at fallback");
        assert_eq!(r.speculations_survived, 0);
        // Each task ran once in the fallback tail, plus the three
        // charged attempts task 0 burned pipelined.
        assert_eq!(r.tasks_executed, g.len() + 3);
    }

    #[test]
    fn utilization_and_core_busy_are_consistent() {
        let g = three_phase_graph(100, 5, 50, 5);
        let sim = Simulator::new(SimConfig {
            cores: 6,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let r = sim.run(&g, &ExecutionPlan::three_phase(6)).unwrap();
        let busy: u64 = r.core_busy.iter().sum();
        assert_eq!(busy, g.serial_cycles());
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }

    #[test]
    fn channel_occupancy_respects_queue_capacity() {
        // Fast producer, slow consumer: occupancy should climb exactly to
        // the configured capacity and stop there.
        let mut g = TaskGraph::new(2);
        for i in 0..200 {
            let p = g.add_task(0, i, 1, &[], &[]);
            g.add_task(1, i, 50, &[p], &[]);
        }
        let cfg = SimConfig {
            cores: 2,
            comm_latency: 0,
            queue_capacity: 8,
            ..SimConfig::default()
        };
        let plan = ExecutionPlan::new(vec![StageAssignment::serial(0), StageAssignment::serial(1)]);
        let r = Simulator::new(cfg).run(&g, &plan).unwrap();
        assert_eq!(r.channel_stats.len(), 1);
        let ch = r.channel_stats[0];
        assert_eq!((ch.producer, ch.consumer), (0, 1));
        assert!(
            ch.max_occupancy <= 8 + 1,
            "occupancy {} exceeds capacity",
            ch.max_occupancy
        );
        assert!(
            ch.max_occupancy >= 7,
            "occupancy {} never filled",
            ch.max_occupancy
        );
    }

    #[test]
    fn traced_placements_are_consistent_with_the_schedule() {
        let g = three_phase_graph(50, 5, 40, 5);
        let sim = Simulator::new(SimConfig {
            cores: 6,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let (r, placements) = sim.run_traced(&g, &ExecutionPlan::three_phase(6)).unwrap();
        assert_eq!(placements.len(), g.len());
        // End times bound the makespan; costs match; no core overlaps.
        assert_eq!(placements.iter().map(|p| p.end).max().unwrap(), r.makespan);
        for p in &placements {
            assert_eq!(p.end - p.start, g.task(p.task).cost);
            assert!(p.core < 6);
        }
        let mut by_core: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 6];
        for p in &placements {
            by_core[p.core].push((p.start, p.end));
        }
        for spans in &mut by_core {
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "core executes one task at a time");
            }
        }
    }

    #[test]
    fn run_timeline_emits_the_native_event_schema() {
        let g = three_phase_graph(30, 5, 40, 5);
        let sim = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let (r, timeline) = sim
            .run_timeline(&g, &ExecutionPlan::three_phase(4))
            .unwrap();
        timeline
            .validate()
            .expect("simulated traces are well-formed");
        assert_eq!(timeline.unit(), TimeUnit::Cycles);
        assert_eq!(timeline.stage_count(), 3);
        // One commit per task, in sequential order, ending at/after the
        // last finish cycle.
        let order = timeline.commit_order();
        assert_eq!(order.len(), g.len());
        assert!(order.iter().enumerate().all(|(i, t)| t.0 as usize == i));
        assert_eq!(timeline.span(), r.makespan);
        // Stage metrics recover the simulated service times exactly.
        let metrics = timeline.stage_metrics();
        assert_eq!(metrics[0].service.p50, 5);
        assert_eq!(metrics[1].service.p50, 40);
        assert_eq!(metrics[1].attempts, 30);
        assert!(metrics.iter().all(|m| m.queue_wait.is_empty()));
        // The export is loadable Chrome-trace JSON (cycles as µs).
        let json = timeline.to_chrome_json(&["A".into(), "B".into(), "C".into()]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn governed_timeline_mirrors_the_native_governor_schema() {
        use crate::exec::GovernorConfig;
        // A graph with a conflict storm in the middle: tasks 40..60
        // carry violated speculated dependences on their predecessors.
        let mut g = TaskGraph::new(1);
        let mut prev: Option<TaskId> = None;
        for i in 0..200u64 {
            let violated = (40..60).contains(&i);
            let spec: Vec<SpecDep> = prev
                .filter(|_| violated)
                .map(|on| SpecDep { on, violated: true })
                .into_iter()
                .collect();
            let deps: Vec<TaskId> = prev.filter(|_| !violated).into_iter().collect();
            prev = Some(g.add_task(0, i, 10, &deps, &spec));
        }
        let sim = Simulator::new(SimConfig::with_cores(4));
        let cfg = GovernorConfig {
            reprobe_period: 8,
            history: 8,
            ..GovernorConfig::default()
        };
        let plan = ExecutionPlan::tls(4);
        let (_, timeline, stats) = sim.run_timeline_governed(&g, &plan, &cfg).unwrap();
        timeline
            .validate()
            .expect("governed twin stays well-formed");
        // The calibration stretch plus each post-degrade stretch count
        // as degraded commits; the storm forces at least one collapse
        // and the quiet tail at least one re-probe.
        assert!(stats.degraded_commits > 0, "calibration stretch counted");
        assert!(stats.reprobes > 0, "quiet stretches re-probe");
        assert!(stats.degrades > 0, "the storm collapses the window");
        let kinds: Vec<_> = timeline
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceEventKind::GovernorDegrade { .. }
                        | TraceEventKind::GovernorReprobe { .. }
                        | TraceEventKind::GovernorThrottle { .. }
                )
            })
            .collect();
        assert_eq!(
            kinds
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::GovernorReprobe { .. }))
                .count() as u64,
            stats.reprobes,
            "every re-probe surfaces as a trace event"
        );
        // Determinism: the twin's decision stream is a pure function of
        // the simulated schedule.
        let (_, timeline2, stats2) = sim.run_timeline_governed(&g, &plan, &cfg).unwrap();
        assert_eq!(stats, stats2);
        assert_eq!(timeline.events().len(), timeline2.events().len());
        // The ungoverned path is unchanged: no governor events at all.
        let (_, plain) = sim.run_timeline(&g, &plan).unwrap();
        assert!(plain.events().iter().all(|e| !matches!(
            e.kind,
            TraceEventKind::GovernorDegrade { .. }
                | TraceEventKind::GovernorReprobe { .. }
                | TraceEventKind::GovernorThrottle { .. }
                | TraceEventKind::GovernorBackoff { .. }
        )));
    }

    #[test]
    fn empty_graph_simulates_to_zero() {
        let g = TaskGraph::new(3);
        let sim = Simulator::new(SimConfig::with_cores(4));
        let r = sim.run(&g, &ExecutionPlan::three_phase(4)).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.speedup(), 1.0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn dynamic_assignment_beats_round_robin_on_variable_tasks() {
        let mut g = TaskGraph::new(3);
        let mut prev_a: Option<TaskId> = None;
        let mut prev_c: Option<TaskId> = None;
        let mut state = 99u64;
        for i in 0..600 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Adversarial periodicity: the heavy task recurs at the pool
            // size, so round-robin pins every one to the same core while
            // least-loaded spreads them.
            let cost = if i % 6 == 0 { 2000 } else { 50 + state % 100 };
            let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
            let ta = g.add_task(0, i, 1, &deps_a, &[]);
            let tb = g.add_task(1, i, cost, &[ta], &[]);
            let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
            prev_c = Some(g.add_task(2, i, 1, &deps_c, &[]));
            prev_a = Some(ta);
        }
        let sim = Simulator::new(SimConfig {
            cores: 8,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let dynamic = sim.run(&g, &ExecutionPlan::three_phase(8)).unwrap();
        let rr = sim.run(&g, &ExecutionPlan::three_phase_static(8)).unwrap();
        assert!(
            dynamic.makespan < rr.makespan,
            "least-loaded {} vs round-robin {}",
            dynamic.makespan,
            rr.makespan
        );
    }

    #[test]
    fn dynamic_assignment_balances_variable_tasks() {
        // Highly variable phase-B costs (like crafty's subtree searches):
        // dynamic least-loaded assignment should still fill cores well.
        let mut g = TaskGraph::new(3);
        let mut prev_a: Option<TaskId> = None;
        let mut prev_c: Option<TaskId> = None;
        let mut state = 12345u64;
        for i in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cost = 10 + state % 200;
            let deps_a: Vec<TaskId> = prev_a.into_iter().collect();
            let ta = g.add_task(0, i, 1, &deps_a, &[]);
            let tb = g.add_task(1, i, cost, &[ta], &[]);
            let deps_c: Vec<TaskId> = [Some(tb), prev_c].into_iter().flatten().collect();
            prev_c = Some(g.add_task(2, i, 1, &deps_c, &[]));
            prev_a = Some(ta);
        }
        let sim = Simulator::new(SimConfig {
            cores: 10,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let r = sim.run(&g, &ExecutionPlan::three_phase(10)).unwrap();
        assert!(r.speedup() > 6.0, "speedup {}", r.speedup());
    }
}
