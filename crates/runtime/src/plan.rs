//! Execution plans: which core(s) run each pipeline stage.

use serde::{Deserialize, Serialize};

/// How one stage's tasks are placed on cores.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageAssignment {
    /// Every task of the stage runs, in iteration order, on one core.
    ///
    /// This is the paper's phase A / phase C pattern: sequential stages
    /// carrying loop-carried dependences stay on a single core.
    Serial {
        /// The core hosting the stage.
        core: usize,
    },
    /// Tasks are assigned dynamically to whichever of `cores` has the
    /// least work enqueued (paper §3.2) — the replicated parallel stage.
    Parallel {
        /// The pool of cores sharing the stage.
        cores: Vec<usize>,
    },
    /// Tasks are assigned statically round-robin by iteration number —
    /// the ablation baseline against the dynamic least-loaded heuristic.
    RoundRobin {
        /// The pool of cores sharing the stage.
        cores: Vec<usize>,
    },
}

impl StageAssignment {
    /// A serial assignment on `core`.
    pub fn serial(core: usize) -> Self {
        StageAssignment::Serial { core }
    }

    /// A parallel assignment over `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn parallel(cores: Vec<usize>) -> Self {
        assert!(
            !cores.is_empty(),
            "a parallel stage needs at least one core"
        );
        StageAssignment::Parallel { cores }
    }

    /// A static round-robin assignment over `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn round_robin(cores: Vec<usize>) -> Self {
        assert!(
            !cores.is_empty(),
            "a parallel stage needs at least one core"
        );
        StageAssignment::RoundRobin { cores }
    }

    /// The cores this assignment may use.
    pub fn cores(&self) -> Vec<usize> {
        match self {
            StageAssignment::Serial { core } => vec![*core],
            StageAssignment::Parallel { cores } | StageAssignment::RoundRobin { cores } => {
                cores.clone()
            }
        }
    }

    /// The highest core index referenced.
    pub fn max_core(&self) -> usize {
        match self {
            StageAssignment::Serial { core } => *core,
            StageAssignment::Parallel { cores } | StageAssignment::RoundRobin { cores } => {
                cores.iter().copied().max().unwrap_or(0)
            }
        }
    }
}

/// The per-stage placement for one parallelized loop.
///
/// Equality compares the stage assignments only; the lint stamp (see
/// [`ExecutionPlan::stamp_linted`]) is bookkeeping, not identity.
#[derive(Clone, Debug, Eq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    stages: Vec<StageAssignment>,
    /// Fingerprint recorded when the plan passed the static soundness
    /// lint, used by the native executor to debug-assert that a linted
    /// plan was not mutated between linting and execution. Skipped by
    /// serde: a deserialized plan is unstamped until re-linted.
    #[serde(skip)]
    lint_stamp: Option<u64>,
}

impl PartialEq for ExecutionPlan {
    fn eq(&self, other: &Self) -> bool {
        self.stages == other.stages
    }
}

impl ExecutionPlan {
    /// Creates a plan from per-stage assignments (index = stage id).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<StageAssignment>) -> Self {
        assert!(!stages.is_empty(), "a plan needs at least one stage");
        Self {
            stages,
            lint_stamp: None,
        }
    }

    /// The classic A/B/C plan of §3.2 for a machine with `cores` cores:
    /// phase A serial on core 0, phase C serial on the last core, phase B
    /// replicated across the remaining cores (or sharing core 0 on small
    /// machines).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn three_phase(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        match cores {
            1 => Self::new(vec![
                StageAssignment::serial(0),
                StageAssignment::parallel(vec![0]),
                StageAssignment::serial(0),
            ]),
            2 => Self::new(vec![
                StageAssignment::serial(0),
                StageAssignment::parallel(vec![1]),
                StageAssignment::serial(0),
            ]),
            3 => Self::new(vec![
                StageAssignment::serial(0),
                StageAssignment::parallel(vec![1]),
                StageAssignment::serial(2),
            ]),
            n => Self::new(vec![
                StageAssignment::serial(0),
                StageAssignment::parallel((1..n - 1).collect()),
                StageAssignment::serial(n - 1),
            ]),
        }
    }

    /// The A/B/C plan with a *statically* scheduled phase B (round-robin
    /// by iteration) — the ablation baseline for the paper's dynamic
    /// least-loaded assignment.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn three_phase_static(cores: usize) -> Self {
        let dynamic = Self::three_phase(cores);
        let stages = dynamic
            .stages
            .into_iter()
            .map(|s| match s {
                StageAssignment::Parallel { cores } => StageAssignment::RoundRobin { cores },
                other => other,
            })
            .collect();
        Self::new(stages)
    }

    /// A TLS-style plan: one stage, iterations spread across all cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn tls(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self::new(vec![StageAssignment::parallel((0..cores).collect())])
    }

    /// The assignment of `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage(&self, stage: u8) -> &StageAssignment {
        &self.stages[stage as usize]
    }

    /// The number of stages.
    pub fn stage_count(&self) -> u8 {
        self.stages.len() as u8
    }

    /// The first stage whose core pool is empty, if any.
    ///
    /// The [`StageAssignment::parallel`]/[`StageAssignment::round_robin`]
    /// constructors reject empty pools, but a plan can still arrive with
    /// one through deserialization or a raw enum literal; the simulator
    /// and the native executor both validate with this instead of
    /// panicking mid-schedule.
    pub fn first_empty_stage(&self) -> Option<u8> {
        self.stages.iter().enumerate().find_map(|(i, s)| match s {
            StageAssignment::Serial { .. } => None,
            StageAssignment::Parallel { cores } | StageAssignment::RoundRobin { cores } => {
                cores.is_empty().then_some(i as u8)
            }
        })
    }

    /// The number of cores the plan requires (highest index + 1).
    pub fn cores_required(&self) -> usize {
        self.stages
            .iter()
            .map(StageAssignment::max_core)
            .max()
            .unwrap_or(0)
            + 1
    }

    /// A structural fingerprint of the stage assignments (FNV-1a over
    /// the assignment kinds and core indices). Two plans with equal
    /// stage structure have equal fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf29ce484222325u64;
        let mut mix = |v: u64| {
            hash ^= v;
            hash = hash.wrapping_mul(0x100000001b3);
        };
        for s in &self.stages {
            match s {
                StageAssignment::Serial { core } => {
                    mix(1);
                    mix(*core as u64);
                }
                StageAssignment::Parallel { cores } => {
                    mix(2);
                    for c in cores {
                        mix(*c as u64);
                    }
                }
                StageAssignment::RoundRobin { cores } => {
                    mix(3);
                    for c in cores {
                        mix(*c as u64);
                    }
                }
            }
            mix(u64::MAX); // stage separator
        }
        hash
    }

    /// Records that this plan, as currently shaped, passed the static
    /// soundness lint. The native executor debug-asserts
    /// [`ExecutionPlan::lint_stamp_intact`] before running.
    pub fn stamp_linted(&mut self) {
        self.lint_stamp = Some(self.fingerprint());
    }

    /// Whether the plan carries a lint stamp at all.
    pub fn is_linted(&self) -> bool {
        self.lint_stamp.is_some()
    }

    /// Whether the lint stamp (if any) still matches the plan's current
    /// structure. Unstamped plans — hand-built or deserialized — pass
    /// trivially; a stamped plan whose stages were mutated afterwards
    /// does not, which is the invariant the native executor
    /// debug-asserts.
    pub fn lint_stamp_intact(&self) -> bool {
        self.lint_stamp.is_none_or(|s| s == self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_phase_splits_cores_sensibly() {
        let p = ExecutionPlan::three_phase(8);
        assert_eq!(p.stage_count(), 3);
        assert_eq!(p.stage(0), &StageAssignment::serial(0));
        assert_eq!(p.stage(1).cores(), (1..7).collect::<Vec<_>>());
        assert_eq!(p.stage(2), &StageAssignment::serial(7));
        assert_eq!(p.cores_required(), 8);
    }

    #[test]
    fn three_phase_degenerates_gracefully_on_small_machines() {
        let p1 = ExecutionPlan::three_phase(1);
        assert_eq!(p1.cores_required(), 1);
        let p2 = ExecutionPlan::three_phase(2);
        assert_eq!(p2.cores_required(), 2);
        let p3 = ExecutionPlan::three_phase(3);
        assert_eq!(p3.cores_required(), 3);
    }

    #[test]
    fn tls_plan_uses_every_core_in_one_stage() {
        let p = ExecutionPlan::tls(4);
        assert_eq!(p.stage_count(), 1);
        assert_eq!(p.stage(0).cores(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn parallel_assignment_rejects_empty_pool() {
        StageAssignment::parallel(vec![]);
    }

    #[test]
    fn max_core_reports_highest_index() {
        assert_eq!(StageAssignment::serial(5).max_core(), 5);
        assert_eq!(StageAssignment::parallel(vec![2, 9, 4]).max_core(), 9);
    }

    #[test]
    fn lint_stamp_tracks_plan_structure() {
        let mut p = ExecutionPlan::three_phase(4);
        assert!(!p.is_linted());
        assert!(p.lint_stamp_intact(), "unstamped plans pass trivially");
        p.stamp_linted();
        assert!(p.is_linted());
        assert!(p.lint_stamp_intact());
        // Structurally equal plans fingerprint identically; different
        // shapes do not.
        assert_eq!(p.fingerprint(), ExecutionPlan::three_phase(4).fingerprint());
        assert_ne!(p.fingerprint(), ExecutionPlan::three_phase(5).fingerprint());
        assert_ne!(p.fingerprint(), ExecutionPlan::tls(4).fingerprint());
        // A mutated stamped plan is caught.
        let mut tampered = p.clone();
        tampered.stages[0] = StageAssignment::serial(3);
        assert!(!tampered.lint_stamp_intact());
    }

    #[test]
    fn equality_ignores_the_lint_stamp() {
        let plain = ExecutionPlan::three_phase(4);
        let mut stamped = ExecutionPlan::three_phase(4);
        stamped.stamp_linted();
        assert_eq!(plain, stamped);
    }

    #[test]
    fn first_empty_stage_finds_raw_empty_pools() {
        assert_eq!(ExecutionPlan::three_phase(4).first_empty_stage(), None);
        let raw = ExecutionPlan::new(vec![
            StageAssignment::serial(0),
            StageAssignment::Parallel { cores: vec![] },
            StageAssignment::serial(1),
        ]);
        assert_eq!(raw.first_empty_stage(), Some(1));
        let rr = ExecutionPlan::new(vec![StageAssignment::RoundRobin { cores: vec![] }]);
        assert_eq!(rr.first_empty_stage(), Some(0));
    }
}
