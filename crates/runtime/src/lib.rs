//! Multi-core performance simulator for pipelined speculative execution.
//!
//! This crate reimplements the measurement methodology of §3 of *Bridges
//! et al., MICRO 2007*. A parallelized loop is decomposed into **phases**
//! (statically selected code regions); each dynamic instance of a phase is
//! a **task** with a measured cost. An [`ExecutionPlan`] maps phases to
//! cores — serially on one core, or replicated across a pool with dynamic
//! least-loaded assignment — and the [`Simulator`] estimates the parallel
//! execution time from the task costs, the task dependence graph, and the
//! machine model:
//!
//! * tasks communicate via core-to-core queues with bounded capacity
//!   (the paper models 256 32-entry queues and their full/empty
//!   conditions);
//! * cross-core dependences pay a communication latency;
//! * speculation is modelled by replaying the dynamic dependences that
//!   actually occurred: a **violated** speculative dependence serializes
//!   the consumer after the producer ("loss of benefit for speculative
//!   execution, but no additional cost to misspeculation", §3.1);
//!   non-violated speculative dependences are ignored.
//!
//! # Example
//!
//! ```
//! use seqpar_runtime::{ExecutionPlan, SimConfig, Simulator, StageAssignment, TaskGraph};
//!
//! // Two-stage pipeline: stage 0 produces, stage 1 consumes, 4 iterations.
//! let mut g = TaskGraph::new(2);
//! for i in 0..4 {
//!     let p = g.add_task(0, i, 10, &[], &[]);
//!     g.add_task(1, i, 10, &[p], &[]);
//! }
//! let plan = ExecutionPlan::new(vec![
//!     StageAssignment::serial(0),
//!     StageAssignment::serial(1),
//! ]);
//! let sim = Simulator::new(SimConfig { cores: 2, comm_latency: 0, ..SimConfig::default() });
//! let result = sim.run(&g, &plan).unwrap();
//! // Pipelining overlaps the stages: faster than the 80-cycle serial run.
//! assert!(result.makespan < 80);
//! assert!(result.speedup() > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diag;
pub mod exec;
pub mod plan;
pub mod sim;
pub mod task;
pub mod validate;

pub use diag::{Diagnostic, PlanShape, Severity};
pub use exec::{
    supervise_task, CommitView, CriticalPath, DurationStats, ExecConfig, ExecError, FaultKind,
    FaultPlan, GovernorConfig, GovernorStats, NativeBody, NativeExecutor, NativeReport,
    RecoveryCounts, SquashReason, StageMetrics, TaskCtx, TaskOutput, TaskSupervision, TimeUnit,
    Timeline, TraceDefect, TraceEvent, TraceEventKind, WorkerStat, DEGRADED_ATTEMPT,
    FALLBACK_ATTEMPT,
};
pub use plan::{ExecutionPlan, StageAssignment};
pub use sim::{ChannelStat, SimConfig, SimError, SimResult, Simulator, TaskPlacement};
pub use task::{SpecDep, StageId, Task, TaskGraph, TaskId};
pub use validate::{check_schedule, ScheduleViolation};
