//! Golden test: a deliberately broken partition must produce exactly
//! the expected deny-level lint codes.
//!
//! The fixture is a loop whose hand-assigned stage plan violates three
//! independent soundness rules at once:
//!
//! * a register dependence flows from stage C back into stage A
//!   (`SP0001` — forward-flow violation);
//! * two stores to the same global sit in the replicated stage with
//!   their carried dependence edges stripped, as a broken speculation
//!   pass would leave them (`SP0004` — replicated-stage race);
//! * a `Commutative`-annotated extern writes a global that unannotated
//!   code after the loop reads (`SP0005` — non-commuting annotation).
//!
//! The checkers must report all three — and *only* those three — so
//! this test pins both the true-positive and the false-positive
//! behaviour of the whole battery.

use seqpar_analysis::pdg::{DepKind, LoopPdg, PdgNode};
use seqpar_analysis::{lint, LintCode, LintInput, StagePlan};
use seqpar_ir::{CommGroupId, ExternEffect, FuncId, FunctionBuilder, LoopForest, Opcode, Program};

struct Fixture {
    program: Program,
    func: FuncId,
    forest: LoopForest,
}

/// Builds the broken loop. Instructions carry labels so the test can
/// find their PDG nodes without depending on numbering.
fn build() -> Fixture {
    let mut p = Program::new("golden");
    let racy = p.add_global("racy", 1);
    let seed = p.add_global("seed", 1);
    let out = p.add_global("out", 1);
    p.declare_extern(
        "bump_seed",
        ExternEffect {
            writes: vec![seed],
            ..ExternEffect::default()
        },
    );

    let mut b = FunctionBuilder::new("f");
    let header = b.add_block("header");
    let exit = b.add_block("exit");
    b.jump(header);
    b.switch_to(header);

    // SP0001 bait: `late` will be placed in stage C, its consumer
    // store in stage A.
    let late = b.const_(7);
    b.label_last("late_producer");
    let out_addr = b.global_addr(out);
    b.store(out_addr, late);
    b.label_last("early_consumer");

    // SP0004 bait: two stores to `racy`, later forced into the
    // replicated stage with their carried edges stripped.
    let racy_addr = b.global_addr(racy);
    let one = b.const_(1);
    b.store(racy_addr, one);
    b.label_last("race_a");
    let two = b.const_(2);
    b.store(racy_addr, two);
    b.label_last("race_b");

    // SP0005 bait: the annotation claims `bump_seed` commutes, but
    // `seed` is read by unannotated code after the loop.
    let r = b.call_ext("bump_seed", &[], Some(CommGroupId(7)));
    b.label_last("bump");

    let done = b.binop(Opcode::CmpEq, r, one);
    b.cond_branch(done, exit, header);
    b.switch_to(exit);
    let seed_addr = b.global_addr(seed);
    let leak = b.load(seed_addr);
    b.label_last("seed_leak");
    b.ret(Some(leak));
    let func = b.finish(&mut p);
    let forest = LoopForest::build(p.function(func));
    Fixture {
        program: p,
        func,
        forest,
    }
}

/// PDG node index of the instruction carrying `label`.
fn node_of(fx: &Fixture, pdg: &LoopPdg, label: &str) -> usize {
    let func = fx.program.function(fx.func);
    let inst = func
        .inst_ids()
        .find(|&i| func.inst(i).label.as_deref() == Some(label))
        .unwrap_or_else(|| panic!("no inst labelled {label}"));
    pdg.index_of(PdgNode::Inst(inst))
        .unwrap_or_else(|| panic!("inst {label} not in the PDG"))
}

fn broken_input(fx: &Fixture) -> (LoopPdg, StagePlan) {
    let (lid, _) = fx.forest.loops().next().expect("fixture has a loop");
    let mut pdg = LoopPdg::build(&fx.program, fx.func, &fx.forest, lid, None);

    let race_a = node_of(fx, &pdg, "race_a");
    let race_b = node_of(fx, &pdg, "race_b");
    let late = node_of(fx, &pdg, "late_producer");

    // Strip every carried memory edge between the racing stores, as a
    // broken speculation pass (one that removed edges without leaving
    // a validation record) would: the race detector must still see the
    // conflict from effects, not from edges.
    let stripped: Vec<usize> = pdg
        .find_edges(|e| {
            e.kind == DepKind::Mem
                && e.carried
                && [race_a, race_b].contains(&e.src)
                && [race_a, race_b].contains(&e.dst)
        })
        .into_iter()
        .map(|(pos, _)| pos)
        .collect();
    assert!(
        !stripped.is_empty(),
        "fixture must have carried race edges to strip"
    );
    pdg.remove_edges(stripped);

    // Stage A by default; racing stores replicated; the backward
    // producer alone in stage C.
    let mut stage_of = vec![0u8; pdg.node_count()];
    stage_of[race_a] = 1;
    stage_of[race_b] = 1;
    stage_of[late] = 2;
    (pdg, StagePlan::three_phase(stage_of))
}

#[test]
fn broken_partition_yields_exactly_the_expected_deny_codes() {
    let fx = build();
    let (pdg, stages) = broken_input(&fx);
    let report = lint::run(&LintInput {
        program: &fx.program,
        pdg: &pdg,
        stages: &stages,
        speculated: &[],
        privatized: &[],
        plan: None,
    });

    assert_eq!(
        report.deny_codes(),
        vec![
            LintCode::BackwardDep,
            LintCode::ReplicatedRace,
            LintCode::NonCommutative
        ],
        "full report:\n{}",
        report.render()
    );
    assert_eq!(report.warn_count(), 0, "full report:\n{}", report.render());
}

#[test]
fn diagnostics_carry_codes_and_node_provenance() {
    let fx = build();
    let (pdg, stages) = broken_input(&fx);
    let report = lint::run(&LintInput {
        program: &fx.program,
        pdg: &pdg,
        stages: &stages,
        speculated: &[],
        privatized: &[],
        plan: None,
    });
    let rendered = report.render();
    for code in ["SP0001", "SP0004", "SP0005"] {
        assert!(rendered.contains(code), "missing {code} in:\n{rendered}");
    }
    // Provenance: the racing stores are named via their labels.
    assert!(rendered.contains("race_a"), "no provenance in:\n{rendered}");
    assert!(rendered.contains("seed"), "no object name in:\n{rendered}");
}

#[test]
fn repairing_each_break_clears_its_code() {
    let fx = build();
    let (lid, _) = fx.forest.loops().next().unwrap();
    let pdg = LoopPdg::build(&fx.program, fx.func, &fx.forest, lid, None);
    // An honest all-sequential plan: every node in stage A. The flow
    // and race checkers have nothing to say; only the broken
    // Commutative annotation — a property of the *program*, not the
    // partition — still fires.
    let stages = StagePlan::three_phase(vec![0u8; pdg.node_count()]);
    let report = lint::run(&LintInput {
        program: &fx.program,
        pdg: &pdg,
        stages: &stages,
        speculated: &[],
        privatized: &[],
        plan: None,
    });
    assert_eq!(report.deny_codes(), vec![LintCode::NonCommutative]);
}
