//! Dependence analyses for the `seqpar` parallelization framework.
//!
//! The analyses in this crate turn a [`seqpar_ir::Program`] into the
//! [`pdg::LoopPdg`] — a program dependence graph over one target loop —
//! that the thread extractor in the `seqpar` core crate partitions into
//! pipeline stages. Following §2.1–2.2 of *Bridges et al., MICRO 2007*,
//! the pipeline is:
//!
//! 1. [`points_to`] — Andersen-style inclusion-based pointer analysis
//!    with whole-program scope;
//! 2. [`alias`] — may/must alias queries over memory references,
//!    field-sensitive at the query;
//! 3. [`effects`] — bottom-up read/write object summaries for functions,
//!    approximating whole-program "region" visibility through calls;
//! 4. [`control`] — control dependence from post-dominance;
//! 5. [`regdeps`] — SSA def-use register dependences with loop-carried
//!    classification;
//! 6. [`memdep`] — may-alias memory dependences, refined by a
//!    [`profile::MemProfile`] exactly as the paper's memory-profiling pass
//!    refines static dependences before simulation (§3.1);
//! 7. [`pdg`] — assembly of the per-loop dependence graph;
//! 8. [`value_range`] — constancy/invariance facts used to nominate value
//!    speculation candidates.
//!
//! # Example
//!
//! ```
//! use seqpar_ir::{FunctionBuilder, Program, Opcode};
//! use seqpar_analysis::pdg::LoopPdg;
//!
//! let mut program = Program::new("p");
//! let acc = program.add_global("acc", 1);
//! let mut b = FunctionBuilder::new("sum_loop");
//! let header = b.add_block("header");
//! let exit = b.add_block("exit");
//! b.jump(header);
//! b.switch_to(header);
//! let ptr = b.global_addr(acc);
//! let cur = b.load(ptr);
//! let one = b.const_(1);
//! let next = b.binop(Opcode::Add, cur, one);
//! b.store(ptr, next);
//! let done = b.binop(Opcode::CmpEq, next, one);
//! b.cond_branch(done, exit, header);
//! b.switch_to(exit);
//! b.ret(None);
//! let f = b.finish(&mut program);
//! let forest = seqpar_ir::LoopForest::build(program.function(f));
//! let (loop_id, _) = forest.loops().next().unwrap();
//! let pdg = LoopPdg::build(&program, f, &forest, loop_id, None);
//! // The accumulator creates a loop-carried memory dependence.
//! assert!(pdg.edges().any(|e| e.carried));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alias;
pub mod control;
pub mod effects;
pub mod lint;
pub mod memdep;
pub mod pdg;
pub mod points_to;
pub mod profile;
pub mod regdeps;
pub mod value_range;

pub use alias::{AliasQuery, AliasResult};
pub use lint::{
    check_plan_shape, Lint, LintCode, LintEntry, LintInput, LintReport, SpeculatedDep, StageKind,
    StagePlan,
};
pub use pdg::{DepKind, LoopPdg, PdgEdge, PdgNode};
pub use points_to::{AbstractObj, PointsTo};
pub use profile::{BranchProfile, LoopProfile, MemProfile, ValueProfile};
