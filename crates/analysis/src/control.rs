//! Control-dependence computation from post-dominance.
//!
//! Block `B` is control dependent on branch block `A` when `A` has a
//! successor from which `B` is always reached (B post-dominates that
//! successor) but `B` does not post-dominate `A` itself — i.e. the branch
//! at `A` decides whether `B` executes (Ferrante–Ottenstein–Warren).

use seqpar_ir::{BlockId, Cfg, DomTree, Function};
use std::collections::BTreeSet;

/// Control-dependence relation over the blocks of one function.
#[derive(Clone, Debug, Default)]
pub struct ControlDeps {
    /// `deps[b]` = branch blocks that `b` is control dependent on.
    deps: Vec<BTreeSet<BlockId>>,
}

impl ControlDeps {
    /// Computes control dependences for `func`.
    pub fn analyze(func: &Function) -> Self {
        let cfg = Cfg::build(func);
        let pdom = DomTree::post_dominators(&cfg);
        let mut deps = vec![BTreeSet::new(); func.block_count()];
        for a in cfg.reverse_postorder().iter().copied() {
            let succs = cfg.succs(a);
            if succs.len() < 2 {
                continue;
            }
            for &s in succs {
                // Walk the post-dominator tree from s up to (exclusive)
                // ipdom(a); every node on that path is control dependent
                // on a.
                let stop = pdom.idom(a);
                let mut cur = Some(s);
                while let Some(b) = cur {
                    if Some(b) == stop {
                        break;
                    }
                    deps[b.index()].insert(a);
                    if b == a {
                        // Self-loop: a controls itself; stop to avoid
                        // walking past the loop.
                        break;
                    }
                    cur = pdom.idom(b);
                }
            }
        }
        Self { deps }
    }

    /// The branch blocks that `block` is control dependent on.
    pub fn deps_of(&self, block: BlockId) -> &BTreeSet<BlockId> {
        &self.deps[block.index()]
    }

    /// Whether `block` is control dependent on `branch`.
    pub fn depends_on(&self, block: BlockId, branch: BlockId) -> bool {
        self.deps[block.index()].contains(&branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::FunctionBuilder;

    #[test]
    fn diamond_arms_depend_on_the_branch() {
        let mut b = FunctionBuilder::new("diamond");
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        let c = b.const_(1);
        b.cond_branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.into_function();
        let cd = ControlDeps::analyze(&f);
        assert!(cd.depends_on(t, f.entry));
        assert!(cd.depends_on(e, f.entry));
        assert!(!cd.depends_on(j, f.entry));
        assert!(cd.deps_of(f.entry).is_empty());
    }

    #[test]
    fn loop_body_depends_on_loop_branch() {
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let c = b.const_(1);
        b.cond_branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.into_function();
        let cd = ControlDeps::analyze(&f);
        assert!(cd.depends_on(body, header));
        // The header itself re-executes only if the branch takes the
        // back-path: header is control dependent on itself.
        assert!(cd.depends_on(header, header));
        assert!(!cd.depends_on(exit, header));
    }

    #[test]
    fn straight_line_code_has_no_control_deps() {
        let mut b = FunctionBuilder::new("straight");
        let next = b.add_block("next");
        b.jump(next);
        b.switch_to(next);
        b.ret(None);
        let f = b.into_function();
        let cd = ControlDeps::analyze(&f);
        for blk in f.block_ids() {
            assert!(cd.deps_of(blk).is_empty());
        }
    }

    #[test]
    fn nested_branch_dependences_stack() {
        // entry: br -> a | exit ; a: br -> b | exit ; b -> exit
        let mut bl = FunctionBuilder::new("nested");
        let a = bl.add_block("a");
        let b2 = bl.add_block("b");
        let exit = bl.add_block("exit");
        let c1 = bl.const_(1);
        bl.cond_branch(c1, a, exit);
        bl.switch_to(a);
        let c2 = bl.const_(1);
        bl.cond_branch(c2, b2, exit);
        bl.switch_to(b2);
        bl.jump(exit);
        bl.switch_to(exit);
        bl.ret(None);
        let f = bl.into_function();
        let cd = ControlDeps::analyze(&f);
        assert!(cd.depends_on(a, f.entry));
        assert!(cd.depends_on(b2, a));
        assert!(!cd.depends_on(b2, f.entry) || cd.depends_on(b2, a));
        assert!(!cd.depends_on(exit, f.entry));
    }
}
