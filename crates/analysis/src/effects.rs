//! Bottom-up memory-effect summaries for functions.
//!
//! Whole-program scope (paper §2.2) means the parallelizer must see the
//! memory behaviour of code "deeply nested within function calls" without
//! textual inlining. Effect summaries provide that: for every function we
//! compute the set of abstract objects it (transitively) may read and
//! write, so a call instruction can participate in memory-dependence
//! construction as a single node.

use crate::points_to::{AbstractObj, PointsTo};
use seqpar_ir::{Callee, FuncId, Opcode, Program};
use std::collections::{BTreeSet, HashMap};

/// The transitive read/write object sets of one function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EffectSummary {
    /// Objects the function may read.
    pub reads: BTreeSet<AbstractObj>,
    /// Objects the function may write.
    pub writes: BTreeSet<AbstractObj>,
    /// The function may touch memory the analysis cannot name.
    pub clobbers_unknown: bool,
}

impl EffectSummary {
    /// Whether the function has no visible memory effects.
    pub fn is_pure(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && !self.clobbers_unknown
    }

    /// Whether this summary's effects may conflict with another's
    /// (write/write or read/write overlap).
    pub fn conflicts_with(&self, other: &EffectSummary) -> bool {
        if self.clobbers_unknown || other.clobbers_unknown {
            return true;
        }
        let overlap =
            |a: &BTreeSet<AbstractObj>, b: &BTreeSet<AbstractObj>| a.iter().any(|o| b.contains(o));
        overlap(&self.writes, &other.writes)
            || overlap(&self.writes, &other.reads)
            || overlap(&self.reads, &other.writes)
    }
}

/// Effect summaries for all functions of a program.
#[derive(Clone, Debug, Default)]
pub struct Effects {
    summaries: HashMap<FuncId, EffectSummary>,
}

impl Effects {
    /// Computes summaries to a fixed point (handles recursion).
    pub fn analyze(program: &Program, points_to: &PointsTo) -> Self {
        let mut summaries: HashMap<FuncId, EffectSummary> = program
            .function_ids()
            .map(|f| (f, EffectSummary::default()))
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for f in program.function_ids() {
                let updated = Self::summarize(program, points_to, f, &summaries);
                if summaries.get(&f) != Some(&updated) {
                    summaries.insert(f, updated);
                    changed = true;
                }
            }
        }
        Self { summaries }
    }

    fn summarize(
        program: &Program,
        points_to: &PointsTo,
        f: FuncId,
        current: &HashMap<FuncId, EffectSummary>,
    ) -> EffectSummary {
        let func = program.function(f);
        let mut s = EffectSummary::default();
        for i in func.inst_ids() {
            match &func.inst(i).opcode {
                Opcode::Load(mem) => {
                    let pts = points_to.of(f, mem.base);
                    if pts.is_empty() {
                        s.clobbers_unknown = true;
                    }
                    s.reads.extend(pts.iter().copied());
                }
                Opcode::Store(mem) => {
                    let pts = points_to.of(f, mem.base);
                    if pts.is_empty() {
                        s.clobbers_unknown = true;
                    }
                    s.writes.extend(pts.iter().copied());
                }
                Opcode::Call { callee, .. } => match callee {
                    Callee::Internal(g) => {
                        if let Some(cs) = current.get(g) {
                            s.reads.extend(cs.reads.iter().copied());
                            s.writes.extend(cs.writes.iter().copied());
                            s.clobbers_unknown |= cs.clobbers_unknown;
                        }
                    }
                    Callee::External(name) => match program.extern_fn(name) {
                        Some(ext) => {
                            if ext.effect.clobbers_all {
                                s.clobbers_unknown = true;
                            }
                            s.reads
                                .extend(ext.effect.reads.iter().map(|g| AbstractObj::Global(*g)));
                            s.writes
                                .extend(ext.effect.writes.iter().map(|g| AbstractObj::Global(*g)));
                        }
                        // Undeclared externals are worst-case.
                        None => s.clobbers_unknown = true,
                    },
                },
                _ => {}
            }
        }
        s
    }

    /// The summary for `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` was not part of the analyzed program.
    pub fn of(&self, f: FuncId) -> &EffectSummary {
        self.summaries.get(&f).expect("function analyzed")
    }

    /// The effects of a *call site* described by its callee.
    pub fn of_callee(&self, program: &Program, callee: &Callee) -> EffectSummary {
        match callee {
            Callee::Internal(g) => self.of(*g).clone(),
            Callee::External(name) => match program.extern_fn(name) {
                Some(ext) => {
                    let mut s = EffectSummary {
                        clobbers_unknown: ext.effect.clobbers_all,
                        ..Default::default()
                    };
                    s.reads
                        .extend(ext.effect.reads.iter().map(|g| AbstractObj::Global(*g)));
                    s.writes
                        .extend(ext.effect.writes.iter().map(|g| AbstractObj::Global(*g)));
                    s
                }
                None => EffectSummary {
                    clobbers_unknown: true,
                    ..Default::default()
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{ExternEffect, FunctionBuilder};

    #[test]
    fn direct_loads_and_stores_are_summarized() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let mut b = FunctionBuilder::new("f");
        let a = b.global_addr(g);
        let v = b.load(a);
        b.store(a, v);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        let s = eff.of(f);
        assert!(s.reads.contains(&AbstractObj::Global(g)));
        assert!(s.writes.contains(&AbstractObj::Global(g)));
        assert!(!s.clobbers_unknown);
    }

    #[test]
    fn effects_flow_up_through_calls() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let mut cb = FunctionBuilder::new("writer");
        let a = cb.global_addr(g);
        let z = cb.const_(0);
        cb.store(a, z);
        cb.ret(None);
        let writer = cb.finish(&mut p);
        let mut b = FunctionBuilder::new("caller");
        b.call(writer, &[]);
        b.ret(None);
        let caller = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        assert!(eff.of(caller).writes.contains(&AbstractObj::Global(g)));
    }

    #[test]
    fn recursive_functions_reach_fixed_point() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        // f calls itself then writes g.
        let mut b = FunctionBuilder::new("rec");
        let f_id_placeholder = seqpar_ir::FuncId::new(0);
        b.call(f_id_placeholder, &[]);
        let a = b.global_addr(g);
        let z = b.const_(0);
        b.store(a, z);
        b.ret(None);
        let f = b.finish(&mut p);
        assert_eq!(f, f_id_placeholder);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        assert!(eff.of(f).writes.contains(&AbstractObj::Global(g)));
    }

    #[test]
    fn undeclared_externals_clobber_unknown() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::new("f");
        b.call_ext("mystery", &[], None);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        assert!(eff.of(f).clobbers_unknown);
        assert!(!eff.of(f).is_pure());
    }

    #[test]
    fn declared_pure_externals_stay_pure() {
        let mut p = Program::new("t");
        p.declare_extern("sin", ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("f");
        b.call_ext("sin", &[], None);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        assert!(eff.of(f).is_pure());
    }

    /// A declared extern summary is taken at face value: its listed
    /// globals flow into the caller's read/write sets without any
    /// unknown-clobber pessimism.
    #[test]
    fn declared_extern_summaries_list_their_globals() {
        let mut p = Program::new("t");
        let src = p.add_global("src", 1);
        let dst = p.add_global("dst", 1);
        p.declare_extern(
            "transfer",
            ExternEffect {
                reads: vec![src],
                writes: vec![dst],
                ..ExternEffect::default()
            },
        );
        let mut b = FunctionBuilder::new("f");
        b.call_ext("transfer", &[], None);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        let s = eff.of(f);
        assert!(s.reads.contains(&AbstractObj::Global(src)));
        assert!(!s.reads.contains(&AbstractObj::Global(dst)));
        assert!(s.writes.contains(&AbstractObj::Global(dst)));
        assert!(!s.writes.contains(&AbstractObj::Global(src)));
        assert!(!s.clobbers_unknown);
    }

    /// `clobbers_all` dominates the declared object lists: the caller
    /// must be treated as touching unanalyzable memory even when the
    /// extern also names specific globals.
    #[test]
    fn clobber_all_overrides_declared_sets() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        p.declare_extern(
            "memcpyish",
            ExternEffect {
                reads: vec![g],
                clobbers_all: true,
                ..ExternEffect::default()
            },
        );
        let mut b = FunctionBuilder::new("f");
        b.call_ext("memcpyish", &[], None);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        assert!(eff.of(f).clobbers_unknown);
        assert!(eff.of(f).reads.contains(&AbstractObj::Global(g)));
    }

    /// `of_callee` answers for a call *site*: declared externs get
    /// their declared summary, undeclared ones the worst case, and
    /// internal callees their computed summary.
    #[test]
    fn of_callee_summarizes_extern_call_sites() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        p.declare_extern(
            "bump",
            ExternEffect {
                writes: vec![g],
                ..ExternEffect::default()
            },
        );
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let eff = Effects::analyze(&p, &pt);
        let declared = eff.of_callee(&p, &Callee::External("bump".into()));
        assert!(declared.writes.contains(&AbstractObj::Global(g)));
        assert!(declared.reads.is_empty());
        assert!(!declared.clobbers_unknown);
        let undeclared = eff.of_callee(&p, &Callee::External("mystery".into()));
        assert!(undeclared.clobbers_unknown);
        assert!(undeclared.reads.is_empty() && undeclared.writes.is_empty());
    }

    #[test]
    fn conflict_detection_between_summaries() {
        let g = AbstractObj::Global(seqpar_ir::MemObjId::new(0));
        let mut a = EffectSummary::default();
        a.writes.insert(g);
        let mut b = EffectSummary::default();
        b.reads.insert(g);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        let c = EffectSummary::default();
        assert!(!c.conflicts_with(&b));
        // Read/read does not conflict.
        let mut d = EffectSummary::default();
        d.reads.insert(g);
        assert!(!d.conflicts_with(&b));
    }
}
