//! May/must alias queries over memory references.

use crate::points_to::{AbstractObj, PointsTo};
use seqpar_ir::{FuncId, MemRef, Program, ValueId};

/// The answer to an alias query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AliasResult {
    /// The references provably never access the same location.
    No,
    /// The references may access the same location.
    May,
    /// The references provably always access the same location.
    Must,
}

impl AliasResult {
    /// Whether the references can conflict at all.
    pub fn may_alias(self) -> bool {
        !matches!(self, AliasResult::No)
    }
}

/// An alias oracle layered over [`PointsTo`].
///
/// Field sensitivity is applied at the query: distinct static fields of
/// the same object never alias. This models the 176.gcc fix in the paper
/// (§4.2.1), where packed bit-flags had to be split into separate
/// locations to stop spurious conflicts.
#[derive(Debug)]
pub struct AliasQuery<'a> {
    program: &'a Program,
    points_to: &'a PointsTo,
}

impl<'a> AliasQuery<'a> {
    /// Creates a query oracle from analysis results.
    pub fn new(program: &'a Program, points_to: &'a PointsTo) -> Self {
        Self { program, points_to }
    }

    /// The underlying points-to analysis.
    pub fn points_to(&self) -> &PointsTo {
        self.points_to
    }

    /// Classifies two memory references, each in its own function context.
    pub fn alias(&self, fa: FuncId, a: &MemRef, fb: FuncId, b: &MemRef) -> AliasResult {
        let sa = self.points_to.of(fa, a.base);
        let sb = self.points_to.of(fb, b.base);
        // Unknown pointers (empty sets) are treated conservatively.
        if sa.is_empty() || sb.is_empty() {
            return AliasResult::May;
        }
        let overlap: Vec<&AbstractObj> = sa.iter().filter(|o| sb.contains(*o)).collect();
        if overlap.is_empty() {
            return AliasResult::No;
        }
        // Distinct static fields of the same object never overlap.
        if let (Some(f1), Some(f2)) = (a.field, b.field) {
            if f1 != f2 {
                return AliasResult::No;
            }
        }
        // Must-alias: both references resolve to the same single scalar
        // object, same field, and neither is dynamically indexed.
        if sa.len() == 1
            && sb.len() == 1
            && sa == sb
            && a.field == b.field
            && a.index.is_none()
            && b.index.is_none()
        {
            if let AbstractObj::Global(g) = sa.iter().next().unwrap() {
                if self.program.global(*g).size == 1 {
                    return AliasResult::Must;
                }
            }
        }
        AliasResult::May
    }

    /// Convenience query for two references in the same function.
    pub fn alias_in(&self, f: FuncId, a: &MemRef, b: &MemRef) -> AliasResult {
        self.alias(f, a, f, b)
    }

    /// Whether a value may point to a given global.
    pub fn may_point_to_global(&self, f: FuncId, v: ValueId, g: seqpar_ir::MemObjId) -> bool {
        self.points_to.of(f, v).contains(&AbstractObj::Global(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::FunctionBuilder;

    fn setup() -> (Program, FuncId, ValueId, ValueId) {
        let mut p = Program::new("t");
        let g1 = p.add_global("g1", 1);
        let g2 = p.add_global("g2", 8);
        let mut b = FunctionBuilder::new("f");
        let a1 = b.global_addr(g1);
        let a2 = b.global_addr(g2);
        b.ret(None);
        let f = b.finish(&mut p);
        (p, f, a1, a2)
    }

    #[test]
    fn disjoint_objects_do_not_alias() {
        let (p, f, a1, a2) = setup();
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        assert_eq!(
            q.alias_in(f, &MemRef::direct(a1), &MemRef::direct(a2)),
            AliasResult::No
        );
    }

    #[test]
    fn same_scalar_global_must_alias() {
        let (p, f, a1, _) = setup();
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        let r = q.alias_in(f, &MemRef::direct(a1), &MemRef::direct(a1));
        assert_eq!(r, AliasResult::Must);
        assert!(r.may_alias());
    }

    #[test]
    fn arrays_only_may_alias_themselves() {
        let (p, f, _, a2) = setup();
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        // g2 has size 8: two direct refs may alias but are not must.
        assert_eq!(
            q.alias_in(f, &MemRef::direct(a2), &MemRef::direct(a2)),
            AliasResult::May
        );
    }

    #[test]
    fn distinct_fields_never_alias() {
        let (p, f, a1, _) = setup();
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        assert_eq!(
            q.alias_in(f, &MemRef::field(a1, 0), &MemRef::field(a1, 1)),
            AliasResult::No
        );
        assert_eq!(
            q.alias_in(f, &MemRef::field(a1, 3), &MemRef::field(a1, 3)),
            AliasResult::Must
        );
    }

    #[test]
    fn unknown_pointers_are_conservative() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::new("f");
        let x = b.add_param(); // nothing known about this pointer
        let y = b.add_param();
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        assert_eq!(
            q.alias_in(f, &MemRef::direct(x), &MemRef::direct(y)),
            AliasResult::May
        );
    }

    #[test]
    fn indexed_refs_to_same_object_are_may_not_must() {
        let (p, f, a1, _) = setup();
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        let idx = ValueId::new(90);
        assert_eq!(
            q.alias_in(f, &MemRef::indexed(a1, idx), &MemRef::direct(a1)),
            AliasResult::May
        );
    }

    /// Field sensitivity must survive pointer copies: a copy of a
    /// `global_addr` resolves to the same object, so distinct fields
    /// through the copy stay disjoint and same fields stay must-alias.
    #[test]
    fn copied_addresses_keep_field_sensitivity() {
        let mut p = Program::new("t");
        let g1 = p.add_global("g1", 1);
        let mut b = FunctionBuilder::new("f");
        let a1 = b.global_addr(g1);
        let a1c = b.copy(a1);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        assert_eq!(
            q.alias_in(f, &MemRef::field(a1c, 0), &MemRef::field(a1, 1)),
            AliasResult::No
        );
        assert_eq!(
            q.alias_in(f, &MemRef::field(a1c, 2), &MemRef::field(a1, 2)),
            AliasResult::Must
        );
    }

    /// A `gep` derived from one global's address never aliases a
    /// different global, but stays a may-alias of its own base.
    #[test]
    fn gep_chains_stay_within_their_object() {
        let mut p = Program::new("t");
        let g1 = p.add_global("g1", 1);
        let g2 = p.add_global("g2", 8);
        let mut b = FunctionBuilder::new("f");
        let a1 = b.global_addr(g1);
        let a2 = b.global_addr(g2);
        let off = b.const_(3);
        let elem = b.gep(a2, off);
        let elem2 = b.gep(elem, off);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        assert_eq!(
            q.alias_in(f, &MemRef::direct(elem2), &MemRef::direct(a1)),
            AliasResult::No
        );
        assert_eq!(
            q.alias_in(f, &MemRef::direct(elem2), &MemRef::direct(a2)),
            AliasResult::May
        );
        assert!(q.may_point_to_global(f, elem2, g2));
        assert!(!q.may_point_to_global(f, elem2, g1));
    }

    /// Cross-function queries compare abstract objects, not value ids:
    /// two functions independently taking the address of the same
    /// scalar global must-alias each other.
    #[test]
    fn cross_function_references_resolve_to_shared_objects() {
        let mut p = Program::new("t");
        let g1 = p.add_global("g1", 1);
        let mut b1 = FunctionBuilder::new("f1");
        let x1 = b1.global_addr(g1);
        b1.ret(None);
        let f1 = b1.finish(&mut p);
        let mut b2 = FunctionBuilder::new("f2");
        let x2 = b2.global_addr(g1);
        b2.ret(None);
        let f2 = b2.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        let q = AliasQuery::new(&p, &pt);
        assert_eq!(
            q.alias(f1, &MemRef::direct(x1), f2, &MemRef::direct(x2)),
            AliasResult::Must
        );
        assert_eq!(
            q.alias(f1, &MemRef::field(x1, 0), f2, &MemRef::field(x2, 1)),
            AliasResult::No
        );
    }
}
