//! Profile data that refines static dependences.
//!
//! The paper's methodology (§3.1) runs a memory-profiling pass before
//! simulation and informs the simulator of the dynamic dependences that
//! *actually* occurred; speculation is then modelled as serialization only
//! when a speculated dependence manifests. These types carry that
//! information: per-edge manifestation frequencies, branch bias, and
//! value stability.

use seqpar_ir::{Function, InstId, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Observed manifestation frequency of memory-dependence edges.
///
/// `freq(src, dst)` is the fraction of loop iterations in which the
/// dynamic dependence from `src` to `dst` actually occurred. Static
/// may-alias edges absent from the profile take [`MemProfile::default_freq`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemProfile {
    entries: HashMap<(InstId, InstId), f64>,
    /// Frequency assumed for profiled-but-unrecorded edges.
    pub default_freq: f64,
}

impl Default for MemProfile {
    fn default() -> Self {
        Self {
            entries: HashMap::new(),
            default_freq: 0.0,
        }
    }
}

impl MemProfile {
    /// Creates an empty profile where unobserved edges default to `0.0`
    /// (never manifested).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the dependence `src -> dst` manifested in `freq` of
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is outside `0.0..=1.0`.
    pub fn record(&mut self, src: InstId, dst: InstId, freq: f64) {
        assert!(
            (0.0..=1.0).contains(&freq),
            "frequency must be in [0,1], got {freq}"
        );
        self.entries.insert((src, dst), freq);
    }

    /// Records a frequency keyed by the diagnostic labels of the involved
    /// instructions (convenience for workload models).
    ///
    /// # Panics
    ///
    /// Panics if either label is missing from `func`.
    pub fn record_by_label(&mut self, func: &Function, src: &str, dst: &str, freq: f64) {
        let find = |label: &str| {
            func.inst_ids()
                .find(|i| func.inst(*i).label.as_deref() == Some(label))
                .unwrap_or_else(|| panic!("no instruction labelled {label:?}"))
        };
        self.record(find(src), find(dst), freq);
    }

    /// The manifestation frequency of `src -> dst`.
    pub fn freq(&self, src: InstId, dst: InstId) -> f64 {
        self.entries
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_freq)
    }

    /// Whether any edge has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Observed taken-probability of conditional branches, keyed by the block
/// whose terminator branches.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    entries: HashMap<seqpar_ir::BlockId, f64>,
}

impl BranchProfile {
    /// Creates an empty branch profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the branch terminating `block` takes its true path
    /// with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn record(&mut self, block: seqpar_ir::BlockId, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.entries.insert(block, p);
    }

    /// The taken probability of the branch in `block`, if profiled.
    pub fn taken_prob(&self, block: seqpar_ir::BlockId) -> Option<f64> {
        self.entries.get(&block).copied()
    }

    /// Whether the branch is strongly biased (taken or not-taken with
    /// probability at least `bias`).
    pub fn is_biased(&self, block: seqpar_ir::BlockId, bias: f64) -> bool {
        self.taken_prob(block)
            .map(|p| p >= bias || p <= 1.0 - bias)
            .unwrap_or(false)
    }
}

/// Observed cross-iteration stability of values: the fraction of
/// iterations in which a value equals its previous-iteration value.
///
/// This is what nominates value-speculation candidates — e.g. 253.perlbmk's
/// `PL_stack_sp` having the same value at every `NEXTSTATE` (§4.1.3), or
/// 186.crafty's search state restored by `UnMakeMove` (§4.3.1).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ValueProfile {
    entries: HashMap<ValueId, f64>,
}

impl ValueProfile {
    /// Creates an empty value profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `value` is iteration-stable with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn record(&mut self, value: ValueId, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.entries.insert(value, p);
    }

    /// The stability of `value`, if profiled.
    pub fn stability(&self, value: ValueId) -> Option<f64> {
        self.entries.get(&value).copied()
    }
}

/// All profile information about one loop, as produced by a profiling run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LoopProfile {
    /// Memory-dependence manifestation frequencies.
    pub memory: MemProfile,
    /// Branch bias.
    pub branches: BranchProfile,
    /// Value stability.
    pub values: ValueProfile,
    /// Average iterations per invocation of the loop.
    pub trip_count: u64,
}

impl LoopProfile {
    /// Creates an empty profile with the given trip count.
    pub fn with_trip_count(trip_count: u64) -> Self {
        Self {
            trip_count,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{BlockId, FunctionBuilder};

    #[test]
    fn mem_profile_defaults_unrecorded_edges() {
        let mut p = MemProfile::new();
        p.record(InstId::new(1), InstId::new(2), 0.25);
        assert_eq!(p.freq(InstId::new(1), InstId::new(2)), 0.25);
        assert_eq!(p.freq(InstId::new(2), InstId::new(1)), 0.0);
        let with_default = MemProfile {
            default_freq: 1.0,
            ..MemProfile::new()
        };
        assert_eq!(with_default.freq(InstId::new(9), InstId::new(9)), 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn mem_profile_rejects_bad_frequency() {
        MemProfile::new().record(InstId::new(0), InstId::new(1), 1.5);
    }

    #[test]
    fn record_by_label_resolves_instructions() {
        let mut b = FunctionBuilder::new("f");
        let _ = b.const_(1);
        b.label_last("producer");
        let _ = b.const_(2);
        b.label_last("consumer");
        b.ret(None);
        let f = b.into_function();
        let mut p = MemProfile::new();
        p.record_by_label(&f, "producer", "consumer", 0.5);
        assert_eq!(p.freq(InstId::new(0), InstId::new(1)), 0.5);
    }

    #[test]
    fn branch_bias_classification() {
        let mut p = BranchProfile::new();
        p.record(BlockId::new(0), 0.999);
        p.record(BlockId::new(1), 0.5);
        assert!(p.is_biased(BlockId::new(0), 0.95));
        assert!(!p.is_biased(BlockId::new(1), 0.95));
        assert!(!p.is_biased(BlockId::new(7), 0.95));
    }

    #[test]
    fn value_stability_round_trips() {
        let mut p = ValueProfile::new();
        p.record(ValueId::new(3), 0.97);
        assert_eq!(p.stability(ValueId::new(3)), Some(0.97));
        assert_eq!(p.stability(ValueId::new(4)), None);
    }
}
