//! Register (SSA def-use) dependences with loop-carried classification.

use seqpar_ir::{Function, InstId, Loop, Opcode, ValueId};
use std::collections::HashMap;

/// One register dependence: `def_inst` produces a value consumed by
/// `use_inst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegDep {
    /// Producer instruction.
    pub def_inst: InstId,
    /// Consumer instruction.
    pub use_inst: InstId,
    /// The value flowing along the edge.
    pub value: ValueId,
    /// Whether the value flows across loop iterations (through a header
    /// phi) rather than within one iteration.
    pub carried: bool,
}

/// Computes register dependences among the instructions of `scope`
/// (typically a loop body), classifying loop-carried edges relative to
/// `target_loop` when given.
///
/// In SSA form, the only way a value crosses the back edge of a loop is
/// through a phi at the loop header whose operand comes from a latch. An
/// edge `def -> phi` is therefore *carried* exactly when the phi sits in
/// the header of `target_loop` and the def lies inside the loop body.
pub fn reg_deps(func: &Function, scope: &[InstId], target_loop: Option<&Loop>) -> Vec<RegDep> {
    let in_scope: HashMap<InstId, usize> =
        scope.iter().enumerate().map(|(idx, i)| (*i, idx)).collect();
    let mut def_site: HashMap<ValueId, InstId> = HashMap::new();
    for &i in scope {
        if let Some(d) = func.inst(i).def {
            def_site.insert(d, i);
        }
    }
    let header_insts: Vec<InstId> = target_loop
        .map(|l| func.block(l.header).insts.clone())
        .unwrap_or_default();
    let mut deps = Vec::new();
    for &use_inst in scope {
        for &op in &func.inst(use_inst).operands {
            let Some(&def_inst) = def_site.get(&op) else {
                continue;
            };
            if !in_scope.contains_key(&def_inst) {
                continue;
            }
            let is_header_phi = matches!(func.inst(use_inst).opcode, Opcode::Phi)
                && header_insts.contains(&use_inst);
            // A def feeding a header phi from inside the loop flows around
            // the back edge.
            let carried = is_header_phi && def_inst != use_inst;
            deps.push(RegDep {
                def_inst,
                use_inst,
                value: op,
                carried,
            });
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{FunctionBuilder, LoopForest};

    /// i = phi(0, i+1); sum = phi(0, sum+i)
    fn counting_loop() -> (Function, LoopForest) {
        let mut b = FunctionBuilder::new("count");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let zero = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(&[zero, ValueId::new(99)]); // patched below
        let one = b.const_(1);
        let next = b.binop(Opcode::Add, i, one);
        let done = b.binop(Opcode::CmpLt, next, one);
        b.cond_branch(done, header, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.into_function();
        // Patch the phi's second operand to be `next` (the back-edge value).
        let header_insts = f.block(seqpar_ir::BlockId::new(1)).insts.clone();
        let phi_id = header_insts[0];
        f.inst_mut(phi_id).operands[1] = next;
        let forest = LoopForest::build(&f);
        (f, forest)
    }

    use seqpar_ir::{Function, Opcode, ValueId};

    #[test]
    fn intra_iteration_deps_are_not_carried() {
        let (f, forest) = counting_loop();
        let (lid, l) = forest.loops().next().unwrap();
        let scope = forest.body_insts(lid, &f);
        let deps = reg_deps(&f, &scope, Some(l));
        // i -> next (phi feeding the add) is intra-iteration.
        let phi = scope[0];
        let add = scope[2];
        assert!(deps
            .iter()
            .any(|d| d.def_inst == phi && d.use_inst == add && !d.carried));
    }

    #[test]
    fn back_edge_phi_input_is_carried() {
        let (f, forest) = counting_loop();
        let (lid, l) = forest.loops().next().unwrap();
        let scope = forest.body_insts(lid, &f);
        let deps = reg_deps(&f, &scope, Some(l));
        let phi = scope[0];
        let add = scope[2];
        // next -> i (the add feeding the header phi) crosses iterations.
        assert!(deps
            .iter()
            .any(|d| d.def_inst == add && d.use_inst == phi && d.carried));
    }

    #[test]
    fn defs_outside_scope_are_ignored() {
        let (f, forest) = counting_loop();
        let (lid, l) = forest.loops().next().unwrap();
        let scope = forest.body_insts(lid, &f);
        let deps = reg_deps(&f, &scope, Some(l));
        // The `zero` const lives in the entry block, outside the loop:
        // no edge should originate from it.
        for d in &deps {
            assert!(scope.contains(&d.def_inst));
            assert!(scope.contains(&d.use_inst));
        }
    }

    #[test]
    fn without_target_loop_nothing_is_carried() {
        let (f, forest) = counting_loop();
        let (lid, _) = forest.loops().next().unwrap();
        let scope = forest.body_insts(lid, &f);
        let deps = reg_deps(&f, &scope, None);
        assert!(deps.iter().all(|d| !d.carried));
        assert!(!deps.is_empty());
    }
}
