//! Constancy and loop-invariance analysis.
//!
//! The paper cites "variable value analysis" \[22\] among the techniques
//! that unlock parallelism: proving a value constant at a program point
//! removes dependences outright, and proving it *likely* stable nominates
//! it for value speculation. This module provides the static half — a
//! simple sparse conditional-constant lattice plus loop-invariance — while
//! [`crate::profile::ValueProfile`] provides the dynamic half.

use seqpar_ir::{Function, InstId, Loop, Opcode, ValueId};
use std::collections::HashMap;

/// The constant-propagation lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lattice {
    /// Not yet known (optimistic).
    Top,
    /// Proven a compile-time constant.
    Const(i64),
    /// Varies at runtime.
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a),
            _ => Lattice::Bottom,
        }
    }
}

/// Results of constancy/invariance analysis over one function.
#[derive(Clone, Debug, Default)]
pub struct ValueFacts {
    consts: HashMap<ValueId, i64>,
}

impl ValueFacts {
    /// Runs constant propagation over `func` (flow-insensitive meet over
    /// all reaching definitions; precise enough for loop models).
    pub fn analyze(func: &Function) -> Self {
        let mut state: HashMap<ValueId, Lattice> = HashMap::new();
        for &p in &func.params {
            state.insert(p, Lattice::Bottom);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in func.inst_ids() {
                let inst = func.inst(i);
                let Some(def) = inst.def else { continue };
                let get = |v: ValueId, st: &HashMap<ValueId, Lattice>| {
                    st.get(&v).copied().unwrap_or(Lattice::Top)
                };
                let new = match &inst.opcode {
                    Opcode::Const(c) => Lattice::Const(*c),
                    Opcode::Copy => get(inst.operands[0], &state),
                    Opcode::Phi => inst
                        .operands
                        .iter()
                        .fold(Lattice::Top, |acc, &v| acc.meet(get(v, &state))),
                    Opcode::Add
                    | Opcode::Sub
                    | Opcode::Mul
                    | Opcode::Div
                    | Opcode::Rem
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Shl
                    | Opcode::Shr
                    | Opcode::CmpEq
                    | Opcode::CmpNe
                    | Opcode::CmpLt
                    | Opcode::CmpLe => {
                        let a = get(inst.operands[0], &state);
                        let b = get(inst.operands[1], &state);
                        match (a, b) {
                            (Lattice::Const(x), Lattice::Const(y)) => {
                                eval(&inst.opcode, x, y).map_or(Lattice::Bottom, Lattice::Const)
                            }
                            (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                            _ => Lattice::Top,
                        }
                    }
                    // Loads, calls, and address-ofs produce runtime values.
                    _ => Lattice::Bottom,
                };
                let old = state.get(&def).copied().unwrap_or(Lattice::Top);
                let merged = old.meet(new);
                if merged != old {
                    state.insert(def, merged);
                    changed = true;
                }
            }
        }
        let consts = state
            .into_iter()
            .filter_map(|(v, l)| match l {
                Lattice::Const(c) => Some((v, c)),
                _ => None,
            })
            .collect();
        Self { consts }
    }

    /// The proven constant value of `v`, if any.
    pub fn const_of(&self, v: ValueId) -> Option<i64> {
        self.consts.get(&v).copied()
    }

    /// Whether `v` is proven constant.
    pub fn is_const(&self, v: ValueId) -> bool {
        self.consts.contains_key(&v)
    }
}

fn eval(op: &Opcode, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => a.checked_div(b)?,
        Opcode::Rem => a.checked_rem(b)?,
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
        Opcode::Shr => a.checked_shr(u32::try_from(b).ok()?)?,
        Opcode::CmpEq => i64::from(a == b),
        Opcode::CmpNe => i64::from(a != b),
        Opcode::CmpLt => i64::from(a < b),
        Opcode::CmpLe => i64::from(a <= b),
        _ => return None,
    })
}

/// Whether instruction `i` is invariant in `l`: its operands are all
/// defined outside the loop (or themselves invariant) and it does not
/// touch memory.
pub fn is_loop_invariant(func: &Function, l: &Loop, i: InstId) -> bool {
    fn go(func: &Function, l: &Loop, i: InstId, depth: usize) -> bool {
        if depth > 64 {
            return false; // defensive cut-off for cyclic (phi) chains
        }
        let inst = func.inst(i);
        if inst.opcode.may_read_memory()
            || inst.opcode.may_write_memory()
            || matches!(inst.opcode, Opcode::Phi)
        {
            return false;
        }
        inst.operands.iter().all(|&op| match func.def_of(op) {
            None => true, // parameter: defined outside any loop
            Some(d) => {
                let in_loop = func.block_of(d).map(|b| l.contains(b)).unwrap_or(false);
                !in_loop || go(func, l, d, depth + 1)
            }
        })
    }
    go(func, l, i, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{FunctionBuilder, LoopForest};

    #[test]
    fn constants_fold_through_arithmetic() {
        let mut b = FunctionBuilder::new("f");
        let x = b.const_(6);
        let y = b.const_(7);
        let m = b.binop(Opcode::Mul, x, y);
        let c = b.binop(Opcode::CmpEq, m, m);
        b.ret(Some(c));
        let f = b.into_function();
        let facts = ValueFacts::analyze(&f);
        assert_eq!(facts.const_of(m), Some(42));
        assert_eq!(facts.const_of(c), Some(1));
    }

    #[test]
    fn params_and_loads_are_not_constant() {
        let mut p = seqpar_ir::Program::new("t");
        let g = p.add_global("g", 1);
        let mut b = FunctionBuilder::new("f");
        let x = b.add_param();
        let a = b.global_addr(g);
        let v = b.load(a);
        let s = b.binop(Opcode::Add, x, v);
        b.ret(Some(s));
        let f = b.into_function();
        let facts = ValueFacts::analyze(&f);
        assert!(!facts.is_const(x));
        assert!(!facts.is_const(v));
        assert!(!facts.is_const(s));
    }

    #[test]
    fn phi_of_equal_constants_is_constant() {
        let mut b = FunctionBuilder::new("f");
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        let c = b.const_(1);
        b.cond_branch(c, t, e);
        b.switch_to(t);
        let x1 = b.const_(5);
        b.jump(j);
        b.switch_to(e);
        let x2 = b.const_(5);
        b.jump(j);
        b.switch_to(j);
        let phi = b.phi(&[x1, x2]);
        b.ret(Some(phi));
        let f = b.into_function();
        let facts = ValueFacts::analyze(&f);
        assert_eq!(facts.const_of(phi), Some(5));
    }

    #[test]
    fn phi_of_distinct_constants_is_not_constant() {
        let mut b = FunctionBuilder::new("f");
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        let c = b.const_(1);
        b.cond_branch(c, t, e);
        b.switch_to(t);
        let x1 = b.const_(5);
        b.jump(j);
        b.switch_to(e);
        let x2 = b.const_(6);
        b.jump(j);
        b.switch_to(j);
        let phi = b.phi(&[x1, x2]);
        b.ret(Some(phi));
        let f = b.into_function();
        let facts = ValueFacts::analyze(&f);
        assert!(!facts.is_const(phi));
    }

    #[test]
    fn division_by_zero_is_bottom_not_panic() {
        let mut b = FunctionBuilder::new("f");
        let x = b.const_(1);
        let z = b.const_(0);
        let d = b.binop(Opcode::Div, x, z);
        b.ret(Some(d));
        let facts = ValueFacts::analyze(&b.into_function());
        assert!(!facts.is_const(d));
    }

    #[test]
    fn loop_invariance_detects_hoistable_ops() {
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let pre = b.const_(10);
        b.jump(header);
        b.switch_to(header);
        let inv = b.binop(Opcode::Add, pre, pre); // invariant
        let phi_placeholder = b.phi(&[pre, pre]); // variant (phi)
        let var = b.binop(Opcode::Add, phi_placeholder, pre); // depends on phi
        let c = b.binop(Opcode::CmpEq, var, inv);
        b.cond_branch(c, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.into_function();
        let forest = LoopForest::build(&f);
        let (lid, l) = forest.loops().next().unwrap();
        let body = forest.body_insts(lid, &f);
        assert!(is_loop_invariant(&f, l, body[0]));
        assert!(!is_loop_invariant(&f, l, body[1]));
        assert!(!is_loop_invariant(&f, l, body[2]));
    }
}
