//! Memory-dependence construction over a loop body.

use crate::alias::AliasQuery;
use crate::effects::{EffectSummary, Effects};
use crate::points_to::AbstractObj;
use crate::profile::MemProfile;
use seqpar_ir::{FuncId, InstId, MemRef, Opcode, Program};
use std::collections::BTreeSet;

/// One memory dependence between two instructions of a loop body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemDep {
    /// Source (earlier in the dependence direction).
    pub src: InstId,
    /// Destination.
    pub dst: InstId,
    /// Whether the dependence crosses loop iterations.
    pub carried: bool,
    /// Manifestation frequency from the profile (`1.0` when unprofiled).
    pub freq: f64,
}

/// The memory access behaviour of one instruction, for pairing.
#[derive(Clone, Debug)]
enum Access {
    Load(MemRef),
    Store(MemRef),
    Call(EffectSummary),
}

impl Access {
    fn writes(&self) -> bool {
        match self {
            Access::Load(_) => false,
            Access::Store(_) => true,
            Access::Call(s) => !s.writes.is_empty() || s.clobbers_unknown,
        }
    }
}

/// Computes memory dependences among `scope` (instructions of a loop body
/// in program order).
///
/// Every conflicting pair produces an intra-iteration edge in program
/// order and a loop-carried edge in the reverse direction; an instruction
/// that conflicts with itself (e.g. a store to a shared object) produces a
/// carried self-edge. When a `profile` is supplied, carried-edge
/// frequencies are refined from it — mirroring the paper's
/// memory-profiling pass, which lets speculation target the dependences
/// that rarely manifest.
pub fn mem_deps(
    program: &Program,
    func: FuncId,
    scope: &[InstId],
    aliases: &AliasQuery<'_>,
    effects: &Effects,
    profile: Option<&MemProfile>,
) -> Vec<MemDep> {
    let f = program.function(func);
    let accesses: Vec<(InstId, Access)> = scope
        .iter()
        .filter_map(|&i| {
            let acc = match &f.inst(i).opcode {
                Opcode::Load(m) => Access::Load(*m),
                Opcode::Store(m) => Access::Store(*m),
                Opcode::Call { callee, .. } => Access::Call(effects.of_callee(program, callee)),
                _ => return None,
            };
            Some((i, acc))
        })
        .collect();
    let mut deps = Vec::new();
    for (ai, (inst_a, acc_a)) in accesses.iter().enumerate() {
        for (inst_b, acc_b) in accesses.iter().skip(ai) {
            let same = inst_a == inst_b;
            if !acc_a.writes() && !acc_b.writes() {
                continue; // read-read never conflicts
            }
            if !conflicts(program, func, acc_a, acc_b, aliases) {
                continue;
            }
            if same {
                // Self-conflict across iterations (store-store or a call
                // writing state it also reads).
                if acc_a.writes() {
                    deps.push(MemDep {
                        src: *inst_a,
                        dst: *inst_a,
                        carried: true,
                        freq: lookup(profile, *inst_a, *inst_a),
                    });
                }
            } else {
                deps.push(MemDep {
                    src: *inst_a,
                    dst: *inst_b,
                    carried: false,
                    freq: lookup(profile, *inst_a, *inst_b),
                });
                deps.push(MemDep {
                    src: *inst_b,
                    dst: *inst_a,
                    carried: true,
                    freq: lookup(profile, *inst_b, *inst_a),
                });
            }
        }
    }
    deps
}

fn lookup(profile: Option<&MemProfile>, src: InstId, dst: InstId) -> f64 {
    profile.map(|p| p.freq(src, dst)).unwrap_or(1.0)
}

fn conflicts(
    program: &Program,
    func: FuncId,
    a: &Access,
    b: &Access,
    aliases: &AliasQuery<'_>,
) -> bool {
    match (a, b) {
        (Access::Load(ma), Access::Store(mb))
        | (Access::Store(ma), Access::Load(mb))
        | (Access::Store(ma), Access::Store(mb)) => aliases.alias_in(func, ma, mb).may_alias(),
        (Access::Load(_), Access::Load(_)) => false,
        (Access::Call(s), Access::Load(m)) | (Access::Load(m), Access::Call(s)) => {
            summary_touches(s, aliases, func, m, /*write_needed=*/ true)
        }
        (Access::Call(s), Access::Store(m)) | (Access::Store(m), Access::Call(s)) => {
            summary_touches(s, aliases, func, m, /*write_needed=*/ false)
        }
        (Access::Call(sa), Access::Call(sb)) => {
            let _ = program;
            sa.conflicts_with(sb)
        }
    }
}

/// Whether a call summary touches the location of `m`. For loads, only
/// the summary's *writes* matter; for stores, both reads and writes.
fn summary_touches(
    s: &EffectSummary,
    aliases: &AliasQuery<'_>,
    func: FuncId,
    m: &MemRef,
    write_needed: bool,
) -> bool {
    if s.clobbers_unknown {
        return true;
    }
    let pts = aliases.points_to().of(func, m.base);
    if pts.is_empty() {
        // Unknown pointer: conservative if the call has any effect.
        return !s.writes.is_empty() || (!write_needed && !s.reads.is_empty());
    }
    let touched: &BTreeSet<AbstractObj> = &s.writes;
    if pts.iter().any(|o| touched.contains(o)) {
        return true;
    }
    if !write_needed && pts.iter().any(|o| s.reads.contains(o)) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points_to::PointsTo;
    use seqpar_ir::{ExternEffect, FunctionBuilder, LoopForest};

    struct Fixture {
        program: Program,
        func: FuncId,
        scope: Vec<InstId>,
    }

    /// Loop body: load g; store g; call ext "touch_h" (writes h); store h2.
    fn fixture() -> Fixture {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let h = p.add_global("h", 1);
        let h2 = p.add_global("h2", 1);
        p.declare_extern(
            "touch_h",
            ExternEffect {
                writes: vec![h],
                ..Default::default()
            },
        );
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let ag = b.global_addr(g);
        let v = b.load(ag);
        b.label_last("load_g");
        b.store(ag, v);
        let ah2 = b.global_addr(h2);
        b.store(ah2, v);
        b.call_ext("touch_h", &[], None);
        let c = b.binop(Opcode::CmpEq, v, v);
        b.cond_branch(c, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let func = b.finish(&mut p);
        let forest = LoopForest::build(p.function(func));
        let (lid, _) = forest.loops().next().unwrap();
        let scope = forest.body_insts(lid, p.function(func));
        Fixture {
            program: p,
            func,
            scope,
        }
    }

    fn deps_of(fx: &Fixture, profile: Option<&MemProfile>) -> Vec<MemDep> {
        let pt = PointsTo::analyze(&fx.program);
        let aliases = AliasQuery::new(&fx.program, &pt);
        let effects = Effects::analyze(&fx.program, &pt);
        mem_deps(&fx.program, fx.func, &fx.scope, &aliases, &effects, profile)
    }

    #[test]
    fn load_store_pair_creates_intra_and_carried_edges() {
        let fx = fixture();
        let deps = deps_of(&fx, None);
        let f = fx.program.function(fx.func);
        let load_g = f
            .inst_ids()
            .find(|i| f.inst(*i).label.as_deref() == Some("load_g"))
            .unwrap();
        // Intra: load -> store (program order), carried: store -> load.
        assert!(deps.iter().any(|d| d.src == load_g && !d.carried));
        assert!(deps.iter().any(|d| d.dst == load_g && d.carried));
    }

    #[test]
    fn store_has_carried_self_edge() {
        let fx = fixture();
        let deps = deps_of(&fx, None);
        assert!(deps.iter().any(|d| d.src == d.dst && d.carried));
    }

    #[test]
    fn disjoint_objects_produce_no_cross_edges() {
        let fx = fixture();
        let deps = deps_of(&fx, None);
        let f = fx.program.function(fx.func);
        // The store to h2 must not depend on the load/store of g.
        let store_h2 = fx
            .scope
            .iter()
            .copied()
            .filter(|i| matches!(f.inst(*i).opcode, Opcode::Store(_)))
            .nth(1)
            .unwrap();
        let load_g = f
            .inst_ids()
            .find(|i| f.inst(*i).label.as_deref() == Some("load_g"))
            .unwrap();
        assert!(!deps
            .iter()
            .any(|d| (d.src == store_h2 && d.dst == load_g)
                || (d.src == load_g && d.dst == store_h2)));
    }

    #[test]
    fn call_conflicts_only_with_objects_in_its_summary() {
        let fx = fixture();
        let deps = deps_of(&fx, None);
        let f = fx.program.function(fx.func);
        let call = fx
            .scope
            .iter()
            .copied()
            .find(|i| f.inst(*i).opcode.is_call())
            .unwrap();
        let load_g = f
            .inst_ids()
            .find(|i| f.inst(*i).label.as_deref() == Some("load_g"))
            .unwrap();
        // touch_h writes only h: no dependence with accesses to g.
        assert!(!deps.iter().any(|d| d.src == call && d.dst == load_g));
        // But the call self-conflicts across iterations (writes h twice).
        assert!(deps
            .iter()
            .any(|d| d.src == call && d.dst == call && d.carried));
    }

    #[test]
    fn profile_refines_carried_frequencies() {
        let fx = fixture();
        let f = fx.program.function(fx.func);
        let load_g = f
            .inst_ids()
            .find(|i| f.inst(*i).label.as_deref() == Some("load_g"))
            .unwrap();
        let store_g = fx
            .scope
            .iter()
            .copied()
            .find(|i| matches!(f.inst(*i).opcode, Opcode::Store(_)))
            .unwrap();
        let mut profile = MemProfile::new();
        profile.record(store_g, load_g, 0.01);
        let deps = deps_of(&fx, Some(&profile));
        let carried = deps
            .iter()
            .find(|d| d.src == store_g && d.dst == load_g && d.carried)
            .unwrap();
        assert_eq!(carried.freq, 0.01);
        // Unprofiled edges default to the profile's default (0.0).
        let self_edge = deps.iter().find(|d| d.src == d.dst).unwrap();
        assert_eq!(self_edge.freq, 0.0);
    }

    #[test]
    fn distinct_fields_do_not_conflict() {
        // The 176.gcc bit-flag fix: a store to field 0 must not order
        // against a load of field 1 of the same object.
        let mut p = Program::new("t");
        let obj = p.add_global("ir_node", 4);
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let base = b.global_addr(obj);
        let public_flag = b.load_ref(seqpar_ir::MemRef::field(base, 1));
        let st = {
            let zero = b.const_(0);
            b.store_ref(seqpar_ir::MemRef::field(base, 0), zero)
        };
        let done = b.binop(Opcode::CmpEq, public_flag, public_flag);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let func = b.finish(&mut p);
        let forest = LoopForest::build(p.function(func));
        let (lid, _) = forest.loops().next().unwrap();
        let scope = forest.body_insts(lid, p.function(func));
        let pt = PointsTo::analyze(&p);
        let aliases = AliasQuery::new(&p, &pt);
        let effects = Effects::analyze(&p, &pt);
        let deps = mem_deps(&p, func, &scope, &aliases, &effects, None);
        // The store only self-conflicts; no edge touches the load.
        let load_id = p
            .function(func)
            .inst_ids()
            .find(|i| matches!(p.function(func).inst(*i).opcode, Opcode::Load(_)))
            .unwrap();
        assert!(!deps.iter().any(|d| d.src == load_id || d.dst == load_id));
        assert!(deps.iter().any(|d| d.src == st && d.dst == st && d.carried));
    }

    #[test]
    fn without_profile_all_edges_are_certain() {
        let fx = fixture();
        let deps = deps_of(&fx, None);
        assert!(deps.iter().all(|d| d.freq == 1.0));
    }
}
