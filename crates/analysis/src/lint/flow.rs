//! Checker 1: forward-flow soundness.
//!
//! A pipelined partition is sound when values only flow *forward*
//! through the pipeline. Concretely, over the post-speculation PDG:
//!
//! * an **intra-iteration** edge `src → dst` needs
//!   `stage(src) <= stage(dst)` — within an iteration, later stages
//!   consume what earlier stages produced;
//! * a **loop-carried** edge with `stage(src) < stage(dst)` is sound:
//!   iteration *i+1*'s consumer in a later stage starts after
//!   iteration *i*'s producer finished (pipeline fill order);
//! * a carried edge **within one sequential stage** is sound: the
//!   stage runs its iterations in order on one worker;
//! * a carried edge within a **replicated** stage is a violation
//!   ([`Lint::CarriedInReplicated`]): the pool runs iterations
//!   concurrently with no ordering to satisfy the dependence;
//! * any edge with `stage(src) > stage(dst)` is a violation
//!   ([`Lint::BackwardDep`]): the consumer would need a value its
//!   producer has not yet computed, and no speculation covers it —
//!   covered edges were removed from the graph before partitioning.
//!
//! Speculated dependences are audited separately: each must carry a
//! commit-time validation obligation ([`Lint::UnvalidatedSpeculation`])
//! — without one, a manifested dependence commits a wrong value
//! silently — and ones expected to misfire often are flagged as
//! [`Lint::HighMisspec`] warnings.

use super::diag::Lint;
use super::Ctx;

/// Speculations misfiring more often than this waste more recovery
/// work than pipelining recovers (paper §3.1 models misspeculation as
/// full loss of overlap for the iteration).
pub(super) const MISSPEC_WARN_THRESHOLD: f64 = 0.25;

pub(super) fn check(ctx: &Ctx) -> Vec<Lint> {
    let input = ctx.input;
    let stages = input.stages;
    let mut lints = Vec::new();

    for e in input.pdg.edges() {
        let src_stage = stages.stage_of(e.src);
        let dst_stage = stages.stage_of(e.dst);
        if src_stage > dst_stage {
            lints.push(Lint::BackwardDep {
                src: e.src,
                dst: e.dst,
                kind: e.kind,
                carried: e.carried,
                src_stage,
                dst_stage,
            });
        } else if e.carried && src_stage == dst_stage && stages.is_replicated(src_stage) {
            lints.push(Lint::CarriedInReplicated {
                src: e.src,
                dst: e.dst,
                kind: e.kind,
                stage: src_stage,
            });
        }
    }

    for s in input.speculated {
        if !s.commit_validated {
            lints.push(Lint::UnvalidatedSpeculation {
                src: s.src,
                dst: s.dst,
                kind: s.kind,
            });
        }
        if s.misspec_rate > MISSPEC_WARN_THRESHOLD {
            lints.push(Lint::HighMisspec {
                src: s.src,
                dst: s.dst,
                rate: s.misspec_rate,
            });
        }
    }

    lints
}
