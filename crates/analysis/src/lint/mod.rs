//! `seqpar-lint`: static partition-soundness checking.
//!
//! The parallelizer's output — a stage assignment over a
//! [`LoopPdg`], a set of speculated dependences, and an
//! [`ExecutionPlan`] — encodes a claim: *running the loop under this
//! plan preserves sequential semantics*. The checkers here audit that
//! claim before anything runs:
//!
//! 1. `flow` — forward-flow soundness: every surviving dependence
//!    must respect pipeline stage order, and every removed (speculated)
//!    dependence must carry a commit-time validation obligation;
//! 2. `races` — replicated-stage race detection: points-to and
//!    effect summaries find may-aliasing write/write or write/read
//!    pairs on unversioned state reachable from two concurrent
//!    iterations;
//! 3. `annotations` — annotation audit: `Commutative` groups whose
//!    side effects escape the group, and Y-branch erasures that guard
//!    stores to live-out state.
//!
//! Findings are typed ([`Lint`]), carry stable codes ([`LintCode`],
//! `SP0001`–`SP0102`), and lower to the same
//! [`Diagnostic`] type the runtime's
//! dynamic validators render with.

mod annotations;
mod diag;
mod flow;
mod races;

pub use diag::{Lint, LintCode};

use crate::effects::{EffectSummary, Effects};
use crate::pdg::{DepKind, LoopPdg, PdgNode};
use crate::points_to::{AbstractObj, PointsTo};
use seqpar_ir::{BlockId, Loop, LoopForest, Opcode, Program};
use seqpar_runtime::{Diagnostic, ExecutionPlan, PlanShape, Severity};
use std::collections::BTreeSet;
use std::fmt;

/// How a pipeline stage executes its iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Iterations run in order on one logical worker; carried
    /// dependences inside the stage are satisfied by program order.
    Sequential,
    /// Iterations are distributed over a worker pool and run
    /// concurrently, unordered.
    Replicated,
}

/// A compiler-neutral view of a partition: the pipeline stage of each
/// PDG node plus each stage's execution discipline.
///
/// The core crate lowers its `Partition` (stages A/B/C) into this form
/// so the checkers need no dependency on the partitioner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagePlan {
    stage_of: Vec<u8>,
    kinds: Vec<StageKind>,
}

impl StagePlan {
    /// Creates a stage plan.
    ///
    /// # Panics
    ///
    /// Panics if any node's stage index is out of range of `kinds`.
    pub fn new(stage_of: Vec<u8>, kinds: Vec<StageKind>) -> Self {
        assert!(
            stage_of.iter().all(|&s| (s as usize) < kinds.len()),
            "stage index out of range of the declared stage kinds"
        );
        Self { stage_of, kinds }
    }

    /// The standard PS-DSWP three-phase shape: sequential stage 0,
    /// replicated stage 1, sequential stage 2.
    pub fn three_phase(stage_of: Vec<u8>) -> Self {
        Self::new(
            stage_of,
            vec![
                StageKind::Sequential,
                StageKind::Replicated,
                StageKind::Sequential,
            ],
        )
    }

    /// The stage of a PDG node.
    pub fn stage_of(&self, node: usize) -> u8 {
        self.stage_of[node]
    }

    /// The execution discipline of a stage.
    pub fn kind(&self, stage: u8) -> StageKind {
        self.kinds[stage as usize]
    }

    /// The number of pipeline stages.
    pub fn stage_count(&self) -> u8 {
        self.kinds.len() as u8
    }

    /// The number of PDG nodes covered.
    pub fn node_count(&self) -> usize {
        self.stage_of.len()
    }

    /// Whether a stage replicates iterations over a pool.
    pub fn is_replicated(&self, stage: u8) -> bool {
        self.kind(stage) == StageKind::Replicated
    }
}

/// A dependence the parallelizer removed speculatively.
///
/// `src`/`dst` are PDG node indices (speculation preserves node
/// numbering; only edges are removed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeculatedDep {
    /// Producer node.
    pub src: usize,
    /// Consumer node.
    pub dst: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Whether the dependence was loop-carried.
    pub carried: bool,
    /// Profile-estimated probability the dependence manifests.
    pub misspec_rate: f64,
    /// Whether the runtime validates the speculation at commit time
    /// and recovers on misspeculation.
    pub commit_validated: bool,
}

/// Everything the checkers need about one parallelized loop.
#[derive(Clone, Copy, Debug)]
pub struct LintInput<'a> {
    /// The whole program (for points-to, effects, and provenance).
    pub program: &'a Program,
    /// The loop's PDG *after* annotation and speculation passes —
    /// i.e. exactly the graph the partitioner saw.
    pub pdg: &'a LoopPdg,
    /// The stage assignment under audit.
    pub stages: &'a StagePlan,
    /// The dependences removed speculatively before partitioning.
    pub speculated: &'a [SpeculatedDep],
    /// PDG nodes whose memory accesses a transformation (reduction
    /// expansion) privatizes per worker: conflicts confined to these
    /// nodes land on private copies and are not races.
    pub privatized: &'a [usize],
    /// The execution plan, when one has been laid out already.
    pub plan: Option<&'a ExecutionPlan>,
}

/// One finding paired with its rendered diagnostic.
#[derive(Clone, Debug)]
pub struct LintEntry {
    /// The typed finding.
    pub lint: Lint,
    /// Its lowered, rendering-ready diagnostic.
    pub diagnostic: Diagnostic,
}

/// The result of a lint run: findings in checker order.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    entries: Vec<LintEntry>,
}

impl LintReport {
    /// The findings, in checker order.
    pub fn entries(&self) -> &[LintEntry] {
        &self.entries
    }

    /// Whether the run produced no deny-level findings. Warnings do
    /// not make a report unclean.
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// The number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.diagnostic.is_deny())
            .count()
    }

    /// The number of warnings.
    pub fn warn_count(&self) -> usize {
        self.entries.len() - self.deny_count()
    }

    /// All finding codes, in checker order (duplicates preserved).
    pub fn codes(&self) -> Vec<LintCode> {
        self.entries.iter().map(|e| e.lint.code()).collect()
    }

    /// The distinct deny-level codes, sorted.
    pub fn deny_codes(&self) -> Vec<LintCode> {
        let set: BTreeSet<LintCode> = self
            .entries
            .iter()
            .filter(|e| e.lint.severity() == Severity::Deny)
            .map(|e| e.lint.code())
            .collect();
        set.into_iter().collect()
    }

    /// Folds another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.entries.extend(other.entries);
    }

    /// Renders every diagnostic plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.diagnostic.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error{}, {} warning{}\n",
            self.deny_count(),
            if self.deny_count() == 1 { "" } else { "s" },
            self.warn_count(),
            if self.warn_count() == 1 { "" } else { "s" },
        ));
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs every checker over one parallelized loop.
///
/// # Panics
///
/// Panics if `input.stages` does not cover exactly the PDG's nodes.
pub fn run(input: &LintInput) -> LintReport {
    assert_eq!(
        input.stages.node_count(),
        input.pdg.node_count(),
        "stage plan must assign a stage to every PDG node"
    );
    let ctx = Ctx::new(input);
    let mut lints = Vec::new();
    lints.extend(flow::check(&ctx));
    lints.extend(races::check(&ctx));
    lints.extend(annotations::check(&ctx));
    if let Some(plan) = input.plan {
        lints.extend(plan_lints(input.stages, plan));
    }
    let entries = lints
        .into_iter()
        .map(|lint| {
            let diagnostic = lint.to_diagnostic(input.program, input.pdg);
            LintEntry { lint, diagnostic }
        })
        .collect();
    LintReport { entries }
}

/// Checks only plan shape against a stage plan — the piece that can
/// be re-run cheaply when a new [`ExecutionPlan`] is laid out over an
/// already-audited partition.
pub fn check_plan_shape(stages: &StagePlan, plan: &ExecutionPlan) -> LintReport {
    let entries = plan_lints(stages, plan)
        .into_iter()
        .map(|lint| {
            let diagnostic = lint
                .to_diagnostic_contextless()
                .expect("plan lints carry no node provenance");
            LintEntry { lint, diagnostic }
        })
        .collect();
    LintReport { entries }
}

/// Structural findings about an execution plan: shape mismatches
/// (deny) and sequential stages wastefully given multi-core pools
/// (warn).
fn plan_lints(stages: &StagePlan, plan: &ExecutionPlan) -> Vec<Lint> {
    let mut lints = Vec::new();
    let shape = PlanShape::of(plan);
    if let Err(e) = shape.check_against(stages.stage_count()) {
        lints.push(Lint::PlanShape {
            detail: e.to_string(),
        });
    }
    for stage in 0..plan.stage_count().min(stages.stage_count()) {
        if !stages.is_replicated(stage) && shape.multi_core[stage as usize] {
            lints.push(Lint::SequentialStageOnPool { stage });
        }
    }
    lints
}

/// The memory behaviour of one PDG node, resolved to abstract objects.
#[derive(Clone, Debug, Default)]
pub(crate) struct Access {
    /// Objects the node may read.
    pub reads: BTreeSet<AbstractObj>,
    /// Objects the node may write.
    pub writes: BTreeSet<AbstractObj>,
    /// The node may touch memory the analysis cannot name.
    pub unknown: bool,
}

impl Access {
    fn from_summary(s: &EffectSummary) -> Self {
        Self {
            reads: s.reads.clone(),
            writes: s.writes.clone(),
            unknown: s.clobbers_unknown,
        }
    }
}

/// Shared analysis context: whole-program points-to and effect
/// summaries computed once, plus the loop structure of the linted
/// function.
pub(crate) struct Ctx<'a> {
    pub input: &'a LintInput<'a>,
    pub points_to: PointsTo,
    pub effects: Effects,
    forest: LoopForest,
}

impl<'a> Ctx<'a> {
    fn new(input: &'a LintInput<'a>) -> Self {
        let points_to = PointsTo::analyze(input.program);
        let effects = Effects::analyze(input.program, &points_to);
        let forest = LoopForest::build(input.program.function(input.pdg.func()));
        Self {
            input,
            points_to,
            effects,
            forest,
        }
    }

    /// The loop the PDG was built over.
    pub fn linted_loop(&self) -> &Loop {
        self.forest.get(self.input.pdg.loop_id())
    }

    /// The memory access summary of a PDG node, or `None` for nodes
    /// with no memory behaviour.
    pub fn node_access(&self, node: usize) -> Option<Access> {
        let pdg = self.input.pdg;
        let func = self.input.program.function(pdg.func());
        match pdg.nodes().get(node)? {
            PdgNode::Branch(_) => None,
            PdgNode::Inst(id) => {
                let inst = func.inst(*id);
                match &inst.opcode {
                    Opcode::Load(mem) => {
                        let pts = self.points_to.of(pdg.func(), mem.base);
                        Some(Access {
                            reads: pts.iter().copied().collect(),
                            unknown: pts.is_empty(),
                            ..Access::default()
                        })
                    }
                    Opcode::Store(mem) => {
                        let pts = self.points_to.of(pdg.func(), mem.base);
                        Some(Access {
                            writes: pts.iter().copied().collect(),
                            unknown: pts.is_empty(),
                            ..Access::default()
                        })
                    }
                    Opcode::Call { callee, .. } => Some(Access::from_summary(
                        &self.effects.of_callee(self.input.program, callee),
                    )),
                    _ => None,
                }
            }
        }
    }

    /// A display name for an abstract object.
    pub fn object_name(&self, obj: AbstractObj) -> String {
        match obj {
            AbstractObj::Global(g) => self.input.program.global(g).name.clone(),
            AbstractObj::Alloc(f, i) => {
                let func = self.input.program.function(f);
                match &func.inst(i).label {
                    Some(l) => format!("alloc '{l}' in {}", func.name),
                    None => format!("alloc site {i:?} in {}", func.name),
                }
            }
        }
    }

    /// Objects written under the *taken* path of Y-branch-annotated
    /// branches inside the linted loop.
    ///
    /// The Y-branch contract (paper §2.3.1) says the true path may
    /// legally run on any iteration, so the state it re-initialises is
    /// "resettable": concurrent iterations observing either the old or
    /// the reset value are both sequentially explicable, and conflicts
    /// confined to this state are not races.
    pub fn ybranch_reset_objects(&self) -> BTreeSet<AbstractObj> {
        let pdg = self.input.pdg;
        let program = self.input.program;
        let func = program.function(pdg.func());
        let l = self.linted_loop();
        let mut objects = BTreeSet::new();
        for (node, n) in pdg.nodes().iter().enumerate() {
            let PdgNode::Branch(b) = n else { continue };
            if pdg.ybranch_hint(node).is_none() {
                continue;
            }
            let seqpar_ir::Terminator::CondBranch { then_block, .. } = &func.block(*b).terminator
            else {
                continue;
            };
            if !l.contains(*then_block) {
                continue;
            }
            objects.extend(self.block_written_objects(*then_block));
        }
        objects
    }

    /// Objects written by the stores and calls of one block.
    pub fn block_written_objects(&self, block: BlockId) -> BTreeSet<AbstractObj> {
        let pdg = self.input.pdg;
        let program = self.input.program;
        let func = program.function(pdg.func());
        let mut objects = BTreeSet::new();
        for &i in &func.block(block).insts {
            match &func.inst(i).opcode {
                Opcode::Store(mem) => {
                    objects.extend(self.points_to.of(pdg.func(), mem.base).iter().copied());
                }
                Opcode::Call { callee, .. } => {
                    objects.extend(self.effects.of_callee(program, callee).writes);
                }
                _ => {}
            }
        }
        objects
    }
}

impl fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx").finish_non_exhaustive()
    }
}
