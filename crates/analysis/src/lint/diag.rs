//! Typed lint findings and their lowering to rendered diagnostics.
//!
//! Every checker produces [`Lint`] values — structured findings that
//! carry PDG-node indices and analysis facts — which are lowered once,
//! with program context in hand, into the shared
//! [`Diagnostic`] type that the runtime's
//! dynamic validators also render with. The [`LintCode`] table is the
//! stable public contract: golden tests and CI gates match on codes,
//! not on message text.

use crate::pdg::{DepKind, LoopPdg, PdgNode};
use seqpar_ir::{Callee, Opcode, Program};
use seqpar_runtime::{Diagnostic, Severity};
use std::fmt;

/// Stable lint codes.
///
/// `SP00xx` codes are deny-level (the plan is unsound and must not
/// run); `SP01xx` codes are warnings (legal but suspicious).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `SP0001`: a non-speculated dependence flows to an earlier
    /// pipeline stage.
    BackwardDep,
    /// `SP0002`: a loop-carried dependence begins and ends inside a
    /// replicated stage, whose iterations are unordered.
    CarriedInReplicated,
    /// `SP0003`: a speculated dependence carries no commit-time
    /// validation obligation.
    UnvalidatedSpeculation,
    /// `SP0004`: two accesses in a replicated stage may race on
    /// unversioned state across iterations.
    ReplicatedRace,
    /// `SP0005`: a `Commutative` annotation covers a callee whose
    /// side effects escape the declared commutative group.
    NonCommutative,
    /// `SP0006`: an erased Y-branch control dependence guards stores
    /// that reach live-out state.
    YBranchLiveOut,
    /// `SP0007`: the execution plan's shape does not fit the
    /// partition (stage count, empty core pool).
    PlanShape,
    /// `SP0101` (warn): a speculated dependence misfires often enough
    /// to threaten the speedup.
    HighMisspec,
    /// `SP0102` (warn): a sequential partition stage is mapped onto a
    /// multi-core pool — legal under in-order commit, but wasteful.
    SequentialStageOnPool,
}

impl LintCode {
    /// The stable code string (e.g. `"SP0001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::BackwardDep => "SP0001",
            LintCode::CarriedInReplicated => "SP0002",
            LintCode::UnvalidatedSpeculation => "SP0003",
            LintCode::ReplicatedRace => "SP0004",
            LintCode::NonCommutative => "SP0005",
            LintCode::YBranchLiveOut => "SP0006",
            LintCode::PlanShape => "SP0007",
            LintCode::HighMisspec => "SP0101",
            LintCode::SequentialStageOnPool => "SP0102",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::HighMisspec | LintCode::SequentialStageOnPool => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed finding from a checker.
///
/// Node fields are indices into the linted [`LoopPdg`]'s node array;
/// the lowering attaches human-readable provenance for each.
#[derive(Clone, Debug, PartialEq)]
pub enum Lint {
    /// A dependence edge flows from a later stage to an earlier one
    /// and no speculation covers it.
    BackwardDep {
        /// Producer node.
        src: usize,
        /// Consumer node.
        dst: usize,
        /// Dependence kind.
        kind: DepKind,
        /// Whether the edge is loop-carried.
        carried: bool,
        /// The producer's pipeline stage.
        src_stage: u8,
        /// The consumer's pipeline stage.
        dst_stage: u8,
    },
    /// A carried dependence is confined to a replicated stage, whose
    /// iterations run concurrently and unordered.
    CarriedInReplicated {
        /// Producer node.
        src: usize,
        /// Consumer node.
        dst: usize,
        /// Dependence kind.
        kind: DepKind,
        /// The replicated stage.
        stage: u8,
    },
    /// A speculated dependence has no commit-time validation
    /// obligation, so a misspeculation would go undetected.
    UnvalidatedSpeculation {
        /// Producer node.
        src: usize,
        /// Consumer node.
        dst: usize,
        /// Dependence kind.
        kind: DepKind,
    },
    /// Two replicated-stage accesses may touch the same unversioned
    /// state from concurrent iterations.
    ReplicatedRace {
        /// First access node.
        first: usize,
        /// Second access node (equal to `first` for a node racing
        /// with its own next-iteration instance).
        second: usize,
        /// The access path: conflicting objects and access kinds.
        path: String,
    },
    /// A `Commutative` annotation whose callee's writes escape the
    /// declared group.
    NonCommutative {
        /// The annotated call node.
        node: usize,
        /// The commutative group id.
        group: u32,
        /// Where the effect escapes to.
        path: String,
    },
    /// An erased Y-branch control dependence guards stores reaching
    /// live-out state.
    YBranchLiveOut {
        /// The annotated branch node.
        branch: usize,
        /// The guarded writer.
        writer: String,
        /// The live-out object.
        object: String,
        /// The out-of-loop reader that observes it.
        reader: String,
    },
    /// The execution plan does not fit the partition.
    PlanShape {
        /// What is wrong with the shape.
        detail: String,
    },
    /// A speculated dependence with a high expected misspeculation
    /// rate.
    HighMisspec {
        /// Producer node.
        src: usize,
        /// Consumer node.
        dst: usize,
        /// Expected per-iteration misspeculation probability.
        rate: f64,
    },
    /// A sequential partition stage mapped onto a multi-core pool.
    SequentialStageOnPool {
        /// The stage.
        stage: u8,
    },
}

impl Lint {
    /// The stable code of this finding.
    pub fn code(&self) -> LintCode {
        match self {
            Lint::BackwardDep { .. } => LintCode::BackwardDep,
            Lint::CarriedInReplicated { .. } => LintCode::CarriedInReplicated,
            Lint::UnvalidatedSpeculation { .. } => LintCode::UnvalidatedSpeculation,
            Lint::ReplicatedRace { .. } => LintCode::ReplicatedRace,
            Lint::NonCommutative { .. } => LintCode::NonCommutative,
            Lint::YBranchLiveOut { .. } => LintCode::YBranchLiveOut,
            Lint::PlanShape { .. } => LintCode::PlanShape,
            Lint::HighMisspec { .. } => LintCode::HighMisspec,
            Lint::SequentialStageOnPool { .. } => LintCode::SequentialStageOnPool,
        }
    }

    /// The severity of this finding.
    pub fn severity(&self) -> Severity {
        self.code().severity()
    }

    /// Lowers the plan-shape findings, which carry no PDG-node
    /// provenance and so need no program context. `None` for findings
    /// that do reference nodes.
    pub(crate) fn to_diagnostic_contextless(&self) -> Option<Diagnostic> {
        let code = self.code().as_str();
        let mk = |message: String| match self.severity() {
            Severity::Deny => Diagnostic::deny(code, message),
            Severity::Warn => Diagnostic::warn(code, message),
        };
        match self {
            Lint::PlanShape { detail } => Some(mk(format!(
                "execution plan does not fit the partition: {detail}"
            ))),
            Lint::SequentialStageOnPool { stage } => Some(mk(format!(
                "sequential stage {stage} is mapped onto a multi-core pool; \
                 in-order commit keeps it correct but the extra cores idle"
            ))),
            _ => None,
        }
    }

    /// Lowers the finding to a rendered diagnostic with PDG-node
    /// provenance.
    pub(crate) fn to_diagnostic(&self, program: &Program, pdg: &LoopPdg) -> Diagnostic {
        if let Some(d) = self.to_diagnostic_contextless() {
            return d;
        }
        let code = self.code().as_str();
        let mk = |message: String| match self.severity() {
            Severity::Deny => Diagnostic::deny(code, message),
            Severity::Warn => Diagnostic::warn(code, message),
        };
        match self {
            Lint::BackwardDep {
                src,
                dst,
                kind,
                carried,
                src_stage,
                dst_stage,
            } => mk(format!(
                "{} dependence flows backward from stage {src_stage} to stage {dst_stage}",
                kind_name(*kind)
            ))
            .with_origin(describe_node(program, pdg, *src))
            .with_note(format!("consumer: {}", describe_node(program, pdg, *dst)))
            .with_note(if *carried {
                "loop-carried; covered by no speculation".to_string()
            } else {
                "intra-iteration; covered by no speculation".to_string()
            }),
            Lint::CarriedInReplicated {
                src,
                dst,
                kind,
                stage,
            } => mk(format!(
                "loop-carried {} dependence inside replicated stage {stage}, \
                 whose iterations are unordered",
                kind_name(*kind)
            ))
            .with_origin(describe_node(program, pdg, *src))
            .with_note(format!("consumer: {}", describe_node(program, pdg, *dst))),
            Lint::UnvalidatedSpeculation { src, dst, kind } => mk(format!(
                "speculated {} dependence has no commit-time validation obligation",
                kind_name(*kind)
            ))
            .with_origin(describe_node(program, pdg, *src))
            .with_note(format!("consumer: {}", describe_node(program, pdg, *dst)))
            .with_note("a manifested dependence would commit a wrong value silently"),
            Lint::ReplicatedRace {
                first,
                second,
                path,
            } => {
                let d = mk(format!(
                    "concurrent iterations of the replicated stage may race: {path}"
                ))
                .with_origin(describe_node(program, pdg, *first));
                if first == second {
                    d.with_note("the node conflicts with its own next-iteration instance")
                } else {
                    d.with_note(format!(
                        "conflicting access: {}",
                        describe_node(program, pdg, *second)
                    ))
                }
            }
            Lint::NonCommutative { node, group, path } => mk(format!(
                "Commutative annotation (group {group}) is not self-commuting: {path}"
            ))
            .with_origin(describe_node(program, pdg, *node))
            .with_note("reordering the annotated calls is observable outside the group"),
            Lint::YBranchLiveOut {
                branch,
                writer,
                object,
                reader,
            } => mk(format!(
                "erased Y-branch control dependence guards a store to live-out state '{object}'"
            ))
            .with_origin(describe_node(program, pdg, *branch))
            .with_note(format!("guarded writer: {writer}"))
            .with_note(format!("observed after the loop by: {reader}")),
            Lint::HighMisspec { src, dst, rate } => mk(format!(
                "speculated dependence misfires with probability {rate:.3} per iteration"
            ))
            .with_origin(describe_node(program, pdg, *src))
            .with_note(format!("consumer: {}", describe_node(program, pdg, *dst))),
            Lint::PlanShape { .. } | Lint::SequentialStageOnPool { .. } => {
                unreachable!("handled by to_diagnostic_contextless")
            }
        }
    }
}

/// Human name of a dependence kind.
fn kind_name(kind: DepKind) -> &'static str {
    match kind {
        DepKind::Reg => "register",
        DepKind::Mem => "memory",
        DepKind::Control => "control",
    }
}

/// Renders `node`'s provenance: function, node index, opcode, and the
/// instruction label when one was attached.
pub(crate) fn describe_node(program: &Program, pdg: &LoopPdg, node: usize) -> String {
    let func = program.function(pdg.func());
    match pdg.nodes().get(node) {
        Some(PdgNode::Inst(id)) => {
            let inst = func.inst(*id);
            let op = match &inst.opcode {
                Opcode::Const(v) => format!("const {v}"),
                Opcode::Copy => "copy".to_string(),
                Opcode::Phi => "phi".to_string(),
                Opcode::AddrOf(g) => format!("addr_of '{}'", program.global(*g).name),
                Opcode::Gep => "gep".to_string(),
                Opcode::Load(_) => "load".to_string(),
                Opcode::Store(_) => "store".to_string(),
                Opcode::Call { callee, .. } => format!("call {}", callee_name(program, callee)),
                other => format!("{other:?}").to_lowercase(),
            };
            match &inst.label {
                Some(l) => format!("{}: node {node} = {op} (\"{l}\")", func.name),
                None => format!("{}: node {node} = {op}", func.name),
            }
        }
        Some(PdgNode::Branch(b)) => {
            format!(
                "{}: node {node} = branch at block '{}'",
                func.name,
                func.block(*b).name
            )
        }
        None => format!("{}: node {node} (out of range)", func.name),
    }
}

/// Renders an arbitrary instruction's provenance (for findings that
/// reference code outside the linted loop's PDG).
pub(crate) fn describe_inst(
    program: &Program,
    func: seqpar_ir::FuncId,
    inst: seqpar_ir::InstId,
) -> String {
    let f = program.function(func);
    let i = f.inst(inst);
    let op = match &i.opcode {
        Opcode::Load(_) => "load".to_string(),
        Opcode::Store(_) => "store".to_string(),
        Opcode::Call { callee, .. } => format!("call {}", callee_name(program, callee)),
        other => format!("{other:?}").to_lowercase(),
    };
    match &i.label {
        Some(l) => format!("{}: {op} (\"{l}\")", f.name),
        None => format!("{}: {op}", f.name),
    }
}

/// The display name of a call target.
pub(crate) fn callee_name(program: &Program, callee: &Callee) -> String {
    match callee {
        Callee::Internal(f) => program.function(*f).name.clone(),
        Callee::External(name) => name.clone(),
    }
}
