//! Checkers 3 and 4: annotation audits.
//!
//! Annotations *remove* dependences from the PDG on programmer
//! authority; these checkers audit whether the authority was claimed
//! legitimately.
//!
//! **Commutative audit** ([`Lint::NonCommutative`]): a `Commutative`
//! group asserts that its member calls may run in any order because
//! their side effects are confined to group-internal state
//! (paper §2.3.2). The audit recomputes each member callee's write
//! set from effect summaries and scans the rest of the program for
//! accesses to that state. A load, store, or non-member extern call
//! touching group-written objects means reorderings are observable
//! outside the group, so the annotation is not self-commuting. A
//! member callee whose effects cannot be bounded (`clobbers_unknown`)
//! fails outright.
//!
//! **Y-branch legality** ([`Lint::YBranchLiveOut`]): a Y-branch
//! asserts that its taken path may legally run on *any* iteration
//! (paper §2.3.1), which is what lets the parallelizer erase the
//! branch's control dependences. That claim only holds for state
//! whose lifetime ends with the loop: if a store guarded by the
//! branch reaches an object that code *after* the loop reads, then a
//! compiler-forced (or speculatively mistimed) execution of the path
//! changes the function's observable result. The audit intersects
//! guarded write sets with the read sets of all out-of-loop code in
//! the function.

use super::diag::{describe_inst, Lint};
use super::Ctx;
use crate::control::ControlDeps;
use crate::pdg::{DepKind, PdgNode};
use crate::points_to::AbstractObj;
use seqpar_ir::{Callee, CommGroupId, FuncId, InstId, Opcode, Program};
use std::collections::BTreeSet;

pub(super) fn check(ctx: &Ctx) -> Vec<Lint> {
    let mut lints = commutative_audit(ctx);
    lints.extend(ybranch_audit(ctx));
    lints
}

/// Checker 3: `Commutative` annotations whose callee effects escape
/// the declared group.
fn commutative_audit(ctx: &Ctx) -> Vec<Lint> {
    let program = ctx.input.program;
    let pdg = ctx.input.pdg;
    let mut lints = Vec::new();
    let mut audited: BTreeSet<CommGroupId> = BTreeSet::new();

    for node in 0..pdg.node_count() {
        let Some(group) = pdg.commutative_group(node) else {
            continue;
        };
        if !audited.insert(group) {
            continue;
        }
        let members = group_members(program, group);
        let group_fns = group_functions(program, &members);

        // The union of the member callees' write sets is the
        // group-internal state the annotation claims to own.
        let mut state: BTreeSet<AbstractObj> = BTreeSet::new();
        let mut unbounded = false;
        for (f, i) in &members {
            let Opcode::Call { callee, .. } = &program.function(*f).inst(*i).opcode else {
                continue;
            };
            let summary = ctx.effects.of_callee(program, callee);
            unbounded |= summary.clobbers_unknown;
            state.extend(summary.writes);
        }
        if unbounded {
            lints.push(Lint::NonCommutative {
                node,
                group: group.0,
                path: "a member callee's effects cannot be bounded (may clobber \
                       unanalyzable memory)"
                    .to_string(),
            });
            continue;
        }
        if state.is_empty() {
            continue;
        }

        if let Some(path) = find_escape(ctx, group, &members, &group_fns, &state) {
            lints.push(Lint::NonCommutative {
                node,
                group: group.0,
                path,
            });
        }
    }
    lints
}

/// Every call site in the program annotated with `group`.
fn group_members(program: &Program, group: CommGroupId) -> Vec<(FuncId, InstId)> {
    let mut members = Vec::new();
    for f in program.function_ids() {
        let func = program.function(f);
        for i in func.inst_ids() {
            if let Opcode::Call { commutative, .. } = &func.inst(i).opcode {
                if *commutative == Some(group) {
                    members.push((f, i));
                }
            }
        }
    }
    members
}

/// The internal functions implementing the group: member internal
/// callees plus everything they transitively call. Accesses inside
/// these bodies are the group's own implementation, not escapes.
fn group_functions(program: &Program, members: &[(FuncId, InstId)]) -> BTreeSet<FuncId> {
    let mut set = BTreeSet::new();
    let mut work: Vec<FuncId> = members
        .iter()
        .filter_map(|(f, i)| match &program.function(*f).inst(*i).opcode {
            Opcode::Call {
                callee: Callee::Internal(g),
                ..
            } => Some(*g),
            _ => None,
        })
        .collect();
    while let Some(f) = work.pop() {
        if !set.insert(f) {
            continue;
        }
        let func = program.function(f);
        for i in func.inst_ids() {
            if let Opcode::Call {
                callee: Callee::Internal(g),
                ..
            } = &func.inst(i).opcode
            {
                work.push(*g);
            }
        }
    }
    set
}

/// Scans the whole program for a non-member access to group state.
///
/// Internal call instructions are skipped: their bodies are scanned
/// directly, so charging their summarized effects at the call site
/// would double-report (and falsely implicate wrappers that merely
/// contain an annotated call). An access whose PDG node is linked to
/// a member call by a *speculated* dependence is also skipped: the
/// conflict is handled by commit-time validation, a different and
/// audited mechanism, so the annotation need not own it. Likewise an
/// access whose memory edges to the members all carry a profiled
/// conflict frequency at or below the misspeculation threshold — the
/// profile declares the apparent overlap illusory (the basis of alias
/// speculation), and when speculation is off those edges stay in the
/// graph and the partitioner synchronizes the rare real conflicts.
/// Only an access with *no* dependence machinery between it and the
/// group — or with frequently-manifesting edges, where member order is
/// genuinely observable — escapes the annotation's authority.
fn find_escape(
    ctx: &Ctx,
    group: CommGroupId,
    members: &[(FuncId, InstId)],
    group_fns: &BTreeSet<FuncId>,
    state: &BTreeSet<AbstractObj>,
) -> Option<String> {
    let program = ctx.input.program;
    let pdg = ctx.input.pdg;
    let member_set: BTreeSet<(FuncId, InstId)> = members.iter().copied().collect();
    let member_nodes: Vec<usize> = (0..pdg.node_count())
        .filter(|&n| pdg.commutative_group(n) == Some(group))
        .collect();
    for f in program.function_ids() {
        if group_fns.contains(&f) {
            continue;
        }
        let func = program.function(f);
        for i in func.inst_ids() {
            if member_set.contains(&(f, i)) {
                continue;
            }
            if f == pdg.func() {
                if let Some(n) = pdg.index_of(PdgNode::Inst(i)) {
                    let covered = member_nodes.iter().any(|&m| {
                        ctx.input
                            .speculated
                            .iter()
                            .any(|s| (s.src == m && s.dst == n) || (s.src == n && s.dst == m))
                    });
                    // Only memory edges: register edges (e.g. the
                    // group handle flowing into a consumer) always
                    // manifest and say nothing about state conflicts.
                    let mem_freqs: Vec<f64> = pdg
                        .edges()
                        .filter(|e| {
                            e.kind == DepKind::Mem
                                && ((member_nodes.contains(&e.src) && e.dst == n)
                                    || (member_nodes.contains(&e.dst) && e.src == n))
                        })
                        .map(|e| e.freq)
                        .collect();
                    let profiled_rare = !mem_freqs.is_empty()
                        && mem_freqs
                            .iter()
                            .all(|&fq| fq <= super::flow::MISSPEC_WARN_THRESHOLD);
                    if covered || profiled_rare {
                        continue;
                    }
                }
            }
            let touched: Vec<AbstractObj> = match &func.inst(i).opcode {
                Opcode::Load(mem) | Opcode::Store(mem) => ctx
                    .points_to
                    .of(f, mem.base)
                    .iter()
                    .filter(|o| state.contains(o))
                    .copied()
                    .collect(),
                Opcode::Call {
                    callee: callee @ Callee::External(_),
                    commutative,
                } if *commutative != Some(group) => {
                    let summary = ctx.effects.of_callee(program, callee);
                    if summary.clobbers_unknown {
                        return Some(format!(
                            "group-internal state may be clobbered by {}",
                            describe_inst(program, f, i)
                        ));
                    }
                    summary
                        .reads
                        .iter()
                        .chain(summary.writes.iter())
                        .filter(|o| state.contains(o))
                        .copied()
                        .collect()
                }
                _ => Vec::new(),
            };
            if let Some(obj) = touched.first() {
                return Some(format!(
                    "group-internal state '{}' is also accessed by {}",
                    ctx.object_name(*obj),
                    describe_inst(program, f, i)
                ));
            }
        }
    }
    None
}

/// Checker 4: Y-branch erasures guarding stores to live-out state.
fn ybranch_audit(ctx: &Ctx) -> Vec<Lint> {
    let program = ctx.input.program;
    let pdg = ctx.input.pdg;
    let func_id = pdg.func();
    let func = program.function(func_id);
    let l = ctx.linted_loop();
    let cd = ControlDeps::analyze(func);
    let mut lints = Vec::new();

    // Read sets of everything in this function outside the loop.
    let mut outside_reads: Vec<(InstId, BTreeSet<AbstractObj>, bool)> = Vec::new();
    for b in func.block_ids() {
        if l.contains(b) {
            continue;
        }
        for &i in &func.block(b).insts {
            match &func.inst(i).opcode {
                Opcode::Load(mem) => {
                    let pts: BTreeSet<AbstractObj> = ctx
                        .points_to
                        .of(func_id, mem.base)
                        .iter()
                        .copied()
                        .collect();
                    let unknown = pts.is_empty();
                    outside_reads.push((i, pts, unknown));
                }
                Opcode::Call { callee, .. } => {
                    let s = ctx.effects.of_callee(program, callee);
                    outside_reads.push((i, s.reads, s.clobbers_unknown));
                }
                _ => {}
            }
        }
    }

    for (node, n) in pdg.nodes().iter().enumerate() {
        let PdgNode::Branch(b) = n else { continue };
        if pdg.ybranch_hint(node).is_none() {
            continue;
        }
        // Writers in loop blocks whose execution this branch decides.
        let mut reported: BTreeSet<AbstractObj> = BTreeSet::new();
        for &c in &l.blocks {
            if !cd.depends_on(c, *b) {
                continue;
            }
            for &i in &func.block(c).insts {
                let written: BTreeSet<AbstractObj> = match &func.inst(i).opcode {
                    Opcode::Store(mem) => ctx
                        .points_to
                        .of(func_id, mem.base)
                        .iter()
                        .copied()
                        .collect(),
                    Opcode::Call { callee, .. } => ctx.effects.of_callee(program, callee).writes,
                    _ => continue,
                };
                for (reader, reads, unknown) in &outside_reads {
                    let hit = written
                        .iter()
                        .find(|o| *unknown || reads.contains(o))
                        .copied();
                    let Some(obj) = hit else { continue };
                    if !reported.insert(obj) {
                        continue;
                    }
                    lints.push(Lint::YBranchLiveOut {
                        branch: node,
                        writer: describe_inst(program, func_id, i),
                        object: ctx.object_name(obj),
                        reader: describe_inst(program, func_id, *reader),
                    });
                }
            }
        }
    }
    lints
}
