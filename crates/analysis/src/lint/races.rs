//! Checker 2: replicated-stage race detection.
//!
//! The replicated stage runs loop iterations concurrently over a
//! worker pool with no ordering between them, so any two iterations'
//! instances of the stage may interleave freely. Every pair of
//! stage-resident accesses (including a node paired with its own
//! next-iteration instance) that may touch a common abstract object
//! with at least one write is a candidate race.
//!
//! Candidates are then filtered by the exemptions that correspond
//! exactly to the mechanisms the programming model provides for
//! breaking such conflicts:
//!
//! * **Commutative** — both accesses are calls in the same commutative
//!   group; the runtime serialises group members atomically and the
//!   annotation licenses any order (paper §2.3.2);
//! * **speculation** — a speculated dependence covers the pair; the
//!   runtime versions the consumer's view and validates at commit;
//! * **Y-branch reset state** — the conflicting objects are written on
//!   the taken path of a Y-branch in this loop; the annotation makes
//!   any observed value of that state sequentially explicable
//!   (paper §2.3.1);
//! * **per-iteration allocations** — the object is an allocation site
//!   inside the loop body, so each iteration's accesses land on a
//!   fresh object that context-insensitive points-to merely merges;
//! * **privatized state** — both accesses were privatized per worker
//!   by reduction expansion (paper §2.1), so cross-iteration
//!   instances touch different copies;
//! * **field disjointness** — for two plain loads/stores the
//!   field-sensitive alias query proves the references disjoint even
//!   though their points-to sets overlap.
//!
//! Whatever survives is reported as [`Lint::ReplicatedRace`] with the
//! conflicting access path.

use super::diag::Lint;
use super::{Access, Ctx};
use crate::alias::AliasQuery;
use crate::pdg::PdgNode;
use crate::points_to::AbstractObj;
use seqpar_ir::{MemRef, Opcode};
use std::collections::BTreeSet;

pub(super) fn check(ctx: &Ctx) -> Vec<Lint> {
    let input = ctx.input;
    let pdg = input.pdg;
    let stages = input.stages;

    // Memory-active nodes resident in a replicated stage.
    let members: Vec<(usize, Access)> = (0..pdg.node_count())
        .filter(|&n| stages.is_replicated(stages.stage_of(n)))
        .filter_map(|n| ctx.node_access(n).map(|a| (n, a)))
        .collect();
    if members.is_empty() {
        return Vec::new();
    }

    let reset_state = ctx.ybranch_reset_objects();
    let aliases = AliasQuery::new(input.program, &ctx.points_to);
    let mut lints = Vec::new();

    for (i, (m, am)) in members.iter().enumerate() {
        for (n, an) in members.iter().skip(i) {
            if commutative_pair(ctx, *m, *n)
                || speculation_covers(ctx, *m, *n)
                || privatized_pair(ctx, *m, *n)
                || fields_disjoint(ctx, &aliases, *m, *n)
            {
                continue;
            }
            let conflicts = conflict_objects(am, an)
                .into_iter()
                .filter(|o| !reset_state.contains(o))
                .filter(|o| !per_iteration_alloc(ctx, *o))
                .collect::<Vec<_>>();
            let unknown = unknown_conflict(am, an);
            if conflicts.is_empty() && !unknown {
                continue;
            }
            lints.push(Lint::ReplicatedRace {
                first: *m,
                second: *n,
                path: describe_conflicts(ctx, am, an, &conflicts, unknown),
            });
        }
    }
    lints
}

/// Both nodes are calls annotated with the same commutative group.
fn commutative_pair(ctx: &Ctx, m: usize, n: usize) -> bool {
    match (
        ctx.input.pdg.commutative_group(m),
        ctx.input.pdg.commutative_group(n),
    ) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// A speculated dependence covers the pair in either direction.
fn speculation_covers(ctx: &Ctx, m: usize, n: usize) -> bool {
    ctx.input
        .speculated
        .iter()
        .any(|s| (s.src == m && s.dst == n) || (s.src == n && s.dst == m))
}

/// Both accesses were privatized per worker (reduction expansion):
/// each iteration's instance lands on its worker's private copy.
fn privatized_pair(ctx: &Ctx, m: usize, n: usize) -> bool {
    ctx.input.privatized.contains(&m) && ctx.input.privatized.contains(&n)
}

/// Both nodes are plain loads/stores whose references the
/// field-sensitive alias query proves disjoint.
fn fields_disjoint(ctx: &Ctx, aliases: &AliasQuery, m: usize, n: usize) -> bool {
    let (Some(a), Some(b)) = (plain_mem_ref(ctx, m), plain_mem_ref(ctx, n)) else {
        return false;
    };
    !aliases.alias_in(ctx.input.pdg.func(), &a, &b).may_alias()
}

/// The memory reference of a node, when it is a plain load or store.
fn plain_mem_ref(ctx: &Ctx, node: usize) -> Option<MemRef> {
    let pdg = ctx.input.pdg;
    let PdgNode::Inst(id) = pdg.nodes()[node] else {
        return None;
    };
    match ctx.input.program.function(pdg.func()).inst(id).opcode {
        Opcode::Load(mem) | Opcode::Store(mem) => Some(mem),
        _ => None,
    }
}

/// The object is an allocation site inside the linted loop body: each
/// iteration allocates afresh, so cross-iteration instances are
/// distinct objects the site-named abstraction merges.
fn per_iteration_alloc(ctx: &Ctx, obj: AbstractObj) -> bool {
    let AbstractObj::Alloc(f, site) = obj else {
        return false;
    };
    if f != ctx.input.pdg.func() {
        return false;
    }
    let func = ctx.input.program.function(f);
    ctx.linted_loop()
        .blocks
        .iter()
        .any(|&b| func.block(b).insts.contains(&site))
}

/// Objects on which the two accesses conflict (at least one writes).
fn conflict_objects(a: &Access, b: &Access) -> BTreeSet<AbstractObj> {
    let mut objs = BTreeSet::new();
    objs.extend(a.writes.intersection(&b.writes).copied());
    objs.extend(a.writes.intersection(&b.reads).copied());
    objs.extend(a.reads.intersection(&b.writes).copied());
    objs
}

/// One side may touch memory the analysis cannot name — it must be
/// assumed to read and write anything — and the other side touches
/// memory at all.
fn unknown_conflict(a: &Access, b: &Access) -> bool {
    let touches = |x: &Access| x.unknown || !x.reads.is_empty() || !x.writes.is_empty();
    (a.unknown && touches(b)) || (b.unknown && touches(a))
}

/// Renders the access path: each conflicting object with the kinds of
/// access meeting on it.
fn describe_conflicts(
    ctx: &Ctx,
    a: &Access,
    b: &Access,
    conflicts: &[AbstractObj],
    unknown: bool,
) -> String {
    let mut parts: Vec<String> = conflicts
        .iter()
        .map(|o| {
            let kind = if a.writes.contains(o) && b.writes.contains(o) {
                "write/write"
            } else {
                "write/read"
            };
            format!("{kind} on '{}'", ctx.object_name(*o))
        })
        .collect();
    if unknown {
        parts.push("access to unanalyzable memory".to_string());
    }
    parts.join("; ")
}
