//! The program dependence graph over one target loop.
//!
//! This is the data structure the DSWP partitioner consumes: nodes are the
//! instructions (and conditional branches) of the loop body, edges are
//! register, memory, and control dependences, each classified as
//! intra-iteration or loop-carried and tagged with its profile-observed
//! manifestation frequency.

use crate::alias::AliasQuery;
use crate::control::ControlDeps;
use crate::effects::Effects;
use crate::memdep::mem_deps;
use crate::points_to::PointsTo;
use crate::profile::LoopProfile;
use crate::regdeps::reg_deps;
use seqpar_ir::{
    BlockId, CommGroupId, FuncId, InstId, LoopForest, LoopId, Opcode, Program, Terminator,
    YBranchHint,
};
use std::collections::HashMap;

/// A PDG node: an instruction or a block's conditional branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PdgNode {
    /// An ordinary instruction.
    Inst(InstId),
    /// The conditional branch terminating a block.
    Branch(BlockId),
}

/// The kind of dependence an edge represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// SSA register (def-use) dependence.
    Reg,
    /// Memory (may-alias) dependence.
    Mem,
    /// Control dependence.
    Control,
}

/// One dependence edge between PDG node indices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdgEdge {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Whether the dependence crosses loop iterations.
    pub carried: bool,
    /// Profile-observed manifestation frequency (`1.0` = always).
    pub freq: f64,
}

/// The program dependence graph of a single loop.
#[derive(Clone, Debug)]
pub struct LoopPdg {
    func: FuncId,
    loop_id: LoopId,
    nodes: Vec<PdgNode>,
    index: HashMap<PdgNode, usize>,
    edges: Vec<PdgEdge>,
    weights: Vec<u64>,
    commutative: Vec<Option<CommGroupId>>,
    ybranch: Vec<Option<YBranchHint>>,
}

impl LoopPdg {
    /// Builds the PDG of `loop_id` in `func`.
    ///
    /// Control edges from a latch branch are marked carried: whether the
    /// *next* iteration runs is decided by this iteration's branch.
    /// Memory edges take their frequency from `profile` when provided.
    pub fn build(
        program: &Program,
        func: FuncId,
        forest: &LoopForest,
        loop_id: LoopId,
        profile: Option<&LoopProfile>,
    ) -> Self {
        let f = program.function(func);
        let l = forest.get(loop_id);
        // Nodes: instructions in block order, plus a Branch node per
        // conditionally terminated block.
        let mut nodes = Vec::new();
        let mut commutative = Vec::new();
        let mut ybranch = Vec::new();
        for &b in &l.blocks {
            for &i in &f.block(b).insts {
                nodes.push(PdgNode::Inst(i));
                commutative.push(match &f.inst(i).opcode {
                    Opcode::Call { commutative, .. } => *commutative,
                    _ => None,
                });
                ybranch.push(None);
            }
            if let Terminator::CondBranch { ybranch: y, .. } = &f.block(b).terminator {
                nodes.push(PdgNode::Branch(b));
                commutative.push(None);
                ybranch.push(*y);
            }
        }
        let index: HashMap<PdgNode, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let weights = nodes
            .iter()
            .map(|n| match n {
                PdgNode::Inst(i) => default_weight(&f.inst(*i).opcode),
                PdgNode::Branch(_) => 1,
            })
            .collect();

        let scope: Vec<InstId> = forest.body_insts(loop_id, f);
        let mut edges = Vec::new();

        // Register dependences (including carried phi inputs).
        for d in reg_deps(f, &scope, Some(l)) {
            edges.push(PdgEdge {
                src: index[&PdgNode::Inst(d.def_inst)],
                dst: index[&PdgNode::Inst(d.use_inst)],
                kind: DepKind::Reg,
                carried: d.carried,
                freq: 1.0,
            });
        }
        // Branch conditions consume their defining instruction.
        for &b in &l.blocks {
            if let Some(cond) = f.block(b).terminator.condition() {
                if let Some(def) = f.def_of(cond) {
                    if let (Some(&s), Some(&t)) = (
                        index.get(&PdgNode::Inst(def)),
                        index.get(&PdgNode::Branch(b)),
                    ) {
                        edges.push(PdgEdge {
                            src: s,
                            dst: t,
                            kind: DepKind::Reg,
                            carried: false,
                            freq: 1.0,
                        });
                    }
                }
            }
        }

        // Memory dependences refined by profile.
        let points_to = PointsTo::analyze(program);
        let aliases = AliasQuery::new(program, &points_to);
        let effects = Effects::analyze(program, &points_to);
        let mem_profile = profile.map(|p| &p.memory);
        for d in mem_deps(program, func, &scope, &aliases, &effects, mem_profile) {
            edges.push(PdgEdge {
                src: index[&PdgNode::Inst(d.src)],
                dst: index[&PdgNode::Inst(d.dst)],
                kind: DepKind::Mem,
                carried: d.carried,
                freq: d.freq,
            });
        }

        // Control dependences: Branch(a) -> members of control-dependent
        // blocks. Latch branches control the next iteration (carried).
        let cd = ControlDeps::analyze(f);
        for &b in &l.blocks {
            for &a in cd.deps_of(b) {
                if !l.contains(a) {
                    continue;
                }
                let Some(&src) = index.get(&PdgNode::Branch(a)) else {
                    continue;
                };
                let carried = l.latches.contains(&a);
                for &i in &f.block(b).insts {
                    edges.push(PdgEdge {
                        src,
                        dst: index[&PdgNode::Inst(i)],
                        kind: DepKind::Control,
                        carried,
                        freq: 1.0,
                    });
                }
                if let Some(&dst) = index.get(&PdgNode::Branch(b)) {
                    if src != dst {
                        edges.push(PdgEdge {
                            src,
                            dst,
                            kind: DepKind::Control,
                            carried,
                            freq: 1.0,
                        });
                    }
                }
            }
        }

        Self {
            func,
            loop_id,
            nodes,
            index,
            edges,
            weights,
            commutative,
            ybranch,
        }
    }

    /// The function this PDG was built over.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// The loop this PDG was built over.
    pub fn loop_id(&self) -> LoopId {
        self.loop_id
    }

    /// The nodes, in body order.
    pub fn nodes(&self) -> &[PdgNode] {
        &self.nodes
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over the dependence edges.
    pub fn edges(&self) -> impl Iterator<Item = &PdgEdge> {
        self.edges.iter()
    }

    /// The index of a node, if it is part of this PDG.
    pub fn index_of(&self, node: PdgNode) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// The estimated execution weight of a node.
    pub fn weight(&self, node: usize) -> u64 {
        self.weights[node]
    }

    /// Overrides the estimated execution weight of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_weight(&mut self, node: usize, weight: u64) {
        self.weights[node] = weight;
    }

    /// The commutative group of a node, when it is an annotated call.
    pub fn commutative_group(&self, node: usize) -> Option<CommGroupId> {
        self.commutative[node]
    }

    /// The Y-branch hint of a node, when it is an annotated branch.
    pub fn ybranch_hint(&self, node: usize) -> Option<YBranchHint> {
        self.ybranch[node]
    }

    /// Removes the edges at the given positions (used by annotation and
    /// speculation passes). Indices refer to the current edge order.
    pub fn remove_edges(&mut self, mut positions: Vec<usize>) {
        positions.sort_unstable_by(|a, b| b.cmp(a));
        positions.dedup();
        for p in positions {
            self.edges.swap_remove(p);
        }
    }

    /// Adds an edge (used by tests and transformation passes).
    pub fn add_edge(&mut self, edge: PdgEdge) {
        assert!(edge.src < self.nodes.len() && edge.dst < self.nodes.len());
        self.edges.push(edge);
    }

    /// The positions and contents of edges satisfying `pred`.
    pub fn find_edges(&self, mut pred: impl FnMut(&PdgEdge) -> bool) -> Vec<(usize, PdgEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| pred(e))
            .map(|(i, e)| (i, *e))
            .collect()
    }

    /// Total weight of all nodes (one iteration's estimated cost).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Renders the PDG in Graphviz DOT format. `node_attr` may add extra
    /// attributes per node (e.g. a stage color); return an empty string
    /// for none.
    pub fn to_dot(
        &self,
        func: &seqpar_ir::Function,
        mut node_attr: impl FnMut(usize) -> String,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph pdg {\n  rankdir=TB;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label = match n {
                PdgNode::Inst(id) => {
                    let inst = func.inst(*id);
                    inst.label
                        .clone()
                        .unwrap_or_else(|| format!("{:?}", inst.opcode))
                }
                PdgNode::Branch(b) => format!("branch {b}"),
            };
            let extra = node_attr(i);
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\"{extra}];",
                label.replace('"', "'")
            );
        }
        for e in &self.edges {
            let style = match e.kind {
                DepKind::Reg => "solid",
                DepKind::Mem => "dashed",
                DepKind::Control => "dotted",
            };
            let color = if e.carried { "red" } else { "black" };
            let _ = writeln!(
                out,
                "  n{} -> n{} [style={style}, color={color}];",
                e.src, e.dst
            );
        }
        out.push_str("}\n");
        out
    }
}

fn default_weight(op: &Opcode) -> u64 {
    match op {
        Opcode::Call { .. } => 8,
        Opcode::Load(_) | Opcode::Store(_) => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{FunctionBuilder, Program};

    /// A loop with an accumulator in memory and a commutative RNG call.
    fn build_fixture() -> (Program, FuncId, LoopForest, LoopId) {
        let mut p = Program::new("t");
        let acc = p.add_global("acc", 1);
        p.declare_extern("rng", seqpar_ir::ExternEffect::pure_fn());
        let mut b = FunctionBuilder::new("f");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let a = b.global_addr(acc);
        let v = b.load(a);
        b.label_last("load_acc");
        let r = b.call_ext("rng", &[], Some(CommGroupId(1)));
        let sum = b.binop(Opcode::Add, v, r);
        b.store(a, sum);
        b.label_last("store_acc");
        let done = b.binop(Opcode::CmpEq, sum, r);
        b.cond_branch(done, exit, header);
        b.switch_to(exit);
        b.ret(None);
        let func = b.finish(&mut p);
        let forest = LoopForest::build(p.function(func));
        let (lid, _) = forest.loops().next().unwrap();
        (p, func, forest, lid)
    }

    #[test]
    fn pdg_has_inst_and_branch_nodes() {
        let (p, f, forest, lid) = build_fixture();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let insts = pdg
            .nodes()
            .iter()
            .filter(|n| matches!(n, PdgNode::Inst(_)))
            .count();
        let branches = pdg
            .nodes()
            .iter()
            .filter(|n| matches!(n, PdgNode::Branch(_)))
            .count();
        assert_eq!(insts, 6);
        assert_eq!(branches, 1);
    }

    #[test]
    fn accumulator_creates_carried_memory_edge() {
        let (p, f, forest, lid) = build_fixture();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        assert!(pdg
            .edges()
            .any(|e| e.kind == DepKind::Mem && e.carried && e.freq == 1.0));
    }

    #[test]
    fn latch_branch_controls_next_iteration() {
        let (p, f, forest, lid) = build_fixture();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let branch = pdg
            .nodes()
            .iter()
            .position(|n| matches!(n, PdgNode::Branch(_)))
            .unwrap();
        assert!(pdg
            .edges()
            .any(|e| e.src == branch && e.kind == DepKind::Control && e.carried));
    }

    #[test]
    fn commutative_annotation_is_visible_on_nodes() {
        let (p, f, forest, lid) = build_fixture();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let groups: Vec<_> = (0..pdg.node_count())
            .filter_map(|n| pdg.commutative_group(n))
            .collect();
        assert_eq!(groups, vec![CommGroupId(1)]);
    }

    #[test]
    fn profile_frequencies_attach_to_memory_edges() {
        let (p, f, forest, lid) = build_fixture();
        let func = p.function(f);
        let mut profile = LoopProfile::with_trip_count(100);
        profile
            .memory
            .record_by_label(func, "store_acc", "load_acc", 0.05);
        let pdg = LoopPdg::build(&p, f, &forest, lid, Some(&profile));
        assert!(pdg
            .edges()
            .any(|e| e.kind == DepKind::Mem && e.carried && (e.freq - 0.05).abs() < 1e-9));
    }

    #[test]
    fn edge_removal_and_lookup_roundtrip() {
        let (p, f, forest, lid) = build_fixture();
        let mut pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let before = pdg.edges().count();
        let mem_edges = pdg.find_edges(|e| e.kind == DepKind::Mem);
        assert!(!mem_edges.is_empty());
        pdg.remove_edges(mem_edges.iter().map(|(i, _)| *i).collect());
        let after = pdg.edges().count();
        assert_eq!(after, before - mem_edges.len());
        assert!(pdg.edges().all(|e| e.kind != DepKind::Mem));
    }

    #[test]
    fn dot_export_lists_every_node_and_edge() {
        let (p, f, forest, lid) = build_fixture();
        let pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let dot = pdg.to_dot(p.function(f), |_| String::new());
        assert!(dot.starts_with("digraph pdg {"));
        for i in 0..pdg.node_count() {
            assert!(dot.contains(&format!("n{i} [label=")), "node {i} missing");
        }
        assert_eq!(dot.matches(" -> ").count(), pdg.edges().count());
        // Carried edges are highlighted; labels survive.
        assert!(dot.contains("color=red"));
        assert!(dot.contains("load_acc"));
    }

    #[test]
    fn weights_default_by_opcode_and_can_be_overridden() {
        let (p, f, forest, lid) = build_fixture();
        let mut pdg = LoopPdg::build(&p, f, &forest, lid, None);
        let call = (0..pdg.node_count())
            .find(|&n| pdg.commutative_group(n).is_some())
            .unwrap();
        assert_eq!(pdg.weight(call), 8);
        pdg.set_weight(call, 100);
        assert_eq!(pdg.weight(call), 100);
        assert!(pdg.total_weight() > 100);
    }
}
