//! Andersen-style inclusion-based pointer analysis.
//!
//! Whole-program, flow-insensitive, context-insensitive. Heap allocations
//! are named by allocation site. The paper leans on "aggressive alias
//! analysis" \[5\] and whole-program scope (§2.2) to avoid over-estimating
//! dependences; this is the corresponding substrate.

use seqpar_ir::{Callee, FuncId, InstId, MemObjId, Opcode, Program, ValueId};
use std::collections::{BTreeSet, HashMap};

/// An abstract memory object: a global or an allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbstractObj {
    /// A named global declared in the [`Program`].
    Global(MemObjId),
    /// The object allocated by a call instruction (e.g. `malloc`).
    Alloc(FuncId, InstId),
}

/// A program-wide value key: SSA values are per-function.
type ValKey = (FuncId, ValueId);

/// The result of the pointer analysis: for each SSA value, the set of
/// abstract objects it may point to.
#[derive(Clone, Debug, Default)]
pub struct PointsTo {
    value_sets: HashMap<ValKey, BTreeSet<AbstractObj>>,
    /// What each abstract object's pointer-typed contents may point to.
    content_sets: HashMap<AbstractObj, BTreeSet<AbstractObj>>,
}

impl PointsTo {
    /// Runs the analysis over a whole program to a fixed point.
    pub fn analyze(program: &Program) -> Self {
        let mut pt = Self::default();
        let mut changed = true;
        // Iterate to a fixed point over all functions; each pass
        // propagates one more level of indirection. Program sizes here are
        // small (hot-loop models), so the quadratic worklist is fine.
        while changed {
            changed = false;
            for f in program.function_ids() {
                changed |= pt.propagate_function(program, f);
            }
        }
        pt
    }

    /// The points-to set of `value` in `func`. Empty for non-pointers.
    pub fn of(&self, func: FuncId, value: ValueId) -> &BTreeSet<AbstractObj> {
        static EMPTY: BTreeSet<AbstractObj> = BTreeSet::new();
        self.value_sets.get(&(func, value)).unwrap_or(&EMPTY)
    }

    /// Whether two values may reference a common object.
    pub fn may_overlap(&self, a: (FuncId, ValueId), b: (FuncId, ValueId)) -> bool {
        let sa = self.of(a.0, a.1);
        let sb = self.of(b.0, b.1);
        sa.iter().any(|o| sb.contains(o))
    }

    fn add_value(&mut self, key: ValKey, obj: AbstractObj) -> bool {
        self.value_sets.entry(key).or_default().insert(obj)
    }

    fn union_value(&mut self, dst: ValKey, src: ValKey) -> bool {
        if dst == src {
            return false;
        }
        let src_set = self.value_sets.get(&src).cloned().unwrap_or_default();
        let dst_set = self.value_sets.entry(dst).or_default();
        let before = dst_set.len();
        dst_set.extend(src_set);
        dst_set.len() != before
    }

    fn propagate_function(&mut self, program: &Program, f: FuncId) -> bool {
        let func = program.function(f);
        let mut changed = false;
        for i in func.inst_ids() {
            let inst = func.inst(i);
            match &inst.opcode {
                Opcode::AddrOf(obj) => {
                    if let Some(d) = inst.def {
                        changed |= self.add_value((f, d), AbstractObj::Global(*obj));
                    }
                }
                Opcode::Copy | Opcode::Phi | Opcode::Gep => {
                    if let Some(d) = inst.def {
                        for &op in &inst.operands {
                            changed |= self.union_value((f, d), (f, op));
                        }
                    }
                }
                Opcode::Load(mem) => {
                    // d ⊇ contents(o) for each o the base may point to.
                    if let Some(d) = inst.def {
                        let bases: Vec<AbstractObj> =
                            self.of(f, mem.base).iter().copied().collect();
                        for o in bases {
                            let contents = self.content_sets.get(&o).cloned().unwrap_or_default();
                            let set = self.value_sets.entry((f, d)).or_default();
                            let before = set.len();
                            set.extend(contents);
                            changed |= set.len() != before;
                        }
                    }
                }
                Opcode::Store(mem) => {
                    // contents(o) ⊇ pts(value) for each o the base may
                    // point to. The stored value is operand 0.
                    if let Some(&val) = inst.operands.first() {
                        let bases: Vec<AbstractObj> =
                            self.of(f, mem.base).iter().copied().collect();
                        let val_set = self.of(f, val).clone();
                        for o in bases {
                            let set = self.content_sets.entry(o).or_default();
                            let before = set.len();
                            set.extend(val_set.iter().copied());
                            changed |= set.len() != before;
                        }
                    }
                }
                Opcode::Call { callee, .. } => match callee {
                    Callee::Internal(g) => {
                        // Context-insensitive parameter binding and return
                        // propagation.
                        let callee_func = program.function(*g);
                        let params = callee_func.params.clone();
                        for (idx, &arg) in inst.operands.iter().enumerate() {
                            if let Some(&p) = params.get(idx) {
                                changed |= self.union_value((*g, p), (f, arg));
                            }
                        }
                        if let Some(d) = inst.def {
                            for r in return_values(program, *g) {
                                changed |= self.union_value((f, d), (*g, r));
                            }
                        }
                    }
                    Callee::External(name) => {
                        let allocates = program
                            .extern_fn(name)
                            .map(|e| e.effect.allocates)
                            .unwrap_or(false);
                        if allocates {
                            if let Some(d) = inst.def {
                                changed |= self.add_value((f, d), AbstractObj::Alloc(f, i));
                            }
                        }
                    }
                },
                _ => {}
            }
        }
        changed
    }
}

fn return_values(program: &Program, f: FuncId) -> Vec<ValueId> {
    let func = program.function(f);
    let mut out = Vec::new();
    for b in func.block_ids() {
        if let seqpar_ir::Terminator::Return(Some(v)) = func.block(b).terminator {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpar_ir::{ExternEffect, FunctionBuilder};

    #[test]
    fn addrof_points_to_global() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let mut b = FunctionBuilder::new("f");
        let a = b.global_addr(g);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert_eq!(
            pt.of(f, a).iter().copied().collect::<Vec<_>>(),
            vec![AbstractObj::Global(g)]
        );
    }

    #[test]
    fn copies_and_phis_propagate_sets() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let mut b = FunctionBuilder::new("f");
        let a = b.global_addr(g);
        let c = b.copy(a);
        let d = b.copy(c);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert!(pt.of(f, d).contains(&AbstractObj::Global(g)));
        assert!(pt.may_overlap((f, a), (f, d)));
    }

    #[test]
    fn distinct_globals_do_not_overlap() {
        let mut p = Program::new("t");
        let g1 = p.add_global("g1", 1);
        let g2 = p.add_global("g2", 1);
        let mut b = FunctionBuilder::new("f");
        let a1 = b.global_addr(g1);
        let a2 = b.global_addr(g2);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert!(!pt.may_overlap((f, a1), (f, a2)));
    }

    #[test]
    fn stores_and_loads_flow_through_memory() {
        // *slot = &g; q = *slot; q must point to g.
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        let slot = p.add_global("slot", 1);
        let mut b = FunctionBuilder::new("f");
        let ag = b.global_addr(g);
        let aslot = b.global_addr(slot);
        b.store(aslot, ag);
        let q = b.load(aslot);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert!(pt.of(f, q).contains(&AbstractObj::Global(g)));
    }

    #[test]
    fn malloc_sites_are_distinct_objects() {
        let mut p = Program::new("t");
        p.declare_extern(
            "malloc",
            ExternEffect {
                allocates: true,
                ..Default::default()
            },
        );
        let mut b = FunctionBuilder::new("f");
        let m1 = b.call_ext("malloc", &[], None);
        let m2 = b.call_ext("malloc", &[], None);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert_eq!(pt.of(f, m1).len(), 1);
        assert_eq!(pt.of(f, m2).len(), 1);
        assert!(!pt.may_overlap((f, m1), (f, m2)));
    }

    #[test]
    fn call_binds_arguments_to_parameters() {
        let mut p = Program::new("t");
        let g = p.add_global("g", 1);
        // callee(ptr) { return ptr; }
        let mut cb = FunctionBuilder::new("callee");
        let param = cb.add_param();
        cb.ret(Some(param));
        let callee = cb.finish(&mut p);
        // caller: r = callee(&g)
        let mut b = FunctionBuilder::new("caller");
        let ag = b.global_addr(g);
        let r = b.call(callee, &[ag]);
        b.ret(None);
        let caller = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert!(pt.of(callee, param).contains(&AbstractObj::Global(g)));
        assert!(pt.of(caller, r).contains(&AbstractObj::Global(g)));
    }

    #[test]
    fn gep_derived_pointers_keep_their_targets() {
        let mut p = Program::new("t");
        let g = p.add_global("buf", 64);
        let mut b = FunctionBuilder::new("f");
        let base = b.global_addr(g);
        let off = b.const_(8);
        let elem = b.gep(base, off);
        let elem2 = b.gep(elem, off);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert!(pt.of(f, elem).contains(&AbstractObj::Global(g)));
        assert!(pt.of(f, elem2).contains(&AbstractObj::Global(g)));
        assert!(pt.may_overlap((f, base), (f, elem2)));
    }

    #[test]
    fn two_level_indirection_resolves() {
        // **slot: slot holds &p, p holds &g; loading twice reaches g.
        let mut prog = Program::new("t");
        let g = prog.add_global("g", 1);
        let pcell = prog.add_global("p", 1);
        let slot = prog.add_global("slot", 1);
        let mut b = FunctionBuilder::new("f");
        let ag = b.global_addr(g);
        let ap = b.global_addr(pcell);
        let aslot = b.global_addr(slot);
        b.store(ap, ag); // *p = &g
        b.store(aslot, ap); // *slot = &p
        let l1 = b.load(aslot); // l1 = *slot  (== &p)
        let l2 = b.load(l1); // l2 = **slot (== &g)
        b.ret(None);
        let f = b.finish(&mut prog);
        let pt = PointsTo::analyze(&prog);
        assert!(pt.of(f, l1).contains(&AbstractObj::Global(pcell)));
        assert!(pt.of(f, l2).contains(&AbstractObj::Global(g)));
    }

    #[test]
    fn return_values_propagate_allocation_sites() {
        // wrapper() { return malloc(); } — the caller's pointer must be
        // the wrapper's allocation site, distinct per call *site* in the
        // callee (context-insensitive: both callers share it).
        let mut p = Program::new("t");
        p.declare_extern(
            "malloc",
            ExternEffect {
                allocates: true,
                ..Default::default()
            },
        );
        let mut wb = FunctionBuilder::new("wrapper");
        let m = wb.call_ext("malloc", &[], None);
        wb.ret(Some(m));
        let wrapper = wb.finish(&mut p);
        let mut cb = FunctionBuilder::new("caller");
        let a = cb.call(wrapper, &[]);
        let b2 = cb.call(wrapper, &[]);
        cb.ret(None);
        let caller = cb.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert_eq!(pt.of(caller, a).len(), 1);
        // Context-insensitivity: both call results share the site.
        assert!(pt.may_overlap((caller, a), (caller, b2)));
    }

    #[test]
    fn non_pointer_values_have_empty_sets() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::new("f");
        let c = b.const_(7);
        b.ret(None);
        let f = b.finish(&mut p);
        let pt = PointsTo::analyze(&p);
        assert!(pt.of(f, c).is_empty());
    }
}
