//! One Criterion bench target per paper table/figure: each bench
//! regenerates its experiment's data (at test size, so `cargo bench`
//! stays fast) and reports the headline numbers to stderr once.
//!
//! For the full-size runs recorded in EXPERIMENTS.md, use the `figures`
//! binary with `--size ref`.

use criterion::{criterion_group, criterion_main, Criterion};
use seqpar_bench::{geomean, sweep_workload, table2, PlanKind};
use seqpar_workloads::{all_workloads, workload_by_name, InputSize};
use std::hint::black_box;
use std::sync::Once;

fn sweep_best(id: &str) -> f64 {
    let w = workload_by_name(id).expect("known benchmark");
    sweep_workload(w.as_ref(), InputSize::Test, PlanKind::Dswp)
        .best()
        .speedup
}

fn fig(c: &mut Criterion, name: &str, ids: &'static [&'static str]) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| eprintln!("(figure data at --size ref lives in EXPERIMENTS.md)"));
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    for id in ids {
        g.bench_function(format!("sweep/{id}"), |b| {
            b.iter(|| black_box(sweep_best(id)));
        });
    }
    g.finish();
}

fn fig4(c: &mut Criterion) {
    fig(
        c,
        "figure4",
        &["181.mcf", "253.perlbmk", "255.vortex", "256.bzip2"],
    );
}

fn fig5(c: &mut Criterion) {
    fig(c, "figure5", &["176.gcc", "254.gap"]);
}

fn fig6(c: &mut Criterion) {
    fig(
        c,
        "figure6",
        &["186.crafty", "197.parser", "300.twolf", "175.vpr"],
    );
}

fn fig7(c: &mut Criterion) {
    fig(c, "figure7", &["164.gzip"]);
}

fn table_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("geomean", |b| {
        b.iter(|| {
            let sweeps: Vec<_> = all_workloads()
                .iter()
                .map(|w| {
                    (
                        w.meta(),
                        sweep_workload(w.as_ref(), InputSize::Test, PlanKind::Dswp),
                    )
                })
                .collect();
            let rows = table2(&sweeps);
            black_box(geomean(rows.iter().map(|r| r.speedup)))
        });
    });
    g.finish();
}

criterion_group!(benches, fig4, fig5, fig6, fig7, table_2);
criterion_main!(benches);
