//! The end-to-end perf harness: measures every workload's
//! conflict-driven native execution and emits a schema-versioned
//! `BENCH_<pr>.json` snapshot (see `BENCHMARKS.md`).
//!
//! Run via `cargo bench -p seqpar-bench --bench snapshot` — arguments
//! after `--` select the scope:
//!
//! ```text
//! --pr <n>             PR number stamped into the file name/document (default 7)
//! --size <test|train|ref>   input scale (default test)
//! --threads <a,b,..>   thread counts (default 1,2,4,8)
//! --workloads <ids|all>     comma-separated SPEC ids (default all 11)
//! --out <path>         output path (default BENCH_<pr>.json)
//! --check <path>       validate an existing snapshot instead of measuring
//! --no-governor        measure with the speculation governor off
//!                      (default: on, with default knobs)
//! --baseline <path>    after measuring, fail if any workload's 8-thread
//!                      speedup drops >10% below this snapshot's
//! ```
//!
//! The harness always validates what it wrote and exits non-zero on a
//! malformed snapshot, so CI can gate on it directly.

use seqpar_bench::snapshot::{compare_gate, measure_workload, to_json, validate};
use seqpar_runtime::GovernorConfig;
use seqpar_workloads::{all_workloads, InputSize};
use std::process::ExitCode;

/// Thread count and tolerated fractional drop for `--baseline` gating.
const GATE_THREADS: usize = 8;
const GATE_TOLERANCE: f64 = 0.10;

struct Args {
    pr: u64,
    size: InputSize,
    threads: Vec<usize>,
    workloads: Vec<String>,
    out: Option<String>,
    check: Option<String>,
    governor: bool,
    baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        pr: 7,
        size: InputSize::Test,
        threads: vec![1, 2, 4, 8],
        workloads: all_workloads()
            .iter()
            .map(|w| w.meta().spec_id.to_string())
            .collect(),
        out: None,
        check: None,
        governor: true,
        baseline: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        // Cargo's libtest shim passes `--bench`; ignore it.
        if flag == "--bench" {
            i += 1;
            continue;
        }
        if flag == "--no-governor" {
            args.governor = false;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--pr" => args.pr = value.parse().map_err(|e| format!("--pr: {e}"))?,
            "--size" => {
                args.size = match value.as_str() {
                    "test" => InputSize::Test,
                    "train" => InputSize::Train,
                    "ref" => InputSize::Ref,
                    other => return Err(format!("unknown size {other}")),
                }
            }
            "--threads" => {
                args.threads = value
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--workloads" => {
                if value != "all" {
                    args.workloads = value.split(',').map(|s| s.trim().to_string()).collect();
                }
            }
            "--out" => args.out = Some(value.clone()),
            "--check" => args.check = Some(value.clone()),
            "--baseline" => args.baseline = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

/// Resolves `path` against the workspace root when relative — cargo
/// runs benches from the package dir, but snapshot paths are
/// conventionally given relative to the repository.
fn from_workspace_root(path: &str) -> String {
    if std::path::Path::new(path).is_absolute() {
        path.to_string()
    } else {
        format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.check {
        let path = &from_workspace_root(path);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("snapshot: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&text) {
            Ok(()) => {
                println!("{path}: snapshot is well-formed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: MALFORMED snapshot: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let governor = args.governor.then(GovernorConfig::default);
    let mut snapshots = Vec::with_capacity(args.workloads.len());
    for id in &args.workloads {
        let snap = measure_workload(id, args.size, &args.threads, governor);
        println!(
            "{}: sequential {:.3} ms{}",
            snap.spec_id,
            snap.sequential_wall_ms,
            snap.points
                .iter()
                .map(|p| format!(
                    "; {}t {:.3} ms ({:.2}x, {} fwd, {} conf, {} silent{})",
                    p.threads,
                    p.wall_ms,
                    p.speedup,
                    p.forwards,
                    p.conflicts,
                    p.silent,
                    p.governor.map_or(String::new(), |g| format!(
                        ", w{} {}deg {}bo",
                        g.final_window, g.degrades, g.backoffs
                    ))
                ))
                .collect::<String>()
        );
        snapshots.push(snap);
    }

    let text = to_json(args.pr, args.size, &snapshots);
    if let Err(e) = validate(&text) {
        eprintln!("snapshot: generated document failed validation: {e}");
        return ExitCode::FAILURE;
    }
    // Default to the workspace root, so the committed trajectory lives
    // beside README.md.
    let out = from_workspace_root(
        &args
            .out
            .unwrap_or_else(|| format!("BENCH_{}.json", args.pr)),
    );
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("snapshot: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({} workloads)", snapshots.len());

    if let Some(baseline) = &args.baseline {
        let path = from_workspace_root(baseline);
        let base = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("snapshot: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match compare_gate(&base, &text, GATE_THREADS, GATE_TOLERANCE) {
            Ok(()) => println!(
                "perf gate vs {path}: no {GATE_THREADS}-thread speedup dropped more than {:.0}%",
                GATE_TOLERANCE * 100.0
            ),
            Err(e) => {
                eprintln!("snapshot: PERF GATE FAILED vs {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
