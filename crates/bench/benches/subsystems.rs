//! Criterion micro-benchmarks for each subsystem: the compiler analyses,
//! the partitioner, the versioned memory, the simulator, and the real
//! workload kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use seqpar::{IterationRecord, IterationTrace, Parallelizer};
use seqpar_runtime::{ExecutionPlan, SimConfig, Simulator};
use seqpar_specmem::{Addr, VersionId, VersionedMemory};
use seqpar_workloads::common::{synthetic_text, WorkMeter};
use seqpar_workloads::{workload_by_name, InputSize};
use std::hint::black_box;

fn bench_compiler_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    for id in ["164.gzip", "176.gcc", "300.twolf"] {
        let w = workload_by_name(id).expect("known benchmark");
        let model = w.ir_model();
        g.bench_function(format!("parallelize/{id}"), |b| {
            b.iter(|| {
                let result = Parallelizer::new(&model.program)
                    .profile(model.profile.clone())
                    .parallelize_outermost(model.func)
                    .expect("parallelizes");
                black_box(result.report().parallel_fraction())
            });
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for n in [1_000u64, 10_000, 100_000] {
        let trace: IterationTrace = (0..n)
            .map(|i| IterationRecord::new(2, 40 + i % 60, 2))
            .collect();
        let graph = trace.task_graph();
        let sim = Simulator::new(SimConfig::with_cores(16));
        let plan = ExecutionPlan::three_phase(16);
        g.bench_function(format!("three_phase/{n}_iters"), |b| {
            b.iter(|| black_box(sim.run(&graph, &plan).expect("valid").makespan));
        });
    }
    g.finish();
}

fn bench_versioned_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("specmem");
    g.bench_function("epoch_of_16_versions", |b| {
        b.iter_batched(
            VersionedMemory::new,
            |mut vm| {
                for v in 0..16u64 {
                    vm.begin(VersionId(v));
                }
                for v in 0..16u64 {
                    for a in 0..8u64 {
                        let addr = Addr(v * 8 + a);
                        let x = vm.read(VersionId(v), addr);
                        vm.write(VersionId(v), addr, x + 1);
                    }
                }
                for v in 0..16u64 {
                    vm.try_commit(VersionId(v)).expect("in order");
                }
                black_box(vm.stats().commits)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(20);
    let text = synthetic_text(64 * 1024, 7);
    g.bench_function("gzip_deflate_64k", |b| {
        b.iter(|| {
            let mut m = WorkMeter::new();
            black_box(seqpar_workloads::gzip::deflate_block(&text, &mut m).len())
        });
    });
    let block = synthetic_text(8 * 1024, 9);
    g.bench_function("bzip2_bwt_8k", |b| {
        b.iter(|| {
            let mut m = WorkMeter::new();
            black_box(seqpar_workloads::bzip2::bwt(&block, &mut m).1)
        });
    });
    g.bench_function("crafty_search_d5", |b| {
        b.iter(|| {
            let mut m = WorkMeter::new();
            let mut tt = seqpar_workloads::crafty::TransTable::new();
            black_box(seqpar_workloads::crafty::search(
                0x186_186_186,
                5,
                i32::MIN + 1,
                i32::MAX - 1,
                &mut tt,
                &mut m,
            ))
        });
    });
    let tags = vec![seqpar_workloads::parser::Tag::Noun; 30];
    g.bench_function("parser_cky_30", |b| {
        b.iter(|| {
            let mut m = WorkMeter::new();
            black_box(seqpar_workloads::parser::parse(&tags, &mut m))
        });
    });
    g.bench_function("vortex_btree_5k_ops", |b| {
        b.iter(|| {
            let mut m = WorkMeter::new();
            let mut tree = seqpar_workloads::vortex::BTree::new();
            for k in 0..5_000u64 {
                tree.insert(k.wrapping_mul(2654435761) % 10_000, k, &mut m);
            }
            black_box(tree.len())
        });
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.sample_size(10);
    for id in ["181.mcf", "254.gap"] {
        let w = workload_by_name(id).expect("known benchmark");
        g.bench_function(format!("generate/{id}"), |b| {
            b.iter(|| black_box(w.trace(InputSize::Test).len()));
        });
    }
    g.finish();
}

fn bench_transforms(c: &mut Criterion) {
    use seqpar_ir::{ExternEffect, FunctionBuilder, Opcode, Program};
    let mut g = c.benchmark_group("transforms");
    // A caller with 8 inlinable helpers.
    let build = || {
        let mut p = Program::new("b");
        p.declare_extern("f", ExternEffect::pure_fn());
        let helpers: Vec<_> = (0..8)
            .map(|i| {
                let mut hb = FunctionBuilder::new(format!("h{i}"));
                let k = hb.add_param();
                let x = hb.call_ext("f", &[k], None);
                let y = hb.binop(Opcode::Add, x, k);
                hb.ret(Some(y));
                hb.finish(&mut p)
            })
            .collect();
        let mut cb = FunctionBuilder::new("caller");
        let mut v = cb.const_(1);
        for h in &helpers {
            v = cb.call(*h, &[v]);
        }
        cb.ret(Some(v));
        let caller = cb.finish(&mut p);
        (p, caller)
    };
    g.bench_function("region_formation/8_calls", |b| {
        b.iter_batched(
            build,
            |(mut p, caller)| black_box(seqpar::form_region(&mut p, caller, 4).calls_inlined),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_transforms,
    bench_compiler_pipeline,
    bench_simulator,
    bench_versioned_memory,
    bench_kernels,
    bench_trace_generation
);
criterion_main!(benches);
