//! Schema-versioned performance snapshots — the `BENCH_<pr>.json`
//! trajectory (see `BENCHMARKS.md` for the schema and regeneration
//! instructions).
//!
//! A snapshot records, per workload, the sequential oracle's wall time
//! and one point per thread count of a conflict-driven native run on
//! [`ConcurrentVersionedMemory`](seqpar_specmem::ConcurrentVersionedMemory):
//! wall-clock milliseconds, speedup vs sequential, and the substrate
//! counters (eager forwards, conflict squashes, elided silent stores,
//! commits) plus the executor's squash count. Wall times vary run to
//! run; the schema and the counters' invariants (speedup finite and
//! positive, commits > 0) are what [`validate`] pins for CI.

use crate::json;
use seqpar_runtime::{ExecConfig, ExecutionPlan, GovernorConfig, GovernorStats};
use seqpar_workloads::{workload_by_name, InputSize};

/// Version stamped into every snapshot; bump when fields change shape.
pub const SCHEMA_VERSION: u64 = 1;

/// One thread count's measurement of one workload.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotPoint {
    /// Worker threads the TLS plan ran.
    pub threads: usize,
    /// Wall-clock milliseconds of the native run.
    pub wall_ms: f64,
    /// Native wall-clock speedup over the sequential oracle run.
    pub speedup: f64,
    /// Reads served by eager forwarding from uncommitted buffers.
    pub forwards: u64,
    /// Conflict violations detected by the substrate (== squashes on a
    /// fault-free run).
    pub conflicts: u64,
    /// Writes elided as silent stores (read-set bets).
    pub silent: u64,
    /// Versions committed by the substrate.
    pub commits: u64,
    /// Frontier squashes the executor performed.
    pub squashes: u64,
    /// The speculation governor's decision counters when the run was
    /// governed; `None` when it was off. Serialized as additive
    /// `gov_*` point fields so older snapshots keep validating.
    pub governor: Option<GovernorStats>,
}

/// One workload's measurements across the thread sweep.
#[derive(Clone, Debug)]
pub struct WorkloadSnapshot {
    /// Benchmark SPEC id (e.g. `164.gzip`).
    pub spec_id: String,
    /// Wall-clock milliseconds of the sequential oracle run.
    pub sequential_wall_ms: f64,
    /// One point per requested thread count, ascending.
    pub points: Vec<SnapshotPoint>,
}

/// Interleaved repetitions per measurement (sequential and every thread
/// point). The recorded wall time is the per-quantity median, so a
/// scheduler hiccup or a lazy-page warm-up in any single run cannot
/// skew a speedup — on shared/virtualized hardware back-to-back runs of
/// the same binary routinely differ by double-digit percentages.
const MEASURE_REPS: usize = 3;

/// Measures one workload: a sequential oracle run plus one
/// conflict-driven TLS run per thread count, each checked byte-identical
/// to the oracle before its numbers are recorded.
///
/// All quantities are measured `MEASURE_REPS` (3) times in interleaved
/// rounds (sequential, then each thread count, repeat) and reported at
/// their median wall time, so slow drift in machine load biases every
/// quantity equally instead of whichever was measured last. The
/// substrate counters come from the median-wall run of each point.
///
/// # Panics
///
/// Panics if `id` names no workload or a run's committed output
/// diverges from the sequential oracle — a snapshot of a broken run
/// would poison the trajectory.
pub fn measure_workload(
    id: &str,
    size: InputSize,
    threads: &[usize],
    governor: Option<GovernorConfig>,
) -> WorkloadSnapshot {
    let w = workload_by_name(id).unwrap_or_else(|| panic!("unknown workload {id}"));
    let job = w.versioned_job(size);
    let mut seq_walls = Vec::with_capacity(MEASURE_REPS);
    let mut runs: Vec<Vec<SnapshotPoint>> = vec![Vec::with_capacity(MEASURE_REPS); threads.len()];
    let mut expected = None;
    for _rep in 0..MEASURE_REPS {
        let seq = job.sequential();
        seq_walls.push(seq.wall.as_secs_f64() * 1e3);
        let expected = expected.get_or_insert(seq.output);
        for (ti, &t) in threads.iter().enumerate() {
            let mut config = ExecConfig::default();
            if let Some(g) = governor {
                config = config.with_governor(g);
            }
            let (report, _mem) = job
                .execute(&ExecutionPlan::tls(t), config)
                .expect("plan matches graph");
            assert_eq!(
                &report.output, expected,
                "{id}: native output diverged from sequential at {t} threads"
            );
            let mem = report.mem.expect("versioned runs report memory stats");
            runs[ti].push(SnapshotPoint {
                threads: t,
                wall_ms: report.wall.as_secs_f64() * 1e3,
                speedup: 0.0, // filled in against the median sequential wall
                forwards: mem.forwards,
                conflicts: mem.violations,
                silent: mem.silent_stores,
                commits: mem.commits,
                squashes: report.squashes,
                governor: report.governor,
            });
        }
    }
    let median = |walls: &mut Vec<f64>| -> f64 {
        walls.sort_by(f64::total_cmp);
        walls[walls.len() / 2]
    };
    let seq_wall_ms = median(&mut seq_walls);
    let points = runs
        .into_iter()
        .map(|mut reps| {
            reps.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
            let mut point = reps.swap_remove(reps.len() / 2);
            point.speedup = seq_wall_ms / point.wall_ms;
            point
        })
        .collect();
    WorkloadSnapshot {
        spec_id: w.meta().spec_id.to_string(),
        sequential_wall_ms: seq_wall_ms,
        points,
    }
}

/// Serializes a snapshot set to the `BENCH_<pr>.json` document.
pub fn to_json(pr: u64, size: InputSize, snapshots: &[WorkloadSnapshot]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"pr\": {pr},\n"));
    out.push_str(&format!("  \"input_size\": \"{size}\",\n"));
    out.push_str("  \"workloads\": [\n");
    for (wi, w) in snapshots.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"spec_id\": \"{}\",\n", w.spec_id));
        out.push_str(&format!(
            "      \"sequential_wall_ms\": {:.4},\n",
            w.sequential_wall_ms
        ));
        out.push_str("      \"points\": [\n");
        for (pi, p) in w.points.iter().enumerate() {
            let gov = p.governor.map_or(String::new(), |g| {
                format!(
                    ", \"gov_shrinks\": {}, \"gov_grows\": {}, \"gov_degrades\": {}, \
                     \"gov_backoffs\": {}, \"gov_degraded_commits\": {}, \
                     \"gov_final_window\": {}",
                    g.shrinks, g.grows, g.degrades, g.backoffs, g.degraded_commits, g.final_window
                )
            });
            out.push_str(&format!(
                "        {{\"threads\": {}, \"wall_ms\": {:.4}, \"speedup\": {:.4}, \
                 \"forwards\": {}, \"conflicts\": {}, \"silent\": {}, \
                 \"commits\": {}, \"squashes\": {}{}}}{}\n",
                p.threads,
                p.wall_ms,
                p.speedup,
                p.forwards,
                p.conflicts,
                p.silent,
                p.commits,
                p.squashes,
                gov,
                if pi + 1 < w.points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < snapshots.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Per-point fields [`validate`] requires on every snapshot point.
const POINT_FIELDS: &[&str] = &[
    "threads",
    "wall_ms",
    "speedup",
    "forwards",
    "conflicts",
    "silent",
    "commits",
    "squashes",
];

/// Validates a `BENCH_<pr>.json` document: parses it, checks the schema
/// version and every required field, and rejects degenerate
/// measurements (non-finite or non-positive speedups, zero commits) —
/// the checks the CI `bench-snapshot` job gates on.
///
/// # Errors
///
/// Returns a description of the first defect found.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = doc
        .get("schema_version")
        .and_then(json::Value::as_f64)
        .ok_or("missing schema_version")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {schema} != {SCHEMA_VERSION}"));
    }
    doc.get("pr")
        .and_then(json::Value::as_f64)
        .ok_or("missing pr")?;
    doc.get("input_size")
        .and_then(json::Value::as_str)
        .ok_or("missing input_size")?;
    let workloads = doc
        .get("workloads")
        .and_then(json::Value::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("workloads array is empty".to_string());
    }
    for w in workloads {
        let id = w
            .get("spec_id")
            .and_then(json::Value::as_str)
            .ok_or("workload missing spec_id")?;
        let seq = w
            .get("sequential_wall_ms")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{id}: missing sequential_wall_ms"))?;
        if !seq.is_finite() || seq <= 0.0 {
            return Err(format!("{id}: degenerate sequential_wall_ms {seq}"));
        }
        let points = w
            .get("points")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("{id}: missing points array"))?;
        if points.is_empty() {
            return Err(format!("{id}: points array is empty"));
        }
        for p in points {
            for field in POINT_FIELDS {
                p.get(field)
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| format!("{id}: point missing {field}"))?;
            }
            let speedup = p
                .get("speedup")
                .and_then(json::Value::as_f64)
                .expect("checked");
            if !speedup.is_finite() || speedup <= 0.0 {
                return Err(format!("{id}: degenerate speedup {speedup}"));
            }
            let commits = p
                .get("commits")
                .and_then(json::Value::as_f64)
                .expect("checked");
            if commits <= 0.0 {
                return Err(format!("{id}: substrate committed nothing"));
            }
        }
    }
    Ok(())
}

/// Compares a freshly measured snapshot against a committed baseline:
/// for every workload present in both, the `threads`-point speedup may
/// not drop more than `tolerance` (a fraction, e.g. `0.10`) below the
/// baseline's. This is the CI perf gate — it catches a governor or
/// executor change that quietly trades one workload's throughput for
/// another's.
///
/// Workloads only in the baseline are an error (coverage must never
/// shrink); workloads only in the current snapshot are fine (coverage
/// may grow). Both documents must pass [`validate`] first.
///
/// # Errors
///
/// Returns a description of every regressing workload, joined with
/// `; `, or the first structural defect found.
pub fn compare_gate(
    baseline: &str,
    current: &str,
    threads: usize,
    tolerance: f64,
) -> Result<(), String> {
    let point_speedup = |doc: &json::Value, id: &str| -> Option<f64> {
        doc.get("workloads")
            .and_then(json::Value::as_array)?
            .iter()
            .find(|w| w.get("spec_id").and_then(json::Value::as_str) == Some(id))?
            .get("points")
            .and_then(json::Value::as_array)?
            .iter()
            .find(|p| p.get("threads").and_then(json::Value::as_f64) == Some(threads as f64))?
            .get("speedup")
            .and_then(json::Value::as_f64)
    };
    validate(baseline).map_err(|e| format!("baseline snapshot invalid: {e}"))?;
    validate(current).map_err(|e| format!("current snapshot invalid: {e}"))?;
    let base = json::parse(baseline).expect("validated");
    let cur = json::parse(current).expect("validated");
    let ids: Vec<String> = base
        .get("workloads")
        .and_then(json::Value::as_array)
        .expect("validated")
        .iter()
        .filter_map(|w| w.get("spec_id").and_then(json::Value::as_str))
        .map(str::to_string)
        .collect();
    let mut failures = Vec::new();
    for id in &ids {
        let Some(was) = point_speedup(&base, id) else {
            // The baseline has no point at this thread count — nothing
            // to gate for this workload.
            continue;
        };
        let Some(now) = point_speedup(&cur, id) else {
            failures.push(format!("{id}: missing from the current snapshot"));
            continue;
        };
        let floor = was * (1.0 - tolerance);
        if now < floor {
            failures.push(format!(
                "{id}: {threads}-thread speedup {now:.4} fell below {floor:.4} \
                 (baseline {was:.4} - {:.0}%)",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WorkloadSnapshot> {
        vec![WorkloadSnapshot {
            spec_id: "164.gzip".to_string(),
            sequential_wall_ms: 12.5,
            points: vec![SnapshotPoint {
                threads: 4,
                wall_ms: 4.2,
                speedup: 2.97,
                forwards: 10,
                conflicts: 1,
                silent: 3,
                commits: 20,
                squashes: 1,
                governor: None,
            }],
        }]
    }

    #[test]
    fn roundtrip_serializes_and_validates() {
        let text = to_json(6, InputSize::Test, &sample());
        validate(&text).expect("well-formed snapshot");
        let doc = json::parse(&text).expect("parses");
        assert_eq!(
            doc.get("schema_version").and_then(json::Value::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("pr").and_then(json::Value::as_f64), Some(6.0));
        let w = &doc
            .get("workloads")
            .and_then(json::Value::as_array)
            .unwrap()[0];
        assert_eq!(
            w.get("spec_id").and_then(json::Value::as_str),
            Some("164.gzip")
        );
        let p = &w.get("points").and_then(json::Value::as_array).unwrap()[0];
        assert_eq!(p.get("forwards").and_then(json::Value::as_f64), Some(10.0));
    }

    #[test]
    fn validate_rejects_missing_fields_and_bad_speedups() {
        assert!(validate("{}").is_err(), "missing everything");
        assert!(validate("not json").is_err());

        let mut snaps = sample();
        snaps[0].points[0].speedup = 0.0;
        let zero = to_json(6, InputSize::Test, &snaps);
        assert!(
            validate(&zero).unwrap_err().contains("degenerate speedup"),
            "zero speedup must be rejected"
        );

        snaps[0].points[0].speedup = f64::NAN;
        let nan = to_json(6, InputSize::Test, &snaps);
        assert!(
            validate(&nan).is_err(),
            "NaN speedup must be rejected (unparsable or degenerate)"
        );

        let missing = to_json(6, InputSize::Test, &sample()).replace("\"squashes\"", "\"sqashes\"");
        assert!(
            validate(&missing).unwrap_err().contains("missing squashes"),
            "missing point field must be named in the error"
        );
    }

    #[test]
    fn measure_workload_produces_validating_snapshot() {
        let snap = measure_workload("164.gzip", InputSize::Test, &[1, 2], None);
        assert_eq!(snap.points.len(), 2);
        assert!(snap.points.iter().all(|p| p.governor.is_none()));
        let text = to_json(6, InputSize::Test, &[snap]);
        validate(&text).expect("measured snapshot validates");
    }

    #[test]
    fn governed_measurement_adds_additive_fields_and_still_validates() {
        let snap = measure_workload(
            "164.gzip",
            InputSize::Test,
            &[2],
            Some(GovernorConfig::default()),
        );
        assert!(snap.points[0].governor.is_some(), "governed run has stats");
        let text = to_json(7, InputSize::Test, &[snap]);
        assert!(text.contains("gov_final_window"), "gov_* fields serialized");
        validate(&text).expect("governed snapshot validates under the old schema");
    }

    #[test]
    fn compare_gate_passes_within_tolerance_and_names_regressions() {
        let baseline = to_json(6, InputSize::Test, &sample());
        let mut snaps = sample();
        snaps[0].points[0].speedup = 2.97 * 0.95; // -5%: inside a 10% gate
        let ok = to_json(7, InputSize::Test, &snaps);
        compare_gate(&baseline, &ok, 4, 0.10).expect("5% drop passes a 10% gate");

        snaps[0].points[0].speedup = 2.97 * 0.85; // -15%: outside
        let bad = to_json(7, InputSize::Test, &snaps);
        let err = compare_gate(&baseline, &bad, 4, 0.10).unwrap_err();
        assert!(err.contains("164.gzip"), "regression names the workload");

        // A workload disappearing from the current snapshot fails too.
        let mut renamed = sample();
        renamed[0].spec_id = "999.other".to_string();
        let shrunk = to_json(7, InputSize::Test, &renamed);
        let err = compare_gate(&baseline, &shrunk, 4, 0.10).unwrap_err();
        assert!(err.contains("missing from the current snapshot"));

        // No baseline point at the gated thread count: nothing to gate.
        compare_gate(&baseline, &bad, 8, 0.10).expect("ungated thread count passes");
    }
}
