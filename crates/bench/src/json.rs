//! A minimal JSON reader for validating exported Chrome traces.
//!
//! The workspace has no `serde_json`, so `seqpar-trace --check` needs
//! its own way to answer "is this file a Chrome `trace_event` document
//! Perfetto will accept?". This module is a small recursive-descent
//! parser over the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, literals) plus [`check_chrome_trace`], which
//! enforces the subset of the `trace_event` schema the exporter
//! produces.
//!
//! It is a *validator*, not a general-purpose serde replacement:
//! numbers are kept as `f64`, and there is no serialization half.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; trace timestamps fit exactly).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps key order deterministic for tests.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up `key`, if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our exporter's
                            // output; map them to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// What [`check_chrome_trace`] counted in a valid trace document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `"X"` complete slices (task executions).
    pub slices: usize,
    /// `"i"` instants (commits, squashes, speculation decisions).
    pub instants: usize,
    /// The subset of instants in the `governor` category
    /// (throttle/backoff/degrade/reprobe decisions).
    pub governor: usize,
    /// `"C"` counter samples (queue occupancy).
    pub counters: usize,
    /// `"M"` metadata records (process/thread names).
    pub metadata: usize,
}

/// Validates `text` as a Chrome `trace_event` JSON document of the shape
/// `seqpar_runtime::Timeline::to_chrome_json` exports.
///
/// Checks, per the trace-event format spec:
///
/// * the document is an object with a `traceEvents` array;
/// * every event is an object with string `ph` and `name`, and numeric
///   `pid`;
/// * phase-specific fields: `"X"` needs numeric `ts` and `dur` and a
///   numeric `tid`; `"i"` needs numeric `ts` and a scope `s` of `"t"`,
///   `"p"`, or `"g"`; `"C"` needs numeric `ts` and an `args` object
///   with at least one numeric series; `"M"` needs an `args` object.
///
/// # Errors
///
/// Returns a human-readable description of the first defect found
/// (parse error or schema violation).
pub fn check_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no string \"ph\""))?;
        if obj.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i} has no string \"name\""));
        }
        if obj.get("pid").and_then(Value::as_f64).is_none() {
            return Err(format!("event {i} has no numeric \"pid\""));
        }
        let num = |key: &str| obj.get(key).and_then(Value::as_f64);
        match ph {
            "X" => {
                if num("ts").is_none() || num("dur").is_none() || num("tid").is_none() {
                    return Err(format!("slice event {i} lacks numeric ts/dur/tid"));
                }
                check.slices += 1;
            }
            "i" => {
                if num("ts").is_none() {
                    return Err(format!("instant event {i} lacks numeric ts"));
                }
                match obj.get("s").and_then(Value::as_str) {
                    Some("t" | "p" | "g") => {}
                    _ => return Err(format!("instant event {i} has no scope s in t/p/g")),
                }
                check.instants += 1;
                if obj.get("cat").and_then(Value::as_str) == Some("governor") {
                    check.governor += 1;
                }
            }
            "C" => {
                let series_ok = obj
                    .get("args")
                    .and_then(Value::as_object)
                    .is_some_and(|args| args.values().any(|v| v.as_f64().is_some()));
                if num("ts").is_none() || !series_ok {
                    return Err(format!("counter event {i} lacks ts or a numeric series"));
                }
                check.counters += 1;
            }
            "M" => {
                if obj.get("args").and_then(Value::as_object).is_none() {
                    return Err(format!("metadata event {i} lacks an args object"));
                }
                check.metadata += 1;
            }
            other => return Err(format!("event {i} has unsupported phase {other:?}")),
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false, "x\n\"y\""]}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        let d = v.get("b").unwrap().get("d").unwrap().as_array().unwrap();
        assert_eq!(d[2].as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn decodes_unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accepts_a_well_formed_chrome_trace() {
        let text = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"ph":"M","pid":1,"name":"process_name","args":{"name":"seqpar"}},
            {"ph":"X","pid":1,"tid":2,"ts":0,"dur":10,"name":"B t1#0","args":{"task":1}},
            {"ph":"i","pid":1,"tid":0,"ts":12,"s":"t","name":"commit t1"},
            {"ph":"C","pid":1,"tid":0,"ts":5,"name":"queue B","args":{"occupancy":3}}
        ]}"#;
        let check = check_chrome_trace(text).unwrap();
        assert_eq!(check.events, 4);
        assert_eq!(check.slices, 1);
        assert_eq!(check.instants, 1);
        assert_eq!(check.counters, 1);
        assert_eq!(check.metadata, 1);
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(check_chrome_trace("[]").is_err());
        assert!(check_chrome_trace(r#"{"traceEvents": 3}"#).is_err());
        // Slice without dur.
        let no_dur = r#"{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"name":"x"}]}"#;
        assert!(check_chrome_trace(no_dur)
            .unwrap_err()
            .contains("ts/dur/tid"));
        // Instant without scope.
        let no_scope = r#"{"traceEvents":[{"ph":"i","pid":1,"ts":0,"name":"x"}]}"#;
        assert!(check_chrome_trace(no_scope).unwrap_err().contains("scope"));
        // Unknown phase.
        let bad_ph = r#"{"traceEvents":[{"ph":"Z","pid":1,"name":"x"}]}"#;
        assert!(check_chrome_trace(bad_ph)
            .unwrap_err()
            .contains("unsupported phase"));
    }
}
