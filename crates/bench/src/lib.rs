//! Experiment harness: sweeps, tables, and figure regeneration.
//!
//! This crate turns workload traces into the paper's tables and figures.
//! The entry point is the `figures` binary (`cargo run -p seqpar-bench
//! --bin figures -- all`); the library half exposes the sweep machinery
//! so integration tests and Criterion benches can reuse it.

#![warn(missing_docs)]

pub mod json;
pub mod snapshot;

use seqpar::IterationTrace;
use seqpar_runtime::{
    CriticalPath, ExecConfig, ExecutionPlan, GovernorStats, NativeReport, SimConfig, SimResult,
    Simulator, TimeUnit, Timeline, TraceEventKind,
};
use seqpar_specmem::MemStats;
use seqpar_workloads::{InputSize, Workload, WorkloadMeta};

/// The thread counts used throughout the paper's figures.
pub const THREAD_SWEEP: &[usize] = &[1, 2, 4, 6, 8, 10, 12, 15, 16, 20, 24, 28, 32];

/// The thread counts used for native (real OS thread) runs. Wall-clock
/// scaling is bounded by the host's physical cores, so the sweep stays
/// within commodity core counts.
pub const NATIVE_THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// How iterations are scheduled in a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// The paper's three-phase DSWP plan (§3.2).
    Dswp,
    /// The TLS-style single-stage plan.
    Tls,
}

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Thread (core) count.
    pub threads: usize,
    /// Speedup of multi-threaded over single-threaded execution.
    pub speedup: f64,
    /// Fraction of speculations that were violated.
    pub misspec_rate: f64,
    /// Core utilization.
    pub utilization: f64,
    /// Wall-clock time of the native (real-thread) run, in milliseconds.
    /// `None` for simulator-only sweeps.
    pub native_wall_ms: Option<f64>,
    /// Wall-clock speedup of the native run over the sequential native
    /// run. `None` for simulator-only sweeps.
    pub native_speedup: Option<f64>,
    /// Faults recovered by the native supervisor (panics, corruptions,
    /// spurious squashes). `None` for simulator-only sweeps.
    pub faults_recovered: Option<u64>,
    /// Versioned-memory substrate counters for conflict-driven runs.
    /// `None` for simulator-only sweeps.
    pub mem: Option<MemStats>,
    /// Speculation-governor counters, when the run was governed
    /// ([`ExecConfig::governor`] set). `None` for simulator-only sweeps
    /// and ungoverned native runs.
    pub governor: Option<GovernorStats>,
}

/// A full speedup curve for one benchmark.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Benchmark SPEC id.
    pub spec_id: String,
    /// The points, in ascending thread order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The best speedup and the minimum thread count achieving it
    /// (within 1%), as in Table 2.
    pub fn best(&self) -> SweepPoint {
        let max = self.points.iter().map(|p| p.speedup).fold(0.0f64, f64::max);
        *self
            .points
            .iter()
            .find(|p| p.speedup >= max * 0.99)
            .expect("sweep is non-empty")
    }

    /// The speedup at a specific thread count, if swept.
    pub fn at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.speedup)
    }
}

/// Simulates one trace at one thread count under the given plan.
pub fn simulate(trace: &IterationTrace, threads: usize, kind: PlanKind) -> SimResult {
    let (graph, plan) = match kind {
        PlanKind::Dswp => (trace.task_graph(), ExecutionPlan::three_phase(threads)),
        PlanKind::Tls => (trace.tls_task_graph(), ExecutionPlan::tls(threads)),
    };
    // Channel buffering: a stage-to-stage channel gangs several of the
    // machine's 256 hardware queues (only a handful of channels exist),
    // giving 128 in-flight iterations; the single-queue 32-entry case is
    // measured by the queue-capacity ablation.
    let sim = Simulator::new(SimConfig {
        cores: threads,
        comm_latency: 10,
        queue_capacity: 128,
        ..SimConfig::default()
    });
    sim.run(&graph, &plan).expect("plan matches machine")
}

/// Sweeps a precomputed trace over `threads`.
pub fn sweep_trace(
    spec_id: &str,
    trace: &IterationTrace,
    threads: &[usize],
    kind: PlanKind,
) -> SweepResult {
    let points = threads
        .iter()
        .map(|&t| {
            let r = simulate(trace, t, kind);
            let total_spec = r.violations + r.speculations_survived;
            SweepPoint {
                threads: t,
                speedup: r.speedup(),
                misspec_rate: if total_spec == 0 {
                    0.0
                } else {
                    r.violations as f64 / total_spec as f64
                },
                utilization: r.utilization(),
                native_wall_ms: None,
                native_speedup: None,
                faults_recovered: None,
                mem: None,
                governor: None,
            }
        })
        .collect();
    SweepResult {
        spec_id: spec_id.to_string(),
        points,
    }
}

/// Runs the full sweep for one workload.
pub fn sweep_workload(w: &dyn Workload, size: InputSize, kind: PlanKind) -> SweepResult {
    let trace = w.trace(size);
    sweep_trace(w.meta().spec_id, &trace, THREAD_SWEEP, kind)
}

/// Sweeps one workload on *real OS threads* via the native executor,
/// filling the wall-clock columns of [`SweepPoint`] alongside the
/// simulator's estimate at the same thread count.
///
/// Every native run's output is checked byte-for-byte against the
/// sequential run — the sweep panics on a mismatch rather than report
/// timings for an execution that broke sequential semantics. This holds
/// even when `config` carries a [`FaultPlan`](seqpar_runtime::FaultPlan):
/// supervised recovery must restore the sequential byte stream.
///
/// Every workload runs conflict-driven through its
/// [`VersionedJob`](seqpar_workloads::VersionedJob) — the substrate is
/// the only native path — so every point carries [`SweepPoint::mem`].
pub fn native_sweep(
    w: &dyn Workload,
    size: InputSize,
    kind: PlanKind,
    threads: &[usize],
    config: &ExecConfig,
) -> SweepResult {
    let versioned = w.versioned_job(size);
    let seq = versioned.sequential();
    let trace = versioned.trace().clone();
    let points = threads
        .iter()
        .map(|&t| {
            let plan = match kind {
                PlanKind::Dswp => ExecutionPlan::three_phase(t),
                PlanKind::Tls => ExecutionPlan::tls(t),
            };
            let report = versioned
                .execute(&plan, config.clone())
                .expect("plan matches machine and faults are recoverable")
                .0;
            assert_eq!(
                report.output,
                seq.output,
                "{}: native output diverged from sequential at {t} threads",
                w.meta().spec_id
            );
            let sim = simulate(&trace, t, kind);
            SweepPoint {
                threads: t,
                speedup: sim.speedup(),
                misspec_rate: report.misspec_rate(),
                utilization: sim.utilization(),
                native_wall_ms: Some(report.wall.as_secs_f64() * 1e3),
                native_speedup: Some(report.speedup_vs(seq.wall)),
                faults_recovered: Some(report.recovery.faults_recovered()),
                mem: report.mem,
                governor: report.governor,
            }
        })
        .collect();
    SweepResult {
        spec_id: w.meta().spec_id.to_string(),
        points,
    }
}

/// Renders a native sweep as an ASCII table with the wall-clock columns:
/// simulator speedup, native wall time, and native wall-clock speedup.
///
/// Sweeps are conflict-driven on versioned memory for every workload,
/// so the three substrate columns — eager forwards served, conflict
/// squashes, and elided silent stores — always render. Their counts are
/// timing-dependent; only the committed byte stream is deterministic.
pub fn render_native_curve(curve: &SweepResult) -> String {
    // wall * wall-speedup recovers the sequential wall time any point
    // was normalized against.
    let seq_wall_ms = curve
        .points
        .iter()
        .find_map(|p| Some(p.native_wall_ms? * p.native_speedup?))
        .unwrap_or(f64::NAN);
    let mut out = String::new();
    out.push_str(&format!(
        "## {}: native execution (sequential {seq_wall_ms:.2} ms; conflict-driven on versioned memory)\n",
        curve.spec_id,
    ));
    // The governor columns render only for governed curves: every
    // point of a governed sweep carries stats (the same `ExecConfig`
    // produced each point), and an ungoverned table stays byte-stable.
    let governed = curve.points.iter().all(|p| p.governor.is_some());
    out.push_str(&format!(
        "{:>8}{:>14}{:>14}{:>14}{:>10}{:>11}{:>10}{:>11}{:>8}",
        "threads",
        "sim-speedup",
        "wall(ms)",
        "wall-speedup",
        "misspec",
        "recovered",
        "forwards",
        "conflicts",
        "silent"
    ));
    if governed {
        out.push_str(&format!(
            "{:>7}{:>9}{:>9}{:>9}",
            "gov-w", "degrades", "reprobes", "backoffs"
        ));
    }
    out.push('\n');
    for p in &curve.points {
        out.push_str(&format!(
            "{:>8}{:>14.2}{:>14.3}{:>14.2}{:>10.3}{:>11}",
            p.threads,
            p.speedup,
            p.native_wall_ms.unwrap_or(f64::NAN),
            p.native_speedup.unwrap_or(f64::NAN),
            p.misspec_rate,
            p.faults_recovered.unwrap_or(0)
        ));
        match p.mem {
            Some(m) => out.push_str(&format!(
                "{:>10}{:>11}{:>8}",
                m.forwards, m.violations, m.silent_stores
            )),
            None => out.push_str(&format!("{:>10}{:>11}{:>8}", "-", "-", "-")),
        }
        if governed {
            let g = p.governor.expect("governed curve");
            out.push_str(&format!(
                "{:>7}{:>9}{:>9}{:>9}",
                g.final_window,
                g.degrades,
                g.reprobes,
                g.backoffs + g.parks
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders a set of curves as an ASCII table (threads × benchmarks), the
/// textual equivalent of the paper's figures.
pub fn render_curves(title: &str, curves: &[SweepResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{:>8}", "threads"));
    for c in curves {
        out.push_str(&format!("{:>14}", c.spec_id));
    }
    out.push('\n');
    for (i, &t) in THREAD_SWEEP.iter().enumerate() {
        out.push_str(&format!("{t:>8}"));
        for c in curves {
            out.push_str(&format!("{:>14.2}", c.points[i].speedup));
        }
        out.push('\n');
    }
    out
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark id.
    pub spec_id: String,
    /// Minimum threads at which the best speedup occurs.
    pub threads: usize,
    /// Best speedup.
    pub speedup: f64,
    /// Moore's-law reference speedup at that thread count.
    pub moore: f64,
    /// speedup / moore.
    pub ratio: f64,
    /// The paper's reported speedup, for side-by-side comparison.
    pub paper_speedup: f64,
    /// The paper's reported thread count.
    pub paper_threads: u32,
    /// `seqpar-lint` verdict for this benchmark's plan (e.g. `clean`,
    /// `warn(1)`, `DENY(2)`). `None` unless the caller ran the linter
    /// (the `figures --lint` path fills it in).
    pub lint: Option<String>,
}

/// Computes Table 2 from sweeps.
pub fn table2(sweeps: &[(WorkloadMeta, SweepResult)]) -> Vec<Table2Row> {
    sweeps
        .iter()
        .map(|(meta, sweep)| {
            let best = sweep.best();
            let moore = WorkloadMeta::moore_speedup(best.threads as u32);
            Table2Row {
                spec_id: meta.spec_id.to_string(),
                threads: best.threads,
                speedup: best.speedup,
                moore,
                ratio: best.speedup / moore,
                paper_speedup: meta.paper_speedup,
                paper_threads: meta.paper_threads,
                lint: None,
            }
        })
        .collect()
}

/// Geometric mean of a positive series.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Renders Table 2 rows.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let with_lint = rows.iter().any(|r| r.lint.is_some());
    let mut out = String::new();
    out.push_str("## Table 2: best speedup vs Moore's-law reference\n");
    out.push_str(&format!(
        "{:<14}{:>9}{:>9}{:>8}{:>7} |{:>9}{:>9}",
        "benchmark", "threads", "speedup", "moore", "ratio", "paper", "paper#"
    ));
    if with_lint {
        out.push_str("  lint");
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<14}{:>9}{:>9.2}{:>8.2}{:>7.2} |{:>9.2}{:>9}",
            r.spec_id, r.threads, r.speedup, r.moore, r.ratio, r.paper_speedup, r.paper_threads
        ));
        if let Some(v) = &r.lint {
            out.push_str(&format!("  {v}"));
        }
        out.push('\n');
    }
    let gm_speedup = geomean(rows.iter().map(|r| r.speedup));
    let gm_threads = geomean(rows.iter().map(|r| r.threads as f64));
    let gm_moore = geomean(rows.iter().map(|r| r.moore));
    let gm_ratio = geomean(rows.iter().map(|r| r.ratio));
    let am = |f: &dyn Fn(&Table2Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    out.push_str(&format!(
        "{:<14}{:>9.0}{:>9.2}{:>8.2}{:>7.2} |{:>9.2}\n",
        "GeoMean",
        gm_threads,
        gm_speedup,
        gm_moore,
        gm_ratio,
        geomean(rows.iter().map(|r| r.paper_speedup)),
    ));
    out.push_str(&format!(
        "{:<14}{:>9.0}{:>9.2}{:>8.2}{:>7.2} |{:>9.2}\n",
        "ArithMean",
        am(&|r| r.threads as f64),
        am(&|r| r.speedup),
        am(&|r| r.moore),
        am(&|r| r.ratio),
        am(&|r| r.paper_speedup),
    ));
    out
}

/// Renders the first `width` cycles of a traced schedule as an ASCII
/// Gantt chart (one row per core), for examples and debugging.
pub fn render_gantt(
    placements: &[seqpar_runtime::TaskPlacement],
    cores: usize,
    width: u64,
) -> String {
    const COLUMNS: usize = 72;
    let scale = (width.max(1) as f64) / COLUMNS as f64;
    let mut rows = vec![vec![b'.'; COLUMNS]; cores];
    for p in placements {
        if p.start >= width {
            continue;
        }
        let lo = (p.start as f64 / scale) as usize;
        let hi = (((p.end.min(width)) as f64 / scale) as usize).max(lo + 1);
        let glyph = b"ABCDEFGHIJ"[p.task.0 as usize % 10];
        for cell in rows[p.core].iter_mut().take(hi.min(COLUMNS)).skip(lo) {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    for (c, row) in rows.iter().enumerate() {
        out.push_str(&format!("core {c:>2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// A traced native run of one workload: the report, its structured
/// timeline, and the sequential wall time it was checked against.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// The native executor's report (timeline detached into
    /// [`TracedRun::timeline`]).
    pub report: NativeReport,
    /// The stitched execution timeline (validated by the caller;
    /// [`trace_native`] only guarantees it is present).
    pub timeline: Timeline,
    /// Wall-clock milliseconds of the sequential reference run.
    pub sequential_wall_ms: f64,
}

/// Runs one workload on real OS threads with structured tracing enabled
/// and returns the report plus its [`Timeline`].
///
/// As with [`native_sweep`], the committed output is checked
/// byte-for-byte against the sequential run before anything is
/// returned — a trace of an execution that broke sequential semantics
/// would be worse than no trace. Every workload runs conflict-driven on
/// the versioned-memory substrate, so reports carry
/// [`NativeReport::mem`] and timelines the
/// `VersionOpen`/`VersionReads`/`VersionConflict`/`VersionCommit`
/// events.
pub fn trace_native(
    w: &dyn Workload,
    size: InputSize,
    kind: PlanKind,
    threads: usize,
    config: &ExecConfig,
) -> TracedRun {
    let job = w.versioned_job(size);
    let plan = match kind {
        PlanKind::Dswp => ExecutionPlan::three_phase(threads),
        PlanKind::Tls => ExecutionPlan::tls(threads),
    };
    let seq = job.sequential();
    let (mut report, _mem) = job
        .execute(&plan, config.clone().with_tracing(true))
        .expect("plan matches machine and faults are recoverable");
    assert_eq!(
        report.output,
        seq.output,
        "{}: native output diverged from sequential at {threads} threads",
        w.meta().spec_id
    );
    let timeline = report
        .timeline
        .take()
        .expect("traced run carries a timeline");
    TracedRun {
        report,
        timeline,
        sequential_wall_ms: seq.wall.as_secs_f64() * 1e3,
    }
}

/// Renders a timeline's per-stage histograms as an ASCII table — the
/// `figures --trace-summary` / `seqpar-trace` terminal view. One row per
/// stage: attempts, commits, service-time percentiles, queue wait,
/// commit latency, and each stage's share of total busy time.
///
/// `labels` names the stages (see
/// [`seqpar_workloads::stage_labels`]); stages beyond the slice fall
/// back to `stage N`.
pub fn render_trace_summary(timeline: &Timeline, labels: &[String]) -> String {
    let unit = timeline.unit();
    let metrics = timeline.stage_metrics();
    let total_busy: u64 = metrics.iter().map(seqpar_runtime::StageMetrics::busy).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "### trace summary: {} events over {} {unit}\n",
        timeline.len(),
        timeline.span()
    ));
    out.push_str(&format!(
        "{:<16}{:>9}{:>9}{:>12}{:>12}{:>12}{:>12}{:>12}{:>7}\n",
        "stage",
        "attempts",
        "commits",
        "svc-p50",
        "svc-p90",
        "svc-max",
        "qwait-p50",
        "commit-p50",
        "busy%"
    ));
    for m in &metrics {
        let label = labels
            .get(m.stage.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("stage {}", m.stage.0));
        let share = if total_busy == 0 {
            0.0
        } else {
            100.0 * m.busy() as f64 / total_busy as f64
        };
        out.push_str(&format!(
            "{label:<16}{:>9}{:>9}{:>12}{:>12}{:>12}{:>12}{:>12}{share:>6.1}%\n",
            m.attempts,
            m.committed,
            m.service.p50,
            m.service.p90,
            m.service.max,
            m.queue_wait.p50,
            m.commit_latency.p50,
        ));
    }
    out
}

/// Renders the versioned-memory substrate's per-stage activity as an
/// ASCII table: versions opened, tracked reads, eager forwards served,
/// conflict squashes, and version commits (with total committed
/// writes). Built from the timeline's
/// `VersionOpen`/`VersionReads`/`VersionConflict`/`VersionCommit`
/// events; returns the empty string when the timeline carries none
/// (e.g. a trace-driven [`NativeJob`](seqpar_workloads::NativeJob) replay).
pub fn render_memory_summary(timeline: &Timeline, labels: &[String]) -> String {
    #[derive(Clone, Copy, Default)]
    struct StageMem {
        opens: u64,
        reads: u64,
        forwards: u64,
        conflicts: u64,
        commits: u64,
        writes: u64,
    }
    let mut stages: Vec<(u8, StageMem)> = Vec::new();
    let slot = |stage: u8, stages: &mut Vec<(u8, StageMem)>| -> usize {
        if let Some(i) = stages.iter().position(|(s, _)| *s == stage) {
            i
        } else {
            stages.push((stage, StageMem::default()));
            stages.sort_by_key(|(s, _)| *s);
            stages
                .iter()
                .position(|(s, _)| *s == stage)
                .expect("just inserted")
        }
    };
    for e in timeline.events() {
        match e.kind {
            TraceEventKind::VersionOpen { stage, .. } => {
                let i = slot(stage, &mut stages);
                stages[i].1.opens += 1;
            }
            TraceEventKind::VersionReads {
                stage,
                reads,
                forwards,
                ..
            } => {
                let i = slot(stage, &mut stages);
                stages[i].1.reads += reads;
                stages[i].1.forwards += forwards;
            }
            TraceEventKind::VersionConflict { stage, .. } => {
                let i = slot(stage, &mut stages);
                stages[i].1.conflicts += 1;
            }
            TraceEventKind::VersionCommit { stage, writes, .. } => {
                let i = slot(stage, &mut stages);
                stages[i].1.commits += 1;
                stages[i].1.writes += writes;
            }
            _ => {}
        }
    }
    if stages.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("### memory substrate (per stage; counts are timing-dependent)\n");
    out.push_str(&format!(
        "{:<16}{:>9}{:>9}{:>10}{:>11}{:>9}{:>9}\n",
        "stage", "opens", "reads", "forwards", "conflicts", "commits", "writes"
    ));
    for (stage, m) in &stages {
        let label = labels
            .get(usize::from(*stage))
            .cloned()
            .unwrap_or_else(|| format!("stage {stage}"));
        out.push_str(&format!(
            "{label:<16}{:>9}{:>9}{:>10}{:>11}{:>9}{:>9}\n",
            m.opens, m.reads, m.forwards, m.conflicts, m.commits, m.writes
        ));
    }
    out
}

/// Renders the speculation governor's decision stream as a short
/// summary block: window moves (split up/down with the final cap),
/// delayed and parked redispatches, collapses to sequential issue (with
/// the misspeculation rate that tripped the last one), and re-probes.
/// Built from the timeline's `GovernorThrottle` / `GovernorBackoff` /
/// `GovernorDegrade` / `GovernorReprobe` events; returns the empty
/// string when the timeline carries none (an ungoverned run).
pub fn render_governor_summary(timeline: &Timeline) -> String {
    let mut ups = 0u64;
    let mut downs = 0u64;
    let mut final_window: Option<u32> = None;
    let mut delayed = 0u64;
    let mut delay_ticks = 0u64;
    let mut parked = 0u64;
    let mut degrades = 0u64;
    let mut last_rate: Option<u32> = None;
    let mut reprobes = 0u64;
    for e in timeline.events() {
        match e.kind {
            TraceEventKind::GovernorThrottle { from, to, .. } => {
                if to > from {
                    ups += 1;
                } else {
                    downs += 1;
                }
                final_window = Some(to);
            }
            TraceEventKind::GovernorBackoff { behind, delay, .. } => {
                if behind.is_some() {
                    parked += 1;
                } else {
                    delayed += 1;
                    delay_ticks += delay;
                }
            }
            TraceEventKind::GovernorDegrade { rate_permille, .. } => {
                degrades += 1;
                last_rate = Some(rate_permille);
                final_window = Some(1);
            }
            TraceEventKind::GovernorReprobe { window, .. } => {
                reprobes += 1;
                final_window = Some(window);
            }
            _ => {}
        }
    }
    if ups + downs + delayed + parked + degrades + reprobes == 0 {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("### speculation governor (frontier decisions)\n");
    out.push_str(&format!(
        "throttle: {} window moves ({ups} up, {downs} down), final window {}\n",
        ups + downs,
        final_window.unwrap_or(1)
    ));
    out.push_str(&format!(
        "backoff:  {delayed} delayed redispatches ({delay_ticks} ticks total), {parked} parked\n"
    ));
    match last_rate {
        Some(rate) => out.push_str(&format!(
            "degrade:  {degrades} collapses to sequential issue (last at {rate}\u{2030} misspec), \
             {reprobes} re-probes\n"
        )),
        None => out.push_str(&format!(
            "degrade:  {degrades} collapses to sequential issue, {reprobes} re-probes\n"
        )),
    }
    out
}

/// Renders a timeline as an ASCII Gantt chart, one row per core, built
/// from its dispatch/complete slices — the executed-schedule twin of
/// [`render_gantt`] (which draws simulator placements).
///
/// Glyphs cycle `A..J` by task id; squashed attempts draw like any
/// other slice (they occupied the core just the same).
pub fn render_timeline_gantt(timeline: &Timeline) -> String {
    const COLUMNS: usize = 72;
    let span = timeline.span().max(1);
    let scale = span as f64 / COLUMNS as f64;
    let mut started: std::collections::HashMap<(usize, u32, u32), u64> =
        std::collections::HashMap::new();
    let mut rows: Vec<Vec<u8>> = Vec::new();
    for e in timeline.events() {
        match e.kind {
            TraceEventKind::Dispatch {
                core,
                task,
                attempt,
                ..
            } => {
                started.insert((core, task, attempt), e.ts);
            }
            TraceEventKind::Complete {
                core,
                task,
                attempt,
                ..
            } => {
                let Some(start) = started.remove(&(core, task, attempt)) else {
                    continue;
                };
                if rows.len() <= core {
                    rows.resize(core + 1, vec![b'.'; COLUMNS]);
                }
                let lo = (start as f64 / scale) as usize;
                let hi = ((e.ts as f64 / scale) as usize).max(lo + 1);
                let glyph = b"ABCDEFGHIJ"[task as usize % 10];
                for cell in rows[core].iter_mut().take(hi.min(COLUMNS)).skip(lo) {
                    *cell = glyph;
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (c, row) in rows.iter().enumerate() {
        out.push_str(&format!("core {c:>2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Renders a critical-path estimate as one line: total weight and the
/// task chain (elided in the middle when long).
pub fn render_critical_path(path: &CriticalPath, unit: TimeUnit) -> String {
    let ids: Vec<String> = path.tasks.iter().map(|t| format!("t{}", t.0)).collect();
    let chain = if ids.len() > 8 {
        format!(
            "{} … {} ({} tasks)",
            ids[..4].join(" → "),
            ids[ids.len() - 2..].join(" → "),
            ids.len()
        )
    } else {
        ids.join(" → ")
    };
    format!("critical path: {} {unit} through {chain}", path.length)
}

/// Renders Table 1 from workload metadata.
pub fn render_table1(metas: &[WorkloadMeta]) -> String {
    let mut out = String::new();
    out.push_str("## Table 1: loops, lines changed, techniques\n");
    out.push_str(&format!(
        "{:<14}{:>6}{:>7}{:>7}  {:<50}\n",
        "benchmark", "exec%", "lines", "model", "techniques"
    ));
    for m in metas {
        let techniques: Vec<String> = m
            .techniques
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        out.push_str(&format!(
            "{:<14}{:>6}{:>7}{:>7}  {:<50}\n",
            m.spec_id,
            m.exec_time_pct,
            m.lines_changed_all,
            m.lines_changed_model,
            techniques.join(", ")
        ));
        for l in m.loops {
            out.push_str(&format!("{:14}  loop: {l}\n", ""));
        }
    }
    let total: u32 = metas.iter().map(|m| m.lines_changed_all).sum();
    out.push_str(&format!("total lines changed: {total} (paper: 60)\n"));
    out
}

/// The lint verdict for one workload's computed partition and plan.
#[derive(Clone, Debug)]
pub struct LintOutcome {
    /// Benchmark SPEC id.
    pub spec_id: &'static str,
    /// Merged report: partition-level findings plus the plan-shape
    /// check of the `cores`-way execution plan.
    pub report: seqpar_analysis::LintReport,
    /// Whether the emitted plan carries an intact lint stamp (set only
    /// when every check passed at deny level).
    pub plan_stamped: bool,
}

/// Runs the full `seqpar-lint` battery over one workload's IR model.
///
/// The model is parallelized exactly as the library pipeline would —
/// same builder, same profile — except with `allow_unsound` so that
/// deny-level findings are *reported* rather than refused, which is
/// what a lint driver wants. The partition report is then merged with
/// the plan-shape check of the `cores`-way plan.
pub fn lint_workload(w: &dyn Workload, cores: usize) -> LintOutcome {
    let model = w.ir_model();
    let result = seqpar::Parallelizer::new(&model.program)
        .profile(model.profile.clone())
        .allow_unsound(true)
        .parallelize_outermost(model.func)
        .expect("workload IR model parallelizes");
    let plan = result.plan(cores);
    LintOutcome {
        spec_id: w.meta().spec_id,
        report: result.lint_plan(&plan),
        plan_stamped: plan.is_linted() && plan.lint_stamp_intact(),
    }
}

/// Renders lint outcomes as a GitHub-flavoured markdown table, suitable
/// for piping into a CI step summary.
pub fn render_lint_table(outcomes: &[LintOutcome]) -> String {
    let mut out = String::new();
    out.push_str("| benchmark | deny | warn | codes | plan stamped | verdict |\n");
    out.push_str("|-----------|-----:|-----:|-------|:------------:|---------|\n");
    for o in outcomes {
        let codes: Vec<String> = o
            .report
            .codes()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            o.spec_id,
            o.report.deny_count(),
            o.report.warn_count(),
            if codes.is_empty() {
                "—".to_string()
            } else {
                codes.join(", ")
            },
            if o.plan_stamped { "yes" } else { "no" },
            if o.report.is_clean() {
                "clean"
            } else {
                "**DENY**"
            },
        ));
    }
    let denies: usize = outcomes.iter().map(|o| o.report.deny_count()).sum();
    let warns: usize = outcomes.iter().map(|o| o.report.warn_count()).sum();
    out.push_str(&format!(
        "\n{} workload(s): {denies} deny finding(s), {warns} warning(s)\n",
        outcomes.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean([4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 1.0);
    }

    #[test]
    fn sweep_points_align_with_thread_sweep() {
        let mut trace = IterationTrace::new();
        for _ in 0..64 {
            trace.push(seqpar::IterationRecord::new(1, 50, 1));
        }
        let s = sweep_trace("demo", &trace, THREAD_SWEEP, PlanKind::Dswp);
        assert_eq!(s.points.len(), THREAD_SWEEP.len());
        assert!(s.at(32).unwrap() > s.at(1).unwrap());
        assert!(s.best().speedup >= s.at(1).unwrap());
    }

    #[test]
    fn native_curve_renders_substrate_columns_for_every_workload() {
        // The shim is gone: every workload's native sweep is
        // conflict-driven, so the rendered table must carry real
        // forwards/conflicts/silent counts — never the dash
        // placeholders — for all 11 benchmarks.
        for w in seqpar_workloads::all_workloads() {
            let curve = native_sweep(
                w.as_ref(),
                InputSize::Test,
                PlanKind::Tls,
                &[2],
                &ExecConfig::default(),
            );
            let table = render_native_curve(&curve);
            assert!(
                table.contains("conflict-driven on versioned memory"),
                "{}: native table must be headed conflict-driven",
                curve.spec_id
            );
            for col in ["forwards", "conflicts", "silent"] {
                assert!(
                    table.contains(col),
                    "{}: missing substrate column {col}",
                    curve.spec_id
                );
            }
            for line in table.lines().skip(2) {
                assert!(
                    !line.split_whitespace().any(|cell| cell == "-"),
                    "{}: shim dash leaked into rendered row: {line}",
                    curve.spec_id
                );
            }
            assert!(
                curve.points.iter().all(|p| p.mem.is_some()),
                "{}: every sweep point carries substrate counters",
                curve.spec_id
            );
        }
    }

    #[test]
    fn gantt_rendering_covers_every_core_row() {
        let mut trace = IterationTrace::new();
        for _ in 0..32 {
            trace.push(seqpar::IterationRecord::new(2, 20, 2));
        }
        let sim = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let (r, placements) = sim
            .run_traced(&trace.task_graph(), &ExecutionPlan::three_phase(4))
            .unwrap();
        let chart = render_gantt(&placements, 4, r.makespan);
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains("core  0 |"));
        // Busy cores show glyphs, not only idle dots.
        assert!(chart.bytes().filter(u8::is_ascii_uppercase).count() > 10);
    }

    #[test]
    fn trace_renderers_cover_a_simulated_timeline() {
        let mut trace = IterationTrace::new();
        for _ in 0..24 {
            trace.push(seqpar::IterationRecord::new(2, 20, 2));
        }
        let graph = trace.task_graph();
        let sim = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let (_, timeline) = sim
            .run_timeline(&graph, &ExecutionPlan::three_phase(4))
            .unwrap();
        timeline.validate().unwrap();

        let labels = seqpar_workloads::stage_labels(timeline.stage_count());
        let summary = render_trace_summary(&timeline, &labels);
        assert!(summary.contains("B (transform)"));
        assert!(summary.contains("busy%"));
        // Stage shares sum to ~100% across the three rows.
        assert!(summary.contains("cycles"));

        let gantt = render_timeline_gantt(&timeline);
        assert_eq!(gantt.lines().count(), 4, "one row per plan core");
        assert!(gantt.bytes().filter(u8::is_ascii_uppercase).count() > 10);

        let path = timeline.critical_path(&graph);
        let line = render_critical_path(&path, timeline.unit());
        assert!(line.contains("critical path"));
        assert!(line.contains("cycles"));

        // Ungoverned timelines have no governor block.
        assert!(render_governor_summary(&timeline).is_empty());
    }

    #[test]
    fn governor_summary_renders_the_governed_twin() {
        use seqpar_runtime::GovernorConfig;
        let mut trace = IterationTrace::new();
        for _ in 0..120 {
            trace.push(seqpar::IterationRecord::new(2, 20, 2));
        }
        let graph = trace.task_graph();
        let sim = Simulator::new(SimConfig {
            cores: 4,
            comm_latency: 0,
            ..SimConfig::default()
        });
        let cfg = GovernorConfig {
            reprobe_period: 16,
            ..GovernorConfig::default()
        };
        let (_, timeline, stats) = sim
            .run_timeline_governed(&graph, &ExecutionPlan::three_phase(4), &cfg)
            .unwrap();
        assert!(stats.reprobes > 0, "long quiet run re-probes");
        let block = render_governor_summary(&timeline);
        assert!(block.contains("speculation governor"));
        assert!(block.contains("re-probes"));
        assert!(block.contains("window moves"));
    }

    #[test]
    fn traced_native_run_exports_a_valid_chrome_trace() {
        let w = seqpar_workloads::workload_by_name("164.gzip").expect("gzip exists");
        let run = trace_native(
            w.as_ref(),
            InputSize::Test,
            PlanKind::Dswp,
            4,
            &ExecConfig::default(),
        );
        run.timeline.validate().unwrap();
        assert!(run.report.timeline.is_none(), "timeline was detached");
        let labels = seqpar_workloads::stage_labels(run.timeline.stage_count());
        let text = run.timeline.to_chrome_json(&labels);
        let check = json::check_chrome_trace(&text).expect("exported trace passes the schema");
        assert!(check.slices > 0, "task executions become X slices");
        assert!(check.instants > 0, "commits become instants");
        assert!(check.metadata > 0, "process/thread names are present");
    }

    #[test]
    fn render_functions_produce_nonempty_tables() {
        let mut trace = IterationTrace::new();
        for _ in 0..16 {
            trace.push(seqpar::IterationRecord::new(1, 10, 1));
        }
        let s = sweep_trace("demo", &trace, THREAD_SWEEP, PlanKind::Dswp);
        let fig = render_curves("demo fig", &[s]);
        assert!(fig.contains("demo"));
        assert!(fig.lines().count() > THREAD_SWEEP.len());
    }
}
