//! `seqpar-trace`: capture and inspect a structured execution timeline.
//!
//! Usage:
//!
//! ```text
//! seqpar-trace <workload> [--threads N] [--plan dswp|tls] [--size test|train|ref]
//!              [--fault-seed N] [--no-governor] [--out trace.json]
//! seqpar-trace --check trace.json
//! ```
//!
//! The workload (a SPEC id like `164.gzip`, or its short name `gzip`)
//! is run on real OS threads with [`ExecConfig::trace`] enabled; its
//! committed output is checked byte-for-byte against the sequential
//! run; and the stitched timeline is validated, summarized (per-stage
//! service/queue/commit histograms), rendered as a terminal Gantt
//! chart, and compared against the simulator's timeline of the same
//! plan (commit order must agree — speculation replay differs by
//! design, see OBSERVABILITY.md).
//!
//! `--out PATH` additionally exports the timeline as Chrome
//! `trace_event` JSON — load it in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`. `--check PATH` parses an exported file and
//! validates it against the trace-event schema without running
//! anything (the CI smoke job round-trips `--out` through `--check`).
//!
//! Exit status: 0 on success, 1 when the timeline (or a checked file)
//! is malformed or sim and native disagree on commit order, 2 on usage
//! errors.

use seqpar_bench::{
    json, render_critical_path, render_governor_summary, render_memory_summary,
    render_timeline_gantt, render_trace_summary, trace_native, PlanKind,
};
use seqpar_runtime::{ExecConfig, FaultPlan, GovernorConfig, SimConfig, Simulator};
use seqpar_workloads::{all_workloads, stage_labels, InputSize, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 4usize;
    let mut plan = PlanKind::Dswp;
    let mut size = InputSize::Test;
    let mut fault_seed = None;
    let mut out_path = None;
    let mut check_path = None;
    let mut governed = true;
    let mut target = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--threads" => {
                threads = match iter.next().map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    other => usage(&format!("--threads needs an integer >= 1, got {other:?}")),
                }
            }
            "--plan" => {
                plan = match iter.next().map(String::as_str) {
                    Some("dswp") => PlanKind::Dswp,
                    Some("tls") => PlanKind::Tls,
                    other => usage(&format!("unknown plan {other:?} (use dswp|tls)")),
                }
            }
            "--size" => {
                size = match iter.next().map(String::as_str) {
                    Some("test") => InputSize::Test,
                    Some("train") => InputSize::Train,
                    Some("ref") => InputSize::Ref,
                    other => usage(&format!("unknown size {other:?} (use test|train|ref)")),
                }
            }
            "--fault-seed" => {
                fault_seed = match iter.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) => Some(n),
                    other => usage(&format!("--fault-seed needs a u64, got {other:?}")),
                }
            }
            "--out" => match iter.next() {
                Some(p) => out_path = Some(p.clone()),
                None => usage("--out needs a path"),
            },
            "--check" => match iter.next() {
                Some(p) => check_path = Some(p.clone()),
                None => usage("--check needs a path"),
            },
            "--no-governor" => governed = false,
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => usage(&format!("unexpected argument {other}")),
        }
    }

    if let Some(path) = check_path {
        check_file(&path);
        return;
    }
    let Some(target) = target else {
        usage("a workload is required (a SPEC id like 164.gzip, its short name, or --check PATH)");
    };
    let workloads = all_workloads();
    let Some(w) = find_workload(&workloads, &target) else {
        usage(&format!(
            "unknown workload {target} (use a SPEC id like 164.gzip or a short name like gzip)"
        ));
    };

    let mut config = ExecConfig::default();
    if governed {
        config = config.with_governor(GovernorConfig::default());
    }
    if let Some(seed) = fault_seed {
        config = config.with_faults(FaultPlan::seeded(seed));
    }
    let meta = w.meta();
    println!(
        "## {}: traced native run ({threads} threads, {} plan)",
        meta.spec_id,
        match plan {
            PlanKind::Dswp => "dswp",
            PlanKind::Tls => "tls",
        }
    );
    let run = trace_native(w, size, plan, threads, &config);
    let report = &run.report;
    println!(
        "wall {:.3} ms (sequential {:.3} ms); {} tasks committed in {} attempts, \
         {} squashed, {} faults recovered; output byte-identical to sequential",
        report.wall.as_secs_f64() * 1e3,
        run.sequential_wall_ms,
        report.tasks_committed,
        report.attempts,
        report.squashes,
        report.recovery.faults_recovered(),
    );
    if let Some(m) = report.mem {
        println!(
            "memory substrate: {} reads ({} forwarded), {} writes ({} silent), \
             {} conflicts, {} commits, {} rollbacks",
            m.reads, m.forwards, m.writes, m.silent_stores, m.violations, m.commits, m.rollbacks,
        );
    }

    let timeline = &run.timeline;
    if let Err(defect) = timeline.validate() {
        eprintln!("timeline is MALFORMED: {defect}");
        std::process::exit(1);
    }
    println!("timeline: {} events, well-formed\n", timeline.len());

    let labels = stage_labels(timeline.stage_count());
    print!("{}", render_trace_summary(timeline, &labels));
    println!();
    let mem_summary = render_memory_summary(timeline, &labels);
    if !mem_summary.is_empty() {
        print!("{mem_summary}");
        println!();
    }
    if let Some(g) = report.governor {
        let gov_summary = render_governor_summary(timeline);
        if gov_summary.is_empty() {
            // A short quiet run can finish inside its opening
            // calibration stretch: governed, but no decisions to trace.
            println!("### speculation governor (frontier decisions)");
            println!("no decisions traced (run ended inside a degraded stretch)");
        } else {
            print!("{gov_summary}");
        }
        println!(
            "counters: {} degraded commits, {} reprobes, window finished at {} (min {})",
            g.degraded_commits, g.reprobes, g.final_window, g.min_window
        );
        println!();
    }
    print!("{}", render_timeline_gantt(timeline));

    // Critical path over the same task graph the run executed — the
    // versioned job's trace.
    let trace = w.versioned_job(size).trace().clone();
    let graph = match plan {
        PlanKind::Dswp => trace.task_graph(),
        PlanKind::Tls => trace.tls_task_graph(),
    };
    println!(
        "{}",
        render_critical_path(&timeline.critical_path(&graph), timeline.unit())
    );

    // Differential check: the simulator's timeline of the same plan must
    // commit tasks in the same order (always sequential order, for both).
    let sim = Simulator::new(SimConfig {
        cores: threads,
        comm_latency: 10,
        queue_capacity: 128,
        ..SimConfig::default()
    });
    let sim_plan = match plan {
        PlanKind::Dswp => seqpar_runtime::ExecutionPlan::three_phase(threads),
        PlanKind::Tls => seqpar_runtime::ExecutionPlan::tls(threads),
    };
    let (_, sim_timeline) = sim
        .run_timeline(&graph, &sim_plan)
        .expect("plan matches machine");
    if sim_timeline.commit_order() == timeline.commit_order() {
        println!(
            "sim/native commit order: agree ({} tasks)",
            timeline.commit_order().len()
        );
    } else {
        eprintln!("sim/native commit order: DISAGREE");
        std::process::exit(1);
    }

    if let Some(path) = out_path {
        let text = timeline.to_chrome_json(&labels);
        if let Err(e) = json::check_chrome_trace(&text) {
            eprintln!("exported trace failed self-check: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path} ({} bytes) — load it at https://ui.perfetto.dev or chrome://tracing",
            text.len()
        );
    }
}

/// `--check` mode: parse and schema-validate an exported trace file.
fn check_file(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match json::check_chrome_trace(&text) {
        Ok(check) => {
            println!(
                "{path}: valid Chrome trace ({} events: {} slices, {} instants \
                 ({} governor decisions), {} counter samples, {} metadata records)",
                check.events,
                check.slices,
                check.instants,
                check.governor,
                check.counters,
                check.metadata
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID Chrome trace: {e}");
            std::process::exit(1);
        }
    }
}

/// Accepts a full SPEC id (`164.gzip`) or its short name (`gzip`).
fn find_workload<'a>(workloads: &'a [Box<dyn Workload>], name: &str) -> Option<&'a dyn Workload> {
    workloads
        .iter()
        .find(|w| {
            let id = w.meta().spec_id;
            id == name || id.split('.').nth(1) == Some(name)
        })
        .map(std::convert::AsRef::as_ref)
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: seqpar-trace <workload> [--threads N] [--plan dswp|tls] \
         [--size test|train|ref] [--fault-seed N] [--no-governor] [--out trace.json]\n\
         \x20      seqpar-trace --check trace.json"
    );
    std::process::exit(2);
}
