//! `seqpar-lint`: static partition-soundness checker for the workload suite.
//!
//! Usage:
//!
//! ```text
//! seqpar-lint [--cores N] [164.gzip ... | all]
//! ```
//!
//! Each target's IR model is parallelized through the library pipeline
//! (with `allow_unsound`, so findings are reported instead of refused)
//! and the full lint battery runs over the result: forward-flow
//! soundness, the replicated-stage race detector, the `Commutative`
//! audit, the Y-branch legality audit, and the plan-shape check of the
//! `--cores`-way execution plan. Rendered diagnostics are printed per
//! finding; a markdown summary table (suitable for `tee -a
//! "$GITHUB_STEP_SUMMARY"`) closes the run.
//!
//! Exit status is 1 when any deny-level finding exists, 0 otherwise —
//! warnings alone do not fail the run.

use seqpar_bench::{lint_workload, render_lint_table, LintOutcome};
use seqpar_workloads::{all_workloads, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cores = 8usize;
    let mut targets = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--cores" => {
                cores = match iter.next().map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) if n >= 3 => n,
                    other => {
                        eprintln!("--cores needs an integer >= 3, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let workloads = all_workloads();
    let mut selected: Vec<&dyn Workload> = Vec::new();
    for t in &targets {
        if t == "all" {
            selected = workloads.iter().map(std::convert::AsRef::as_ref).collect();
            break;
        }
        match workloads.iter().find(|w| w.meta().spec_id == t.as_str()) {
            Some(w) => selected.push(w.as_ref()),
            None => {
                eprintln!("unknown benchmark {t} (use a SPEC id like 164.gzip, or all)");
                std::process::exit(2);
            }
        }
    }

    println!(
        "## seqpar-lint: plan soundness over {} workload(s), {cores} cores\n",
        selected.len()
    );
    let mut outcomes: Vec<LintOutcome> = Vec::new();
    for w in selected {
        let outcome = lint_workload(w, cores);
        if !outcome.report.entries().is_empty() {
            println!("### {}\n", outcome.spec_id);
            print!("{}", outcome.report.render());
            println!();
        }
        outcomes.push(outcome);
    }
    print!("{}", render_lint_table(&outcomes));

    if outcomes.iter().any(|o| !o.report.is_clean()) {
        std::process::exit(1);
    }
}
