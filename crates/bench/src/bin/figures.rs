//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! figures [--size test|train|ref] [--native] [--no-governor] [--fault-seed N] \
//!     [--lint] [--trace-summary] \
//!     [fig4|fig5|fig6|fig7|table1|table2|ablations|gantt|all]
//! ```
//!
//! `--lint` adds a `lint` column to Table 2: each benchmark's partition
//! and plan are run through the `seqpar-lint` battery and the verdict
//! (`clean`, `warn(n)`, `DENY(n)`) is printed next to its speedup.
//!
//! With `--native`, targets name benchmarks (`164.gzip`, ... or `all`)
//! and each is run on real OS threads via the native executor; the
//! tables gain wall-clock and wall-clock-speedup columns next to the
//! simulator's estimate. Native runs default to the `test` input size
//! (real wall time, not simulated cycles) unless `--size` is given.
//!
//! `--trace-summary` (native mode only) re-runs each benchmark once
//! with structured tracing enabled at the largest swept thread count
//! and prints the per-stage timeline columns (service-time percentiles,
//! queue wait, commit latency, busy share) under its native curve. For
//! the full timeline toolkit — Gantt view, critical path, Perfetto
//! export — use the `seqpar-trace` binary.
//!
//! Native runs are *governed* by default: the contention-aware
//! speculation governor (AIMD runahead throttling, squash backoff,
//! graceful degradation — see DESIGN.md) runs with default knobs, and
//! the tables gain its columns: `gov-w` (final window cap), `degrades`
//! (collapses to sequential issue), `reprobes`, and `backoffs` (delayed
//! plus parked redispatches). `--no-governor` reproduces the ungoverned
//! executor and drops the columns.
//!
//! `--fault-seed N` (native mode only) arms the deterministic fault
//! injector with `FaultPlan::seeded(N)`: worker panics, corrupted
//! outputs, stalls, and spurious squashes are injected and the
//! supervisor must recover — output stays byte-identical and the table
//! gains a `recovered` column counting absorbed faults.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator
//! over work-unit traces, not an Itanium 2), but the *shapes* — which
//! benchmarks scale, where they saturate, who beats the Moore's-law
//! reference — are the reproduction target (see EXPERIMENTS.md).

use seqpar_bench::{
    native_sweep, render_curves, render_native_curve, render_table1, render_table2, sweep_workload,
    table2, PlanKind, SweepResult, NATIVE_THREAD_SWEEP,
};
use seqpar_runtime::{ExecConfig, FaultPlan, GovernorConfig};
use seqpar_workloads::{all_workloads, workload_by_name, InputSize, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = None;
    let mut native = false;
    let mut governed = true;
    let mut lint = false;
    let mut trace_summary = false;
    let mut fault_seed = None;
    let mut targets = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--lint" => lint = true,
            "--trace-summary" => trace_summary = true,
            "--size" => {
                size = match iter.next().map(String::as_str) {
                    Some("test") => Some(InputSize::Test),
                    Some("train") => Some(InputSize::Train),
                    Some("ref") => Some(InputSize::Ref),
                    other => {
                        eprintln!("unknown size {other:?} (use test|train|ref)");
                        std::process::exit(2);
                    }
                }
            }
            "--native" => native = true,
            "--no-governor" => governed = false,
            "--fault-seed" => {
                fault_seed = match iter.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) => Some(n),
                    other => {
                        eprintln!("--fault-seed needs a u64, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    if native {
        // Real threads measure real seconds: default to the small input so
        // `--native all` stays interactive.
        run_native(
            size.unwrap_or(InputSize::Test),
            &targets,
            governed,
            fault_seed,
            trace_summary,
        );
        return;
    }
    if !governed {
        eprintln!("--no-governor only applies to --native runs");
        std::process::exit(2);
    }
    if fault_seed.is_some() {
        eprintln!("--fault-seed only applies to --native runs");
        std::process::exit(2);
    }
    if trace_summary {
        eprintln!("--trace-summary only applies to --native runs");
        std::process::exit(2);
    }
    let size = size.unwrap_or(InputSize::Train);
    for t in &targets {
        match t.as_str() {
            "fig4" => fig(
                size,
                "Figure 4: parallelizable by the framework",
                &["181.mcf", "253.perlbmk", "255.vortex", "256.bzip2"],
            ),
            "fig5" => fig(
                size,
                "Figure 5: Commutative-enabled",
                &["176.gcc", "254.gap"],
            ),
            "fig6" => fig(
                size,
                "Figure 6: improved parallelizations",
                &["186.crafty", "197.parser", "300.twolf", "175.vpr"],
            ),
            "fig7" => fig(size, "Figure 7: Y-branch (gzip)", &["164.gzip"]),
            "table1" => table1(),
            "gantt" => gantt(size),
            "table2" => run_table2(size, lint),
            "ablations" => ablations(size),
            "all" => {
                fig(
                    size,
                    "Figure 4: parallelizable by the framework",
                    &["181.mcf", "253.perlbmk", "255.vortex", "256.bzip2"],
                );
                fig(
                    size,
                    "Figure 5: Commutative-enabled",
                    &["176.gcc", "254.gap"],
                );
                fig(
                    size,
                    "Figure 6: improved parallelizations",
                    &["186.crafty", "197.parser", "300.twolf", "175.vpr"],
                );
                fig(size, "Figure 7: Y-branch (gzip)", &["164.gzip"]);
                table1();
                run_table2(size, lint);
                ablations(size);
                gantt(size);
            }
            other => {
                eprintln!("unknown target {other}");
                std::process::exit(2);
            }
        }
    }
}

/// `--native` mode: each target is a benchmark id (or `all`); every
/// benchmark is executed on real OS threads and its wall-clock columns
/// printed next to the simulator's estimate at the same thread count.
fn run_native(
    size: InputSize,
    targets: &[String],
    governed: bool,
    fault_seed: Option<u64>,
    trace_summary: bool,
) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    println!("## Native execution (real OS threads; host exposes {cores} CPU(s))");
    println!("wall-clock speedup is bounded by host parallelism; the simulator");
    println!("column models the paper's 32-core machine at the same thread count\n");
    let mut config = match fault_seed {
        Some(seed) => {
            println!("fault injection armed: FaultPlan::seeded({seed}); the supervisor");
            println!("must absorb every injected fault and keep output byte-identical\n");
            ExecConfig::default().with_faults(FaultPlan::seeded(seed))
        }
        None => ExecConfig::default(),
    };
    if governed {
        config = config.with_governor(GovernorConfig::default());
    }
    let workloads = all_workloads();
    for t in targets {
        let selected: Vec<&dyn Workload> = if t == "all" {
            workloads.iter().map(std::convert::AsRef::as_ref).collect()
        } else if let Some(w) = workloads.iter().find(|w| w.meta().spec_id == t.as_str()) {
            vec![w.as_ref()]
        } else {
            eprintln!("unknown benchmark {t} (use a SPEC id like 164.gzip, or all)");
            std::process::exit(2);
        };
        for w in selected {
            let curve = native_sweep(w, size, PlanKind::Dswp, NATIVE_THREAD_SWEEP, &config);
            println!("{}", render_native_curve(&curve));
            if trace_summary {
                let threads = *NATIVE_THREAD_SWEEP.last().expect("sweep is non-empty");
                let run = seqpar_bench::trace_native(w, size, PlanKind::Dswp, threads, &config);
                let labels = seqpar_workloads::stage_labels(run.timeline.stage_count());
                print!(
                    "{}",
                    seqpar_bench::render_trace_summary(&run.timeline, &labels)
                );
                let mem = seqpar_bench::render_memory_summary(&run.timeline, &labels);
                if !mem.is_empty() {
                    print!("{mem}");
                }
                let gov = seqpar_bench::render_governor_summary(&run.timeline);
                if !gov.is_empty() {
                    print!("{gov}");
                }
                println!();
            }
        }
    }
}

fn fig(size: InputSize, title: &str, ids: &[&str]) {
    let curves: Vec<SweepResult> = ids
        .iter()
        .map(|id| {
            let w = workload_by_name(id).expect("known benchmark");
            sweep_workload(w.as_ref(), size, PlanKind::Dswp)
        })
        .collect();
    println!("{}", render_curves(title, &curves));
}

fn table1() {
    let metas: Vec<_> = all_workloads().iter().map(|w| w.meta()).collect();
    println!("{}", render_table1(&metas));
}

fn run_table2(size: InputSize, lint: bool) {
    let sweeps: Vec<_> = all_workloads()
        .iter()
        .map(|w| (w.meta(), sweep_workload(w.as_ref(), size, PlanKind::Dswp)))
        .collect();
    let mut rows = table2(&sweeps);
    if lint {
        for (row, w) in rows.iter_mut().zip(all_workloads().iter()) {
            let report = seqpar_bench::lint_workload(w.as_ref(), 8).report;
            row.lint = Some(if report.deny_count() > 0 {
                format!("DENY({})", report.deny_count())
            } else if report.warn_count() > 0 {
                format!("warn({})", report.warn_count())
            } else {
                "clean".to_string()
            });
        }
    }
    println!("{}", render_table2(&rows));
}

/// Prints the first cycles of 256.bzip2's 8-core schedule — the A/B/C
/// pipeline of paper Figure 3, rendered from a real trace.
fn gantt(size: InputSize) {
    let w = workload_by_name("256.bzip2").expect("bzip2 exists");
    let trace = w.trace(size);
    let sim = seqpar_runtime::Simulator::new(seqpar_runtime::SimConfig {
        cores: 8,
        comm_latency: 10,
        queue_capacity: 128,
        ..seqpar_runtime::SimConfig::default()
    });
    let (r, placements) = sim
        .run_traced(
            &trace.task_graph(),
            &seqpar_runtime::ExecutionPlan::three_phase(8),
        )
        .expect("valid plan");
    println!("## Figure 3 (schedule view): 256.bzip2 on 8 cores");
    println!("core 0 = phase A (read), cores 1-6 = phase B (transform), core 7 = phase C (write)");
    print!("{}", seqpar_bench::render_gantt(&placements, 8, r.makespan));
    println!();
}

/// Design-choice ablations called out in DESIGN.md.
fn ablations(size: InputSize) {
    println!("## Ablations");
    // DSWP vs TLS execution plans (paper §3.2: results should be similar).
    println!("\n### DSWP vs TLS plan, best speedup");
    println!("{:<14}{:>10}{:>10}", "benchmark", "dswp", "tls");
    for w in all_workloads() {
        let d = sweep_workload(w.as_ref(), size, PlanKind::Dswp).best();
        let t = sweep_workload(w.as_ref(), size, PlanKind::Tls).best();
        println!(
            "{:<14}{:>10.2}{:>10.2}",
            w.meta().spec_id,
            d.speedup,
            t.speedup
        );
    }
    // Speculation value: re-run with every speculation event violated
    // (equivalent to synchronizing all carried dependences).
    println!("\n### Value of speculation (32 threads, DSWP)");
    println!(
        "{:<14}{:>12}{:>16}",
        "benchmark", "speculative", "synchronized"
    );
    for w in all_workloads() {
        let trace = w.trace(size);
        let spec = seqpar_bench::simulate(&trace, 32, PlanKind::Dswp).speedup();
        let sync = {
            // Rewrite every record to depend on its predecessor.
            let mut t = seqpar::IterationTrace::speculative();
            for (i, r) in trace.records().iter().enumerate() {
                let mut r = *r;
                if i > 0 {
                    r.misspec_on = Some(i as u64 - 1);
                }
                t.push(r);
            }
            seqpar_bench::simulate(&t, 32, PlanKind::Dswp).speedup()
        };
        println!("{:<14}{:>12.2}{:>16.2}", w.meta().spec_id, spec, sync);
    }
    // Dynamic least-loaded vs static round-robin phase-B assignment on
    // the most variance-bound benchmark.
    println!("\n### Dynamic vs static phase-B assignment (186.crafty, 16 threads)");
    let crafty = workload_by_name("186.crafty").expect("crafty exists");
    let ctrace = crafty.trace(size);
    let cgraph = ctrace.task_graph();
    let sim16 = seqpar_runtime::Simulator::new(seqpar_runtime::SimConfig {
        cores: 16,
        comm_latency: 10,
        queue_capacity: 128,
        ..seqpar_runtime::SimConfig::default()
    });
    let dynamic = sim16
        .run(&cgraph, &seqpar_runtime::ExecutionPlan::three_phase(16))
        .expect("valid plan");
    let rr = sim16
        .run(
            &cgraph,
            &seqpar_runtime::ExecutionPlan::three_phase_static(16),
        )
        .expect("valid plan");
    println!(
        "least-loaded: {:.2}   round-robin: {:.2}",
        dynamic.speedup(),
        rr.speedup()
    );

    // 176.gcc's label_num fix (§4.2.1): global counter vs the paper's
    // per-function (function, number) pairs.
    println!("\n### 176.gcc label numbering (16 threads)");
    let gcc = seqpar_workloads::gcc::Gcc;
    let fixed = seqpar_bench::simulate(
        &seqpar_workloads::Workload::trace(&gcc, size),
        16,
        PlanKind::Dswp,
    )
    .speedup();
    let global =
        seqpar_bench::simulate(&gcc.trace_with_global_labels(size), 16, PlanKind::Dswp).speedup();
    println!("per-function labels: {fixed:.2}   global label_num: {global:.2}");

    // Queue capacity sweep on the most pipeline-bound benchmark.
    println!("\n### Queue capacity (164.gzip, 16 threads)");
    let gzip = workload_by_name("164.gzip").expect("gzip exists");
    let trace = gzip.trace(size);
    let graph = trace.task_graph();
    for cap in [1usize, 4, 8, 32, 128] {
        let sim = seqpar_runtime::Simulator::new(seqpar_runtime::SimConfig {
            cores: 16,
            comm_latency: 10,
            queue_capacity: cap,
            ..seqpar_runtime::SimConfig::default()
        });
        let r = sim
            .run(&graph, &seqpar_runtime::ExecutionPlan::three_phase(16))
            .expect("valid plan");
        println!(
            "capacity {cap:>4}: speedup {:>6.2} (stall cycles {})",
            r.speedup(),
            r.queue_stall_cycles
        );
    }
    let _ = size;
}

// Silence the unused-trait warning when compiled standalone.
#[allow(dead_code)]
fn _assert_traits(w: &dyn Workload) -> &'static str {
    w.meta().spec_id
}
