//! Whole programs: functions, globals, and external declarations.

use crate::function::Function;
use crate::ids::{FuncId, MemObjId};
use crate::inst::ExternEffect;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A global variable or other statically named memory object.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Name of the object.
    pub name: String,
    /// Size in abstract words; `1` for scalars.
    pub size: u64,
}

/// A declared external function with a memory-effect summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExternFn {
    /// Name used at call sites.
    pub name: String,
    /// What the function may do to memory.
    pub effect: ExternEffect,
}

/// A whole program: the unit over which the parallelizer operates.
///
/// The paper stresses whole-program scope (§2.2): parallelism in SPEC
/// CINT2000 lives at or near the outermost loop, so the framework must see
/// and modify code across procedure boundaries. `Program` gives analyses
/// that visibility: every function, global, and external effect summary is
/// available to every pass.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name, used in diagnostics.
    pub name: String,
    functions: Vec<Function>,
    globals: Vec<Global>,
    externs: HashMap<String, ExternFn>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(func);
        id
    }

    /// Adds a global object of `size` abstract words and returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64) -> MemObjId {
        let id = MemObjId::new(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            size,
        });
        id
    }

    /// Declares an external function with the given effect summary.
    pub fn declare_extern(&mut self, name: impl Into<String>, effect: ExternEffect) {
        let name = name.into();
        self.externs.insert(name.clone(), ExternFn { name, effect });
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Returns the global with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global(&self, id: MemObjId) -> &Global {
        &self.globals[id.index()]
    }

    /// Looks up an external declaration by name.
    pub fn extern_fn(&self, name: &str) -> Option<&ExternFn> {
        self.externs.get(name)
    }

    /// Iterates over all function ids.
    pub fn function_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId::new)
    }

    /// Iterates over all global object ids.
    pub fn global_ids(&self) -> impl Iterator<Item = MemObjId> + '_ {
        (0..self.globals.len() as u32).map(MemObjId::new)
    }

    /// The number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// The number of global memory objects.
    pub fn global_count(&self) -> usize {
        self.globals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_holds_functions_and_globals() {
        let mut p = Program::new("test");
        let g = p.add_global("seed", 1);
        let f = p.add_function(Function::new("main"));
        assert_eq!(p.global(g).name, "seed");
        assert_eq!(p.function(f).name, "main");
        assert_eq!(p.function_by_name("main"), Some(f));
        assert_eq!(p.function_by_name("missing"), None);
        assert_eq!(p.function_count(), 1);
        assert_eq!(p.global_count(), 1);
    }

    #[test]
    fn extern_declarations_are_queryable() {
        let mut p = Program::new("test");
        p.declare_extern(
            "malloc",
            ExternEffect {
                allocates: true,
                ..Default::default()
            },
        );
        assert!(p.extern_fn("malloc").unwrap().effect.allocates);
        assert!(p.extern_fn("free").is_none());
    }
}
