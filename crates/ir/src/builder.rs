//! Ergonomic construction of IR functions.

use crate::function::Function;
use crate::ids::{BlockId, FuncId, InstId, MemObjId, ValueId};
use crate::inst::{Callee, CommGroupId, Inst, MemRef, Opcode, Terminator, YBranchHint};
use crate::program::Program;

/// A builder for [`Function`]s.
///
/// The builder keeps a *current block* cursor; instruction-emitting methods
/// append to it. Finish with [`FunctionBuilder::finish`], which moves the
/// function into a [`Program`].
///
/// # Example
///
/// ```
/// use seqpar_ir::{FunctionBuilder, Program, Opcode};
///
/// let mut program = Program::new("p");
/// let mut b = FunctionBuilder::new("add_one");
/// let x = b.add_param();
/// let one = b.const_(1);
/// let sum = b.binop(Opcode::Add, x, one);
/// b.ret(Some(sum));
/// let f = b.finish(&mut program);
/// assert_eq!(program.function(f).name, "add_one");
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Creates a builder positioned at a fresh entry block.
    pub fn new(name: impl Into<String>) -> Self {
        let func = Function::new(name);
        let current = func.entry;
        Self { func, current }
    }

    /// The entry block of the function under construction.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry
    }

    /// The block the builder is currently appending to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Adds a formal parameter and returns its SSA value.
    pub fn add_param(&mut self) -> ValueId {
        let v = self.func.new_value();
        self.func.params.push(v);
        v
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Moves the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    fn emit(&mut self, opcode: Opcode, operands: Vec<ValueId>, defines: bool) -> Option<ValueId> {
        let def = defines.then(|| self.func.new_value());
        self.func
            .push_inst(self.current, Inst::new(opcode, def, operands));
        def
    }

    /// Emits an integer constant.
    pub fn const_(&mut self, value: i64) -> ValueId {
        self.emit(Opcode::Const(value), vec![], true)
            .expect("const defines")
    }

    /// Emits a copy of `value`.
    pub fn copy(&mut self, value: ValueId) -> ValueId {
        self.emit(Opcode::Copy, vec![value], true)
            .expect("copy defines")
    }

    /// Emits a binary operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a two-operand arithmetic or comparison opcode.
    pub fn binop(&mut self, op: Opcode, lhs: ValueId, rhs: ValueId) -> ValueId {
        assert!(
            matches!(
                op,
                Opcode::Add
                    | Opcode::Sub
                    | Opcode::Mul
                    | Opcode::Div
                    | Opcode::Rem
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Shl
                    | Opcode::Shr
                    | Opcode::CmpEq
                    | Opcode::CmpNe
                    | Opcode::CmpLt
                    | Opcode::CmpLe
            ),
            "binop requires a binary opcode, got {op:?}"
        );
        self.emit(op, vec![lhs, rhs], true).expect("binop defines")
    }

    /// Emits a phi node. Operands pair positionally with the predecessors
    /// of the containing block.
    pub fn phi(&mut self, incoming: &[ValueId]) -> ValueId {
        self.emit(Opcode::Phi, incoming.to_vec(), true)
            .expect("phi defines")
    }

    /// Emits an address-of for a global or stack object.
    pub fn global_addr(&mut self, obj: MemObjId) -> ValueId {
        self.emit(Opcode::AddrOf(obj), vec![], true)
            .expect("addrof defines")
    }

    /// Emits pointer arithmetic deriving a new pointer from `base`.
    pub fn gep(&mut self, base: ValueId, offset: ValueId) -> ValueId {
        self.emit(Opcode::Gep, vec![base, offset], true)
            .expect("gep defines")
    }

    /// Emits a load through `ptr`.
    pub fn load(&mut self, ptr: ValueId) -> ValueId {
        self.emit(Opcode::Load(MemRef::direct(ptr)), vec![ptr], true)
            .expect("load defines")
    }

    /// Emits a load through an arbitrary memory reference.
    pub fn load_ref(&mut self, mem: MemRef) -> ValueId {
        let mut ops = vec![mem.base];
        ops.extend(mem.index);
        self.emit(Opcode::Load(mem), ops, true)
            .expect("load defines")
    }

    /// Emits a store of `value` through `ptr`.
    pub fn store(&mut self, ptr: ValueId, value: ValueId) -> InstId {
        let inst = Inst::new(Opcode::Store(MemRef::direct(ptr)), None, vec![value, ptr]);
        self.func.push_inst(self.current, inst)
    }

    /// Emits a store of `value` through an arbitrary memory reference.
    pub fn store_ref(&mut self, mem: MemRef, value: ValueId) -> InstId {
        let mut ops = vec![value, mem.base];
        ops.extend(mem.index);
        let inst = Inst::new(Opcode::Store(mem), None, ops);
        self.func.push_inst(self.current, inst)
    }

    /// Emits a call to an internal function; returns the result value.
    pub fn call(&mut self, callee: FuncId, args: &[ValueId]) -> ValueId {
        self.emit(
            Opcode::Call {
                callee: Callee::Internal(callee),
                commutative: None,
            },
            args.to_vec(),
            true,
        )
        .expect("call defines")
    }

    /// Emits a *Commutative*-annotated call to an internal function.
    pub fn call_commutative(
        &mut self,
        callee: FuncId,
        args: &[ValueId],
        group: CommGroupId,
    ) -> ValueId {
        self.emit(
            Opcode::Call {
                callee: Callee::Internal(callee),
                commutative: Some(group),
            },
            args.to_vec(),
            true,
        )
        .expect("call defines")
    }

    /// Emits a call to an external function; `commutative` marks the call
    /// site with the paper's *Commutative* annotation.
    pub fn call_ext(
        &mut self,
        name: impl Into<String>,
        args: &[ValueId],
        commutative: Option<CommGroupId>,
    ) -> ValueId {
        self.emit(
            Opcode::Call {
                callee: Callee::External(name.into()),
                commutative,
            },
            args.to_vec(),
            true,
        )
        .expect("call defines")
    }

    /// Labels the most recently emitted instruction for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if the current block has no instructions yet.
    pub fn label_last(&mut self, label: impl Into<String>) {
        let last = *self
            .func
            .block(self.current)
            .insts
            .last()
            .expect("label_last requires a prior instruction");
        self.func.inst_mut(last).label = Some(label.into());
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.func
            .set_terminator(self.current, Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_branch(&mut self, cond: ValueId, then_block: BlockId, else_block: BlockId) {
        self.func.set_terminator(
            self.current,
            Terminator::CondBranch {
                cond,
                then_block,
                else_block,
                ybranch: None,
            },
        );
    }

    /// Terminates the current block with a Y-branch-annotated conditional
    /// branch (paper §2.3.1): the compiler may legally force the true path.
    pub fn ybranch(
        &mut self,
        cond: ValueId,
        then_block: BlockId,
        else_block: BlockId,
        hint: YBranchHint,
    ) {
        self.func.set_terminator(
            self.current,
            Terminator::CondBranch {
                cond,
                then_block,
                else_block,
                ybranch: Some(hint),
            },
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.func
            .set_terminator(self.current, Terminator::Return(value));
    }

    /// Finishes construction, moving the function into `program`.
    pub fn finish(self, program: &mut Program) -> FuncId {
        program.add_function(self.func)
    }

    /// Finishes construction, returning the bare function (mostly for
    /// tests that do not need a whole program).
    pub fn into_function(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_to_current_block() {
        let mut b = FunctionBuilder::new("f");
        let one = b.const_(1);
        let two = b.const_(2);
        let sum = b.binop(Opcode::Add, one, two);
        b.ret(Some(sum));
        let f = b.into_function();
        assert_eq!(f.block(f.entry).insts.len(), 3);
        assert!(matches!(
            f.block(f.entry).terminator,
            Terminator::Return(Some(_))
        ));
    }

    #[test]
    fn builder_switches_blocks() {
        let mut b = FunctionBuilder::new("f");
        let other = b.add_block("other");
        b.jump(other);
        b.switch_to(other);
        assert_eq!(b.current_block(), other);
        let v = b.const_(0);
        b.ret(Some(v));
        let f = b.into_function();
        assert!(f.block(f.entry).insts.is_empty());
        assert_eq!(f.block(other).insts.len(), 1);
    }

    #[test]
    fn store_records_value_then_pointer_operands() {
        let mut b = FunctionBuilder::new("f");
        let p = b.add_param();
        let v = b.const_(7);
        let st = b.store(p, v);
        b.ret(None);
        let f = b.into_function();
        assert_eq!(f.inst(st).operands, vec![v, p]);
        assert!(f.inst(st).def.is_none());
    }

    #[test]
    fn ybranch_annotation_is_preserved() {
        let mut b = FunctionBuilder::new("f");
        let t = b.add_block("t");
        let e = b.add_block("e");
        let c = b.const_(0);
        b.ybranch(c, t, e, YBranchHint::new(0.5));
        let f = b.into_function();
        match &f.block(f.entry).terminator {
            Terminator::CondBranch {
                ybranch: Some(h), ..
            } => {
                assert_eq!(h.probability, 0.5);
            }
            other => panic!("expected annotated branch, got {other:?}"),
        }
    }

    #[test]
    fn label_last_attaches_to_most_recent_inst() {
        let mut b = FunctionBuilder::new("f");
        let _ = b.const_(1);
        b.label_last("the-one");
        let f = b.into_function();
        let id = f.block(f.entry).insts[0];
        assert_eq!(f.inst(id).label.as_deref(), Some("the-one"));
    }
}
