//! Instructions, opcodes, memory references, and terminators.

use crate::ids::{BlockId, FuncId, MemObjId, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A commutative-group identifier.
///
/// Calls annotated `Commutative` with the same group share internal state
/// and must execute atomically with respect to one another, but may execute
/// in **any order** (paper §2.3.2). `malloc` and `free`, for example,
/// belong to one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommGroupId(pub u32);

impl fmt::Display for CommGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comm{}", self.0)
    }
}

/// The Y-branch annotation attached to a conditional branch (paper §2.3.1).
///
/// Semantics: for any dynamic instance the *true* path may legally be taken
/// regardless of the branch condition. The `probability` communicates how
/// often taking the true path is acceptable — e.g. `1e-5` on a
/// dictionary-reset branch tells the compiler not to force a reset more than
/// about once per 100 000 iterations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct YBranchHint {
    /// Maximum acceptable frequency of compiler-forced true-path takes, as
    /// a fraction of dynamic executions of this branch.
    pub probability: f64,
}

impl YBranchHint {
    /// Creates a hint with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `0.0..=1.0`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "Y-branch probability must be within [0, 1], got {probability}"
        );
        Self { probability }
    }

    /// The interval, in dynamic branch executions, at which the compiler
    /// may force the true path (the reciprocal of the probability).
    pub fn interval(&self) -> u64 {
        if self.probability <= 0.0 {
            u64::MAX
        } else {
            (1.0 / self.probability).round() as u64
        }
    }
}

/// A reference to abstract memory used by loads and stores.
///
/// The `base` is a pointer-valued virtual register; alias analysis resolves
/// it to a points-to set of [`MemObjId`]s. An optional `index` value models
/// array subscripts, and `field` models structure fields — two references
/// to distinct fields of the same object never alias (the paper exploits
/// this in 176.gcc, where bit-flags sharing a byte caused spurious
/// conflicts until split into separate locations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Pointer operand (a virtual register holding an address).
    pub base: ValueId,
    /// Optional index operand (dynamic subscript).
    pub index: Option<ValueId>,
    /// Optional static field offset within the pointed-to object.
    pub field: Option<u32>,
}

impl MemRef {
    /// A direct reference through `base` with no index or field.
    pub fn direct(base: ValueId) -> Self {
        Self {
            base,
            index: None,
            field: None,
        }
    }

    /// A reference to a static field of the pointed-to object.
    pub fn field(base: ValueId, field: u32) -> Self {
        Self {
            base,
            index: None,
            field: Some(field),
        }
    }

    /// A reference subscripted by a dynamic index value.
    pub fn indexed(base: ValueId, index: ValueId) -> Self {
        Self {
            base,
            index: Some(index),
            field: None,
        }
    }
}

/// The target of a call instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Callee {
    /// A function defined in the enclosing [`crate::Program`].
    Internal(FuncId),
    /// An external function known only by name and effect summary.
    External(String),
}

/// A summary of the memory effects of an external function.
///
/// Whole-program scope (paper §2.2) lets the compiler see through calls;
/// for externals we approximate that visibility with a declared summary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExternEffect {
    /// Abstract objects the function may read.
    pub reads: Vec<MemObjId>,
    /// Abstract objects the function may write.
    pub writes: Vec<MemObjId>,
    /// Whether the function may read or write *any* memory (e.g. `memcpy`
    /// through unknown pointers). Overrides `reads`/`writes` when true.
    pub clobbers_all: bool,
    /// Whether the function allocates a fresh object each call (`malloc`).
    pub allocates: bool,
}

impl ExternEffect {
    /// An effect summary for a pure function (no memory effects).
    pub fn pure_fn() -> Self {
        Self::default()
    }

    /// An effect summary that clobbers all memory.
    pub fn clobber_all() -> Self {
        Self {
            clobbers_all: true,
            ..Self::default()
        }
    }
}

/// Instruction opcodes.
///
/// The arithmetic subset is deliberately small: dependence analysis only
/// cares about the def/use shape of an instruction, not its exact
/// semantics. Memory and control effects are what the parallelizer reasons
/// about.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Opcode {
    /// Integer constant.
    Const(i64),
    /// Copy of another value.
    Copy,
    /// Binary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// Binary multiplication.
    Mul,
    /// Binary division.
    Div,
    /// Binary remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
    /// Equality comparison.
    CmpEq,
    /// Inequality comparison.
    CmpNe,
    /// Signed less-than comparison.
    CmpLt,
    /// Signed less-or-equal comparison.
    CmpLe,
    /// SSA phi node; operands pair positionally with the predecessor list
    /// of the containing block.
    Phi,
    /// Take the address of a global or stack object.
    AddrOf(MemObjId),
    /// Pointer arithmetic: derive a pointer from another pointer.
    Gep,
    /// Load from memory.
    Load(MemRef),
    /// Store to memory; the stored value is the first operand.
    Store(MemRef),
    /// Call to an internal or external function.
    Call {
        /// The call target.
        callee: Callee,
        /// `Some` when the call site is annotated *Commutative*.
        commutative: Option<CommGroupId>,
    },
}

impl Opcode {
    /// Whether this opcode may read memory.
    pub fn may_read_memory(&self) -> bool {
        matches!(self, Opcode::Load(_) | Opcode::Call { .. })
    }

    /// Whether this opcode may write memory.
    pub fn may_write_memory(&self) -> bool {
        matches!(self, Opcode::Store(_) | Opcode::Call { .. })
    }

    /// Whether this opcode is a call.
    pub fn is_call(&self) -> bool {
        matches!(self, Opcode::Call { .. })
    }
}

/// A single instruction.
///
/// An instruction optionally defines one SSA value (`def`) and uses zero or
/// more values (`operands`). Loads and stores additionally reference
/// memory through the opcode's [`MemRef`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The operation performed.
    pub opcode: Opcode,
    /// The SSA value defined by this instruction, if any.
    pub def: Option<ValueId>,
    /// The values used by this instruction.
    pub operands: Vec<ValueId>,
    /// Optional source-level label used in diagnostics and reports.
    pub label: Option<String>,
}

impl Inst {
    /// Creates an instruction with no label.
    pub fn new(opcode: Opcode, def: Option<ValueId>, operands: Vec<ValueId>) -> Self {
        Self {
            opcode,
            def,
            operands,
            label: None,
        }
    }

    /// Attaches a diagnostic label, returning `self` for chaining.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Basic-block terminators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on a value.
    CondBranch {
        /// Branch condition.
        cond: ValueId,
        /// Successor when the condition is true (non-zero).
        then_block: BlockId,
        /// Successor when the condition is false (zero).
        else_block: BlockId,
        /// `Some` when this branch carries a Y-branch annotation.
        ybranch: Option<YBranchHint>,
    },
    /// Return from the function with an optional value.
    Return(Option<ValueId>),
    /// Placeholder for a block under construction; invalid in finished IR.
    Unterminated,
}

impl Terminator {
    /// The successor blocks of this terminator, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::CondBranch {
                then_block,
                else_block,
                ..
            } => {
                vec![*then_block, *else_block]
            }
            Terminator::Return(_) | Terminator::Unterminated => Vec::new(),
        }
    }

    /// The condition value, for conditional branches.
    pub fn condition(&self) -> Option<ValueId> {
        match self {
            Terminator::CondBranch { cond, .. } => Some(*cond),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ybranch_interval_is_reciprocal_of_probability() {
        let hint = YBranchHint::new(0.00001);
        assert_eq!(hint.interval(), 100_000);
        assert_eq!(YBranchHint::new(0.0).interval(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn ybranch_rejects_out_of_range_probability() {
        let _ = YBranchHint::new(1.5);
    }

    #[test]
    fn memref_constructors_set_expected_parts() {
        let base = ValueId::new(0);
        let idx = ValueId::new(1);
        assert_eq!(MemRef::direct(base).field, None);
        assert_eq!(MemRef::field(base, 3).field, Some(3));
        assert_eq!(MemRef::indexed(base, idx).index, Some(idx));
    }

    #[test]
    fn opcode_memory_effect_classification() {
        let base = ValueId::new(0);
        assert!(Opcode::Load(MemRef::direct(base)).may_read_memory());
        assert!(!Opcode::Load(MemRef::direct(base)).may_write_memory());
        assert!(Opcode::Store(MemRef::direct(base)).may_write_memory());
        assert!(!Opcode::Add.may_read_memory());
        let call = Opcode::Call {
            callee: Callee::External("f".into()),
            commutative: None,
        };
        assert!(call.may_read_memory() && call.may_write_memory() && call.is_call());
    }

    #[test]
    fn terminator_successors_in_branch_order() {
        let t = Terminator::CondBranch {
            cond: ValueId::new(0),
            then_block: BlockId::new(1),
            else_block: BlockId::new(2),
            ybranch: None,
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Terminator::Return(None).successors(), Vec::new());
        assert_eq!(t.condition(), Some(ValueId::new(0)));
    }
}
