//! Loop-level compiler intermediate representation for the `seqpar`
//! parallelization framework.
//!
//! This crate provides the program representation consumed by the
//! dependence analyses in `seqpar-analysis` and the thread-extraction
//! transformations in the `seqpar` core crate. It models exactly the
//! features that matter for speculative pipelined parallelization of
//! general-purpose C-like programs, following the infrastructure described
//! in *Bridges et al., "Revisiting the Sequential Programming Model for
//! Multi-Core", MICRO 2007*:
//!
//! * virtual registers in SSA form ([`ValueId`]),
//! * abstract memory objects and pointer expressions ([`MemObjId`],
//!   [`MemRef`]) so alias analysis can reason about loads and stores,
//! * calls with effect summaries so whole-program ("region") scope can be
//!   approximated without textual inlining,
//! * branch and call sites that can carry the paper's two sequential-model
//!   extensions: the **Y-branch** and **Commutative** annotations.
//!
//! The representation is arena-based: a [`Function`] owns vectors of
//! [`Block`]s and [`Inst`]s addressed by copyable index newtypes, which
//! keeps the analyses allocation-light and makes graphs over instructions
//! cheap to build.
//!
//! # Example
//!
//! Build a small loop and find it with [`loops::LoopForest`]:
//!
//! ```
//! use seqpar_ir::{FunctionBuilder, Program, Opcode};
//!
//! let mut program = Program::new("example");
//! let dict = program.add_global("dict", 1);
//! let mut b = FunctionBuilder::new("compress_loop");
//! let entry = b.entry_block();
//! let header = b.add_block("header");
//! let body = b.add_block("body");
//! let exit = b.add_block("exit");
//! b.switch_to(entry);
//! b.jump(header);
//! b.switch_to(header);
//! let ch = b.call_ext("read", &[], None);
//! let eof = b.binop(Opcode::CmpEq, ch, ch);
//! b.cond_branch(eof, exit, body);
//! b.switch_to(body);
//! let addr = b.global_addr(dict);
//! b.store(addr, ch);
//! b.jump(header);
//! b.switch_to(exit);
//! b.ret(None);
//! let func = b.finish(&mut program);
//! let loops = seqpar_ir::loops::LoopForest::build(program.function(func));
//! assert_eq!(loops.loops().count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod function;
pub mod ids;
pub mod inst;
pub mod loops;
pub mod print;
pub mod program;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use function::{Block, Function};
pub use ids::{BlockId, FuncId, InstId, MemObjId, ValueId};
pub use inst::{Callee, CommGroupId, ExternEffect, Inst, MemRef, Opcode, Terminator, YBranchHint};
pub use loops::{Loop, LoopForest, LoopId};
pub use program::{ExternFn, Global, Program};
pub use verify::{verify_function, VerifyError};
