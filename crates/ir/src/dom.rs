//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;
use crate::ids::BlockId;

/// A dominator (or post-dominator) tree over the blocks of a function.
///
/// Post-dominance is computed over the reversed CFG rooted at a *virtual
/// exit* connected to every return block, so functions with multiple
/// returns are handled uniformly. Queries never expose the virtual node:
/// a block whose immediate post-dominator is the virtual exit reports
/// `None` from [`DomTree::idom`].
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per node; `idom[root] == root`. The virtual
    /// node, when present, has index `real_count`.
    idom: Vec<Option<usize>>,
    /// Number of real blocks (the virtual node, if any, comes after).
    real_count: usize,
    root: usize,
}

impl DomTree {
    /// Builds the dominator tree of `cfg`.
    pub fn dominators(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let order: Vec<usize> = cfg.reverse_postorder().iter().map(|b| b.index()).collect();
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|b| {
                cfg.preds(BlockId::new(b as u32))
                    .iter()
                    .map(|p| p.index())
                    .collect()
            })
            .collect();
        let idom = compute(n, cfg.entry().index(), &order, &preds);
        Self {
            idom,
            real_count: n,
            root: cfg.entry().index(),
        }
    }

    /// Builds the post-dominator tree of `cfg`.
    pub fn post_dominators(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let virt = n;
        // Reverse graph over n+1 nodes: edge u->v iff v->u in the CFG,
        // plus virt->e for every exit e.
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for b in 0..n {
            let id = BlockId::new(b as u32);
            for p in cfg.preds(id) {
                rsuccs[b].push(p.index());
            }
            for s in cfg.succs(id) {
                rpreds[b].push(s.index());
            }
        }
        for e in cfg.exits() {
            rsuccs[virt].push(e.index());
            rpreds[e.index()].push(virt);
        }
        let order = rpo(n + 1, virt, &rsuccs);
        let idom = compute(n + 1, virt, &order, &rpreds);
        Self {
            idom,
            real_count: n,
            root: virt,
        }
    }

    /// The immediate dominator of `block`, or `None` if `block` is the
    /// root, unreachable, or immediately post-dominated only by the
    /// virtual exit.
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        match self.idom[block.index()] {
            Some(d) if d != block.index() && d < self.real_count => Some(BlockId::new(d as u32)),
            _ => None,
        }
    }

    /// The root of the tree when it is a real block (always so for
    /// dominator trees; for post-dominator trees only with a single exit,
    /// in which case the virtual exit trivially forwards to it).
    pub fn root(&self) -> Option<BlockId> {
        if self.root < self.real_count {
            Some(BlockId::new(self.root as u32))
        } else {
            None
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b.index();
        loop {
            if cur == a.index() {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `block` participates in the tree (is reachable).
    pub fn contains(&self, block: BlockId) -> bool {
        self.idom[block.index()].is_some()
    }
}

fn rpo(n: usize, root: usize, succs: &[Vec<usize>]) -> Vec<usize> {
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    visited[root] = true;
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        if *next < succs[node].len() {
            let s = succs[node][*next];
            *next += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Cooper–Harvey–Kennedy iterative dominator computation.
fn compute(n: usize, root: usize, order: &[usize], preds: &[Vec<usize>]) -> Vec<Option<usize>> {
    let mut order_index = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        order_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter() {
            if b == root {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order_index, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(idom: &[Option<usize>], order_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order_index[a] > order_index[b] {
            a = idom[a].expect("settled node");
        }
        while order_index[b] > order_index[a] {
            b = idom[b].expect("settled node");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let then_b = b.add_block("then");
        let else_b = b.add_block("else");
        let join = b.add_block("join");
        let c = b.const_(1);
        b.cond_branch(c, then_b, else_b);
        b.switch_to(then_b);
        b.jump(join);
        b.switch_to(else_b);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        b.into_function()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        let (entry, t, e, join) = (f.entry, BlockId::new(1), BlockId::new(2), BlockId::new(3));
        assert_eq!(dom.idom(t), Some(entry));
        assert_eq!(dom.idom(e), Some(entry));
        assert_eq!(dom.idom(join), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(t, join));
        assert!(dom.dominates(join, join));
        assert_eq!(dom.root(), Some(entry));
    }

    #[test]
    fn diamond_post_dominators() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let pdom = DomTree::post_dominators(&cfg);
        let (entry, t, e, join) = (f.entry, BlockId::new(1), BlockId::new(2), BlockId::new(3));
        assert_eq!(pdom.idom(t), Some(join));
        assert_eq!(pdom.idom(e), Some(join));
        assert_eq!(pdom.idom(entry), Some(join));
        assert!(pdom.dominates(join, entry));
        assert!(!pdom.dominates(t, entry));
    }

    #[test]
    fn loop_dominators() {
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let c = b.const_(1);
        b.cond_branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.into_function();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(header), Some(f.entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
    }

    #[test]
    fn multi_exit_post_dominance_uses_virtual_root() {
        let mut bld = FunctionBuilder::new("f");
        let a = bld.add_block("a");
        let b2 = bld.add_block("b");
        let c = bld.const_(1);
        bld.cond_branch(c, a, b2);
        bld.switch_to(a);
        bld.ret(None);
        bld.switch_to(b2);
        bld.ret(None);
        let f = bld.into_function();
        let cfg = Cfg::build(&f);
        let pdom = DomTree::post_dominators(&cfg);
        assert_eq!(pdom.idom(f.entry), None);
        assert!(!pdom.dominates(a, f.entry));
        assert!(!pdom.dominates(b2, f.entry));
        assert!(pdom.contains(f.entry));
        assert_eq!(pdom.root(), None);
    }

    #[test]
    fn loop_body_is_post_dominated_by_header() {
        let mut b = FunctionBuilder::new("loop");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let c = b.const_(1);
        b.cond_branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.into_function();
        let cfg = Cfg::build(&f);
        let pdom = DomTree::post_dominators(&cfg);
        assert_eq!(pdom.idom(body), Some(header));
        assert_eq!(pdom.idom(header), Some(exit));
        assert!(pdom.dominates(header, body));
    }
}
