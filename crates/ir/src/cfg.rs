//! Control-flow graph utilities: successors, predecessors, and orderings.

use crate::function::Function;
use crate::ids::BlockId;

/// Precomputed successor/predecessor lists and traversal orders for a
/// [`Function`]'s control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl Cfg {
    /// Builds the CFG for a function.
    pub fn build(func: &Function) -> Self {
        let n = func.block_count();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in func.block_ids() {
            for s in func.block(b).terminator.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        let rpo = reverse_postorder(func.entry, &succs);
        Self {
            succs,
            preds,
            rpo,
            entry: func.entry,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successors of `block` in branch order.
    pub fn succs(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.index()]
    }

    /// Predecessors of `block`.
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// not included.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// The number of blocks (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo.contains(&block)
    }

    /// Exit blocks: reachable blocks with no successors (returns).
    pub fn exits(&self) -> Vec<BlockId> {
        self.rpo
            .iter()
            .copied()
            .filter(|b| self.succs(*b).is_empty())
            .collect()
    }
}

fn reverse_postorder(entry: BlockId, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let n = succs.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit state stack to avoid recursion limits
    // on long CFGs.
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        if *next < succs[block.index()].len() {
            let s = succs[block.index()][*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(block);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn diamond() -> crate::function::Function {
        let mut b = FunctionBuilder::new("diamond");
        let then_b = b.add_block("then");
        let else_b = b.add_block("else");
        let join = b.add_block("join");
        let c = b.const_(1);
        b.cond_branch(c, then_b, else_b);
        b.switch_to(then_b);
        b.jump(join);
        b.switch_to(else_b);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        b.into_function()
    }

    #[test]
    fn diamond_has_expected_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs(f.entry).len(), 2);
        let join = BlockId::new(3);
        assert_eq!(cfg.preds(join).len(), 2);
        assert_eq!(cfg.exits(), vec![join]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
        // Join must come after both branches.
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId::new(3)) > pos(BlockId::new(1)));
        assert!(pos(BlockId::new(3)) > pos(BlockId::new(2)));
    }

    #[test]
    fn unreachable_blocks_are_excluded_from_rpo() {
        let mut b = FunctionBuilder::new("f");
        let dead = b.add_block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.into_function();
        let cfg = Cfg::build(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.reverse_postorder().len(), 1);
    }

    #[test]
    fn self_loop_edges_are_recorded() {
        let mut b = FunctionBuilder::new("f");
        let body = b.add_block("body");
        b.jump(body);
        b.switch_to(body);
        let c = b.const_(1);
        b.cond_branch(c, body, body);
        let f = b.into_function();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs(body), &[body, body]);
        assert!(cfg.preds(body).contains(&f.entry));
    }
}
