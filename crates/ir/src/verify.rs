//! Structural validation of IR functions.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, InstId, ValueId};
use crate::inst::{Opcode, Terminator};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// An IR well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A reachable block is missing a terminator.
    UnterminatedBlock(BlockId),
    /// A terminator targets a block that does not exist.
    BadBranchTarget(BlockId),
    /// A value is defined by more than one instruction (SSA violation).
    MultipleDefinitions(ValueId),
    /// An instruction uses a value that is never defined and is not a
    /// parameter.
    UseOfUndefined(InstId, ValueId),
    /// A phi's operand count does not match its block's predecessor count.
    PhiArityMismatch(InstId),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnterminatedBlock(b) => write!(f, "block {b} has no terminator"),
            VerifyError::BadBranchTarget(b) => write!(f, "branch targets nonexistent block {b}"),
            VerifyError::MultipleDefinitions(v) => write!(f, "value {v} defined more than once"),
            VerifyError::UseOfUndefined(i, v) => {
                write!(f, "instruction {i} uses undefined value {v}")
            }
            VerifyError::PhiArityMismatch(i) => {
                write!(f, "phi {i} operand count does not match predecessors")
            }
        }
    }
}

impl Error for VerifyError {}

/// Checks the structural invariants of `func`.
///
/// # Errors
///
/// Returns the first violation found: unterminated reachable blocks,
/// branches to nonexistent blocks, multiple definitions of an SSA value,
/// uses of never-defined values, or phi/predecessor arity mismatches.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let block_count = func.block_count() as u32;
    // Branch targets must exist.
    for b in func.block_ids() {
        for s in func.block(b).terminator.successors() {
            if s.index() as u32 >= block_count {
                return Err(VerifyError::BadBranchTarget(s));
            }
        }
    }
    let cfg = Cfg::build(func);
    for &b in cfg.reverse_postorder() {
        if matches!(func.block(b).terminator, Terminator::Unterminated) {
            return Err(VerifyError::UnterminatedBlock(b));
        }
    }
    // Single definition per value.
    let mut defined: HashSet<ValueId> = func.params.iter().copied().collect();
    for i in func.inst_ids() {
        if let Some(d) = func.inst(i).def {
            if !defined.insert(d) {
                return Err(VerifyError::MultipleDefinitions(d));
            }
        }
    }
    // Uses must be defined somewhere (param or instruction). Dominance of
    // defs over uses is deliberately not enforced: loop-carried values
    // flow through phis and the analyses treat the body as a region.
    for i in func.inst_ids() {
        for &op in &func.inst(i).operands {
            if !defined.contains(&op) {
                return Err(VerifyError::UseOfUndefined(i, op));
            }
        }
    }
    for b in func.block_ids() {
        if let Some(cond) = func.block(b).terminator.condition() {
            if !defined.contains(&cond) {
                // Attribute the use to the last instruction of the block
                // if there is one, else a synthetic id.
                let at = func
                    .block(b)
                    .insts
                    .last()
                    .copied()
                    .unwrap_or(InstId::new(0));
                return Err(VerifyError::UseOfUndefined(at, cond));
            }
        }
    }
    // Phi arity.
    for b in func.block_ids() {
        let preds = cfg.preds(b).len();
        for &i in &func.block(b).insts {
            if matches!(func.inst(i).opcode, Opcode::Phi) && func.inst(i).operands.len() != preds {
                return Err(VerifyError::PhiArityMismatch(i));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;

    #[test]
    fn accepts_well_formed_function() {
        let mut b = FunctionBuilder::new("ok");
        let x = b.add_param();
        let one = b.const_(1);
        let s = b.binop(Opcode::Add, x, one);
        b.ret(Some(s));
        assert_eq!(verify_function(&b.into_function()), Ok(()));
    }

    #[test]
    fn rejects_unterminated_reachable_block() {
        let b = FunctionBuilder::new("bad");
        let f = b.into_function();
        assert_eq!(
            verify_function(&f),
            Err(VerifyError::UnterminatedBlock(f.entry))
        );
    }

    #[test]
    fn ignores_unterminated_unreachable_block() {
        let mut b = FunctionBuilder::new("f");
        let _dead = b.add_block("dead");
        b.ret(None);
        assert_eq!(verify_function(&b.into_function()), Ok(()));
    }

    #[test]
    fn rejects_use_of_undefined_value() {
        let mut f = Function::new("bad");
        let ghost = ValueId::new(99);
        f.push_inst(f.entry, Inst::new(Opcode::Copy, None, vec![ghost]));
        f.set_terminator(f.entry, Terminator::Return(None));
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::UseOfUndefined(_, v)) if v == ghost
        ));
    }

    use crate::function::Function;

    #[test]
    fn rejects_double_definition() {
        let mut f = Function::new("bad");
        let v = f.new_value();
        f.push_inst(f.entry, Inst::new(Opcode::Const(1), Some(v), vec![]));
        f.push_inst(f.entry, Inst::new(Opcode::Const(2), Some(v), vec![]));
        f.set_terminator(f.entry, Terminator::Return(None));
        assert_eq!(
            verify_function(&f),
            Err(VerifyError::MultipleDefinitions(v))
        );
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut f = Function::new("bad");
        f.set_terminator(f.entry, Terminator::Jump(BlockId::new(42)));
        assert_eq!(
            verify_function(&f),
            Err(VerifyError::BadBranchTarget(BlockId::new(42)))
        );
    }

    #[test]
    fn rejects_phi_arity_mismatch() {
        let mut b = FunctionBuilder::new("bad");
        let header = b.add_block("header");
        let exit = b.add_block("exit");
        let init = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        // Header has two predecessors (entry, header) but phi lists one.
        let phi = b.phi(&[init]);
        b.cond_branch(phi, header, exit);
        b.switch_to(exit);
        b.ret(None);
        assert!(matches!(
            verify_function(&b.into_function()),
            Err(VerifyError::PhiArityMismatch(_))
        ));
    }

    #[test]
    fn error_messages_are_lowercase_prose() {
        let msg = VerifyError::UnterminatedBlock(BlockId::new(1)).to_string();
        assert!(msg.starts_with("block"));
    }
}
