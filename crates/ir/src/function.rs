//! Functions and basic blocks.

use crate::ids::{BlockId, InstId, ValueId};
use crate::inst::{Inst, Terminator};
use serde::{Deserialize, Serialize};

/// A basic block: a straight-line sequence of instructions ending in a
/// [`Terminator`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable name used by the printer.
    pub name: String,
    /// Instructions in execution order.
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub terminator: Terminator,
}

impl Block {
    /// Creates an empty, unterminated block.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insts: Vec::new(),
            terminator: Terminator::Unterminated,
        }
    }
}

/// A function: an arena of instructions organized into basic blocks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters (SSA values live on entry).
    pub params: Vec<ValueId>,
    /// Entry block.
    pub entry: BlockId,
    blocks: Vec<Block>,
    insts: Vec<Inst>,
    value_count: u32,
}

impl Function {
    /// Creates an empty function with a fresh entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            entry: BlockId::new(0),
            blocks: vec![Block::new("entry")],
            insts: Vec::new(),
            value_count: 0,
        }
    }

    /// Allocates a fresh SSA value.
    pub fn new_value(&mut self) -> ValueId {
        let id = ValueId::new(self.value_count);
        self.value_count += 1;
        id
    }

    /// The number of SSA values allocated so far.
    pub fn value_count(&self) -> usize {
        self.value_count as usize
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Block::new(name));
        id
    }

    /// Appends an instruction to a block and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = InstId::new(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Inserts an instruction into `block` immediately *before* the
    /// instruction `before`, returning the new instruction's id. Used by
    /// transformation passes such as inlining.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or `before` is not in `block`.
    pub fn insert_inst_before(&mut self, block: BlockId, before: InstId, inst: Inst) -> InstId {
        let id = InstId::new(self.insts.len() as u32);
        self.insts.push(inst);
        let list = &mut self.blocks[block.index()].insts;
        let pos = list
            .iter()
            .position(|i| *i == before)
            .unwrap_or_else(|| panic!("{before} is not in {block}"));
        list.insert(pos, id);
        id
    }

    /// Sets the terminator of a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].terminator = term;
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the instruction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Iterates over all block ids in arena order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// Iterates over all instruction ids in arena order.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.insts.len() as u32).map(InstId::new)
    }

    /// The number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The number of instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Finds the block containing an instruction (linear scan).
    pub fn block_of(&self, inst: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|b| self.block(*b).insts.contains(&inst))
    }

    /// Finds the unique instruction defining `value`, if any.
    pub fn def_of(&self, value: ValueId) -> Option<InstId> {
        self.inst_ids().find(|i| self.inst(*i).def == Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;

    #[test]
    fn function_starts_with_entry_block() {
        let f = Function::new("f");
        assert_eq!(f.block_count(), 1);
        assert_eq!(f.block(f.entry).name, "entry");
        assert!(matches!(
            f.block(f.entry).terminator,
            Terminator::Unterminated
        ));
    }

    #[test]
    fn push_inst_appends_to_block_in_order() {
        let mut f = Function::new("f");
        let v0 = f.new_value();
        let v1 = f.new_value();
        let i0 = f.push_inst(f.entry, Inst::new(Opcode::Const(1), Some(v0), vec![]));
        let i1 = f.push_inst(f.entry, Inst::new(Opcode::Copy, Some(v1), vec![v0]));
        assert_eq!(f.block(f.entry).insts, vec![i0, i1]);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.def_of(v1), Some(i1));
        assert_eq!(f.block_of(i1), Some(f.entry));
    }

    #[test]
    fn value_ids_are_dense() {
        let mut f = Function::new("f");
        let a = f.new_value();
        let b = f.new_value();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(f.value_count(), 2);
    }
}
