//! Natural-loop discovery.
//!
//! The parallelizer targets loops at *any* nesting level — the paper found
//! the useful parallelism at or near the outermost application loop
//! (§2.2) — so the forest records the full nest with parent links.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::ids::{BlockId, InstId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a loop within a [`LoopForest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// A natural loop: a header block plus the body reachable backwards from
/// its latches.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// The unique header (target of the back edges).
    pub header: BlockId,
    /// Source blocks of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header, in ascending order.
    pub blocks: Vec<BlockId>,
    /// Immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth; `0` for outermost loops.
    pub depth: u32,
}

impl Loop {
    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.binary_search(&block).is_ok()
    }
}

/// The set of natural loops of a function, organized as a forest.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Discovers all natural loops of `func`.
    ///
    /// Back edges are CFG edges `latch -> header` where `header` dominates
    /// `latch`. Loops sharing a header are merged. Irreducible cycles
    /// (with no dominating header) are not reported.
    pub fn build(func: &Function) -> Self {
        let cfg = Cfg::build(func);
        let dom = DomTree::dominators(&cfg);
        // Collect back edges grouped by header.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in cfg.reverse_postorder().iter().copied() {
            for s in cfg.succs(b) {
                if dom.dominates(*s, b) {
                    match headers.iter_mut().find(|(h, _)| h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => headers.push((*s, vec![b])),
                    }
                }
            }
        }
        // Natural-loop body: header plus all blocks that reach a latch
        // without passing through the header.
        let mut loops = Vec::new();
        for (header, latches) in headers {
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if body.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if dom.contains(p) && body.insert(p) {
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop {
                header,
                latches,
                blocks: body.into_iter().collect(),
                parent: None,
                depth: 0,
            });
        }
        // Order outer loops before inner ones (by body size, descending)
        // so parent assignment can scan earlier entries.
        loops.sort_by(|a, b| {
            b.blocks
                .len()
                .cmp(&a.blocks.len())
                .then(a.header.cmp(&b.header))
        });
        for i in 0..loops.len() {
            // The parent is the smallest loop strictly containing this one.
            let mut parent: Option<usize> = None;
            for j in 0..i {
                if i != j
                    && loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[i].blocks.iter().all(|b| loops[j].contains(*b))
                {
                    parent = Some(match parent {
                        None => j,
                        Some(p) if loops[j].blocks.len() < loops[p].blocks.len() => j,
                        Some(p) => p,
                    });
                }
            }
            loops[i].parent = parent.map(|p| LoopId(p as u32));
            loops[i].depth = parent.map_or(0, |p| loops[p].depth + 1);
        }
        Self { loops }
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0 as usize]
    }

    /// Iterates over all loops, outermost first.
    pub fn loops(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId(i as u32), l))
    }

    /// The number of loops discovered.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether no loops were discovered.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Finds the loop headed at `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == header)
            .map(|i| LoopId(i as u32))
    }

    /// The innermost loop containing `block`, if any.
    pub fn innermost_containing(&self, block: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(block))
            .min_by_key(|(_, l)| l.blocks.len())
            .map(|(i, _)| LoopId(i as u32))
    }

    /// All instruction ids inside the body of `id`, in block order.
    pub fn body_insts(&self, id: LoopId, func: &Function) -> Vec<InstId> {
        self.get(id)
            .blocks
            .iter()
            .flat_map(|b| func.block(*b).insts.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// entry -> outer_header -> inner_header -> inner_body -> inner_header
    ///                       \-> exit          \-> outer_latch -> outer_header
    fn nested_loops() -> Function {
        let mut b = FunctionBuilder::new("nested");
        let oh = b.add_block("outer_header");
        let ih = b.add_block("inner_header");
        let ib = b.add_block("inner_body");
        let ol = b.add_block("outer_latch");
        let exit = b.add_block("exit");
        b.jump(oh);
        b.switch_to(oh);
        let c1 = b.const_(1);
        b.cond_branch(c1, ih, exit);
        b.switch_to(ih);
        let c2 = b.const_(1);
        b.cond_branch(c2, ib, ol);
        b.switch_to(ib);
        b.jump(ih);
        b.switch_to(ol);
        b.jump(oh);
        b.switch_to(exit);
        b.ret(None);
        b.into_function()
    }

    use crate::function::Function;

    #[test]
    fn finds_nested_loops_with_parent_links() {
        let f = nested_loops();
        let forest = LoopForest::build(&f);
        assert_eq!(forest.len(), 2);
        let outer = forest.loop_with_header(BlockId::new(1)).unwrap();
        let inner = forest.loop_with_header(BlockId::new(2)).unwrap();
        assert_eq!(forest.get(outer).depth, 0);
        assert_eq!(forest.get(inner).depth, 1);
        assert_eq!(forest.get(inner).parent, Some(outer));
        assert_eq!(forest.get(outer).parent, None);
        // Outer body contains the inner loop entirely.
        for b in &forest.get(inner).blocks {
            assert!(forest.get(outer).contains(*b));
        }
        // Exit is outside both loops.
        assert!(!forest.get(outer).contains(BlockId::new(5)));
    }

    #[test]
    fn innermost_containing_picks_smallest_loop() {
        let f = nested_loops();
        let forest = LoopForest::build(&f);
        let inner = forest.loop_with_header(BlockId::new(2)).unwrap();
        let outer = forest.loop_with_header(BlockId::new(1)).unwrap();
        assert_eq!(forest.innermost_containing(BlockId::new(3)), Some(inner));
        assert_eq!(forest.innermost_containing(BlockId::new(4)), Some(outer));
        assert_eq!(forest.innermost_containing(BlockId::new(5)), None);
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = FunctionBuilder::new("f");
        let v = b.const_(1);
        b.ret(Some(v));
        let forest = LoopForest::build(&b.into_function());
        assert!(forest.is_empty());
    }

    #[test]
    fn self_loop_is_a_loop_of_one_block() {
        let mut b = FunctionBuilder::new("f");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.jump(body);
        b.switch_to(body);
        let c = b.const_(1);
        b.cond_branch(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.into_function();
        let forest = LoopForest::build(&f);
        assert_eq!(forest.len(), 1);
        let (_, l) = forest.loops().next().unwrap();
        assert_eq!(l.blocks, vec![body]);
        assert_eq!(l.latches, vec![body]);
    }

    #[test]
    fn body_insts_collects_loop_instructions() {
        let f = nested_loops();
        let forest = LoopForest::build(&f);
        let outer = forest.loop_with_header(BlockId::new(1)).unwrap();
        // c1 (header) and c2 (inner header) are inside the outer loop.
        assert_eq!(forest.body_insts(outer, &f).len(), 2);
    }
}
