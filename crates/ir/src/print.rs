//! Textual printing of IR for diagnostics and golden tests.

use crate::function::Function;
use crate::ids::InstId;
use crate::inst::{Callee, Opcode, Terminator};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders a function as human-readable text.
///
/// The format is stable enough for golden tests but is not a parseable
/// serialization; use the `serde` impls for that.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let _ = writeln!(out, "func @{}({}) {{", func.name, params.join(", "));
    for b in func.block_ids() {
        let block = func.block(b);
        let _ = writeln!(out, "{b} ({}):", block.name);
        for &i in &block.insts {
            let _ = writeln!(out, "  {}", inst_to_string(func, i));
        }
        let term = match &block.terminator {
            Terminator::Jump(t) => format!("jump {t}"),
            Terminator::CondBranch {
                cond,
                then_block,
                else_block,
                ybranch,
            } => {
                let y = ybranch
                    .map(|h| format!(" @YBRANCH(probability={})", h.probability))
                    .unwrap_or_default();
                format!("br {cond}, {then_block}, {else_block}{y}")
            }
            Terminator::Return(Some(v)) => format!("ret {v}"),
            Terminator::Return(None) => "ret".to_string(),
            Terminator::Unterminated => "<unterminated>".to_string(),
        };
        let _ = writeln!(out, "  {term}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a single instruction as text.
pub fn inst_to_string(func: &Function, id: InstId) -> String {
    let inst = func.inst(id);
    let def = inst.def.map(|d| format!("{d} = ")).unwrap_or_default();
    let ops: Vec<String> = inst
        .operands
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let ops = ops.join(", ");
    let body = match &inst.opcode {
        Opcode::Const(c) => format!("const {c}"),
        Opcode::Copy => format!("copy {ops}"),
        Opcode::Add => format!("add {ops}"),
        Opcode::Sub => format!("sub {ops}"),
        Opcode::Mul => format!("mul {ops}"),
        Opcode::Div => format!("div {ops}"),
        Opcode::Rem => format!("rem {ops}"),
        Opcode::And => format!("and {ops}"),
        Opcode::Or => format!("or {ops}"),
        Opcode::Xor => format!("xor {ops}"),
        Opcode::Shl => format!("shl {ops}"),
        Opcode::Shr => format!("shr {ops}"),
        Opcode::CmpEq => format!("cmpeq {ops}"),
        Opcode::CmpNe => format!("cmpne {ops}"),
        Opcode::CmpLt => format!("cmplt {ops}"),
        Opcode::CmpLe => format!("cmple {ops}"),
        Opcode::Phi => format!("phi {ops}"),
        Opcode::AddrOf(obj) => format!("addrof {obj}"),
        Opcode::Gep => format!("gep {ops}"),
        Opcode::Load(m) => format!("load {}{}", mem_suffix(m), ops),
        Opcode::Store(m) => format!("store {}{}", mem_suffix(m), ops),
        Opcode::Call {
            callee,
            commutative,
        } => {
            let name = match callee {
                Callee::Internal(f) => format!("{f}"),
                Callee::External(n) => format!("@{n}"),
            };
            let comm = commutative
                .map(|g| format!(" @COMMUTATIVE({g})"))
                .unwrap_or_default();
            format!("call {name}({ops}){comm}")
        }
    };
    let label = inst
        .label
        .as_deref()
        .map(|l| format!("  ; {l}"))
        .unwrap_or_default();
    format!("{id}: {def}{body}{label}")
}

fn mem_suffix(m: &crate::inst::MemRef) -> String {
    let mut s = String::new();
    if let Some(f) = m.field {
        let _ = write!(s, ".f{f} ");
    }
    if m.index.is_some() {
        let _ = write!(s, "[idx] ");
    }
    s
}

/// Renders a whole program as text.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", program.name);
    for g in program.global_ids() {
        let global = program.global(g);
        let _ = writeln!(out, "global {g} {} [{}]", global.name, global.size);
    }
    for f in program.function_ids() {
        out.push_str(&function_to_string(program.function(f)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CommGroupId, YBranchHint};

    #[test]
    fn prints_annotated_branch_and_call() {
        let mut p = Program::new("demo");
        let mut b = FunctionBuilder::new("f");
        let t = b.add_block("t");
        let e = b.add_block("e");
        let r = b.call_ext("rng", &[], Some(CommGroupId(2)));
        b.ybranch(r, t, e, YBranchHint::new(0.25));
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        b.finish(&mut p);
        let text = program_to_string(&p);
        assert!(text.contains("@COMMUTATIVE(comm2)"), "{text}");
        assert!(text.contains("@YBRANCH(probability=0.25)"), "{text}");
        assert!(text.contains("call @rng()"), "{text}");
    }

    #[test]
    fn prints_labels_as_comments() {
        let mut b = FunctionBuilder::new("f");
        let _ = b.const_(5);
        b.label_last("the answer-ish");
        b.ret(None);
        let f = b.into_function();
        let text = function_to_string(&f);
        assert!(text.contains("; the answer-ish"), "{text}");
    }

    #[test]
    fn golden_print_of_a_representative_function() {
        use crate::inst::MemRef;
        let mut p = Program::new("golden");
        let g = p.add_global("g", 4);
        let mut b = FunctionBuilder::new("f");
        let x = b.add_param();
        let c = b.const_(3);
        let sum = b.binop(crate::inst::Opcode::Add, x, c);
        let a = b.global_addr(g);
        let ptr = b.gep(a, sum);
        let v = b.load_ref(MemRef::field(ptr, 2));
        b.store(ptr, v);
        b.ret(Some(v));
        b.finish(&mut p);
        let text = program_to_string(&p);
        let expected = "\
program golden
global #m0 g [4]
func @f(%v0) {
bb0 (entry):
  i0: %v1 = const 3
  i1: %v2 = add %v0, %v1
  i2: %v3 = addrof #m0
  i3: %v4 = gep %v3, %v2
  i4: %v5 = load .f2 %v4
  i5: store %v5, %v4
  ret %v5
}
";
        assert_eq!(text, expected);
    }

    #[test]
    fn debug_output_is_never_empty() {
        let f = FunctionBuilder::new("empty").into_function();
        assert!(!function_to_string(&f).is_empty());
    }
}
