//! Index newtypes used throughout the IR.
//!
//! Every entity in the IR arena is addressed by a small copyable id. The
//! newtypes prevent, at compile time, an instruction index from being used
//! where a block index is expected ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index of this id.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A virtual register (SSA value) within a [`crate::Function`].
    ValueId,
    "%v"
);
id_type!(
    /// An instruction within a [`crate::Function`].
    InstId,
    "i"
);
id_type!(
    /// A basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// A function within a [`crate::Program`].
    FuncId,
    "@f"
);
id_type!(
    /// An abstract memory object (global, stack slot, or heap allocation
    /// site) within a [`crate::Program`].
    MemObjId,
    "#m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_index() {
        let v = ValueId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(usize::from(v), 7);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", ValueId::new(3)), "%v3");
        assert_eq!(format!("{}", InstId::new(4)), "i4");
        assert_eq!(format!("{}", BlockId::new(5)), "bb5");
        assert_eq!(format!("{}", FuncId::new(6)), "@f6");
        assert_eq!(format!("{:?}", MemObjId::new(8)), "#m8");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert_eq!(InstId::new(9), InstId::new(9));
    }
}
