//! Property-based tests for the IR's graph algorithms: dominators and
//! natural-loop discovery over randomly shaped CFGs.

use proptest::prelude::*;
use seqpar_ir::{Cfg, DomTree, FunctionBuilder, LoopForest, Terminator};

/// Builds a function whose CFG has `n` blocks; block `i` branches to the
/// two targets given (targets are reduced mod `n`). Block 0 is the entry;
/// any block whose targets equal itself twice becomes a return.
#[allow(clippy::needless_range_loop)]
fn build_cfg(n: usize, targets: &[(usize, usize)]) -> seqpar_ir::Function {
    let mut b = FunctionBuilder::new("random");
    let blocks: Vec<_> = (0..n - 1)
        .map(|i| b.add_block(format!("b{}", i + 1)))
        .collect();
    let block_id = |i: usize| {
        if i.is_multiple_of(n) {
            b_entry()
        } else {
            blocks[(i % n) - 1]
        }
    };
    fn b_entry() -> seqpar_ir::BlockId {
        seqpar_ir::BlockId::new(0)
    }
    for i in 0..n {
        let id = block_id(i);
        b.switch_to(id);
        let (t1, t2) = targets[i];
        let (t1, t2) = (t1 % n, t2 % n);
        if t1 == i && t2 == i {
            b.ret(None);
        } else if t1 == t2 {
            b.jump(block_id(t1));
        } else {
            let c = b.const_(1);
            b.cond_branch(c, block_id(t1), block_id(t2));
        }
    }
    b.into_function()
}

/// Brute-force dominance: a dominates b iff removing a makes b
/// unreachable from the entry.
fn dominates_brute(func: &seqpar_ir::Function, a: usize, target: usize) -> bool {
    if a == target {
        return true;
    }
    let cfg = Cfg::build(func);
    let n = func.block_count();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    if a == 0 {
        return cfg.is_reachable(seqpar_ir::BlockId::new(target as u32));
    }
    while let Some(x) = stack.pop() {
        for s in cfg.succs(seqpar_ir::BlockId::new(x as u32)) {
            let si = s.index();
            if si != a && !seen[si] {
                seen[si] = true;
                stack.push(si);
            }
        }
    }
    cfg.is_reachable(seqpar_ir::BlockId::new(target as u32)) && !seen[target]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CHK dominator tree agrees with brute-force dominance on every
    /// reachable block pair.
    #[test]
    fn dominators_match_brute_force(
        targets in proptest::collection::vec((0..6usize, 0..6usize), 6)
    ) {
        let n = 6;
        let func = build_cfg(n, &targets);
        let cfg = Cfg::build(&func);
        let dom = DomTree::dominators(&cfg);
        for a in 0..n {
            for t in 0..n {
                let (ba, bt) = (seqpar_ir::BlockId::new(a as u32), seqpar_ir::BlockId::new(t as u32));
                if !cfg.is_reachable(bt) || !cfg.is_reachable(ba) {
                    continue;
                }
                prop_assert_eq!(
                    dom.dominates(ba, bt),
                    dominates_brute(&func, a, t),
                    "dominates({}, {})", a, t
                );
            }
        }
    }

    /// Every discovered natural loop is headed by a block that dominates
    /// its entire body, and the latches really branch to the header.
    #[test]
    fn loops_are_dominated_by_their_headers(
        targets in proptest::collection::vec((0..7usize, 0..7usize), 7)
    ) {
        let func = build_cfg(7, &targets);
        let cfg = Cfg::build(&func);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(&func);
        for (_, l) in forest.loops() {
            for blk in &l.blocks {
                prop_assert!(dom.dominates(l.header, *blk));
            }
            for latch in &l.latches {
                prop_assert!(l.contains(*latch));
                let succs = match &func.block(*latch).terminator {
                    Terminator::Jump(t) => vec![*t],
                    Terminator::CondBranch { then_block, else_block, .. } => {
                        vec![*then_block, *else_block]
                    }
                    _ => vec![],
                };
                prop_assert!(succs.contains(&l.header));
            }
        }
    }

    /// Loop nesting is consistent: a child's body is a subset of its
    /// parent's.
    #[test]
    fn loop_nesting_is_subset_ordered(
        targets in proptest::collection::vec((0..7usize, 0..7usize), 7)
    ) {
        let func = build_cfg(7, &targets);
        let forest = LoopForest::build(&func);
        for (_, l) in forest.loops() {
            if let Some(parent) = l.parent {
                let p = forest.get(parent);
                for blk in &l.blocks {
                    prop_assert!(p.contains(*blk));
                }
                prop_assert!(p.blocks.len() > l.blocks.len());
            }
        }
    }
}
