//! Criterion micro-benchmarks for [`ConcurrentVersionedMemory`] — the
//! numbers behind the substrate's two tuning knobs (shard count and
//! epoch-reclamation cadence, see `MemConfig`) and the per-operation
//! costs on the speculative hot path.
//!
//! Three layers:
//!
//! * `specmem/ops` — single-threaded cost of each primitive: committed
//!   read, eagerly forwarded read, non-silent write, silent write,
//!   `commit_check`, `try_commit`, `rollback`.
//! * `specmem/mix` — whole speculative pipelines (begin → read/write
//!   program → in-order commit with squash-and-replay) at 1–32 worker
//!   threads under a low-conflict mix (disjoint address ranges), a
//!   high-conflict mix (all versions accumulate on four shared
//!   addresses), and a silent-store-heavy mix (repeated same-value
//!   writes that become read-set bets).
//! * `specmem/shards`, `specmem/reclaim` — the high-contention mix
//!   swept across shard counts, and commit throughput swept across
//!   reclamation cadences.
//!
//! Run with `cargo bench -p seqpar-specmem`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use seqpar_specmem::{Addr, ConcurrentVersionedMemory, MemConfig, VersionId};
use std::sync::Barrier;

/// Worker-thread counts the pipeline mixes sweep.
const THREADS: &[usize] = &[1, 2, 4, 8, 16, 32];

/// Memory operations per version in the pipeline mixes.
const OPS: usize = 64;

/// The access pattern a pipeline's versions run.
#[derive(Clone, Copy, Debug)]
enum Mix {
    /// Disjoint per-version address ranges: no conflicts, forwarding
    /// only through the committed prefix.
    LowConflict,
    /// Every version read-accumulates the same four addresses: maximal
    /// forwarding and real conflict squashes.
    HighConflict,
    /// Every version re-writes the same value to the same four
    /// addresses: after the first writer commits, every later write is
    /// silent and becomes a read-set bet.
    SilentHeavy,
}

impl Mix {
    fn label(self) -> &'static str {
        match self {
            Mix::LowConflict => "low-conflict",
            Mix::HighConflict => "high-conflict",
            Mix::SilentHeavy => "silent-heavy",
        }
    }
}

/// One attempt of version `t`'s program under `mix`.
fn attempt(mem: &ConcurrentVersionedMemory, t: usize, mix: Mix) {
    let v = VersionId(t as u64);
    mem.begin(v);
    for i in 0..OPS {
        match mix {
            Mix::LowConflict => {
                let a = Addr((1 + t * OPS + i) as u64);
                let x = mem.read(v, a);
                mem.write(v, a, x + 1);
            }
            Mix::HighConflict => {
                let a = Addr((i % 4) as u64);
                let x = mem.read(v, a);
                mem.write(v, a, x.wrapping_add(t as u64 + 1));
            }
            Mix::SilentHeavy => {
                let a = Addr((i % 4) as u64);
                mem.read(v, a);
                mem.write(v, a, 42);
            }
        }
    }
}

/// Races `threads` versions against `mem`, then drives the in-order
/// commit frontier with squash-and-replay — the executor's protocol.
fn pipeline(mem: &ConcurrentVersionedMemory, threads: usize, mix: Mix) {
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                attempt(mem, t, mix);
            });
        }
    });
    for t in 0..threads {
        let v = VersionId(t as u64);
        let mut replays = 0u32;
        while mem.try_commit(v).is_err() {
            mem.rollback(v);
            replays += 1;
            assert!(replays <= 1_000, "squash/replay failed to converge");
            attempt(mem, t, mix);
        }
    }
}

fn bench_primitive_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("specmem/ops");

    g.bench_function("read/committed", |b| {
        let mem = ConcurrentVersionedMemory::new();
        mem.begin(VersionId(0));
        mem.write(VersionId(0), Addr(1), 7);
        mem.try_commit(VersionId(0)).expect("nothing conflicts");
        mem.begin(VersionId(1));
        b.iter(|| mem.read(VersionId(1), Addr(1)));
    });

    g.bench_function("read/forwarded", |b| {
        // The producing version stays active, so every read is served
        // by eager forwarding from its uncommitted buffer.
        let mem = ConcurrentVersionedMemory::new();
        mem.begin(VersionId(0));
        mem.write(VersionId(0), Addr(1), 7);
        mem.begin(VersionId(1));
        b.iter(|| mem.read(VersionId(1), Addr(1)));
    });

    g.bench_function("write/non-silent", |b| {
        let mem = ConcurrentVersionedMemory::new();
        mem.begin(VersionId(0));
        let mut x = 0u64;
        b.iter(|| {
            x += 1;
            mem.write(VersionId(0), Addr(1), x)
        });
    });

    g.bench_function("write/silent", |b| {
        let mem = ConcurrentVersionedMemory::new();
        mem.begin(VersionId(0));
        mem.write(VersionId(0), Addr(1), 7);
        b.iter(|| mem.write(VersionId(0), Addr(1), 7));
    });

    g.bench_function("commit_check", |b| {
        let mem = ConcurrentVersionedMemory::new();
        mem.begin(VersionId(0));
        for i in 0..8u64 {
            let x = mem.read(VersionId(0), Addr(i));
            mem.write(VersionId(0), Addr(i), x + 1);
        }
        b.iter(|| mem.commit_check(VersionId(0)));
    });

    g.bench_function("try_commit", |b| {
        b.iter_batched(
            || {
                let mem = ConcurrentVersionedMemory::new();
                mem.begin(VersionId(0));
                for i in 0..8u64 {
                    mem.write(VersionId(0), Addr(i), i + 1);
                }
                mem
            },
            |mem| mem.try_commit(VersionId(0)).expect("nothing conflicts"),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("rollback", |b| {
        b.iter_batched(
            || {
                let mem = ConcurrentVersionedMemory::new();
                mem.begin(VersionId(0));
                for i in 0..8u64 {
                    mem.write(VersionId(0), Addr(i), i + 1);
                }
                // A later reader whose forwarded reads the rollback must
                // invalidate — the expensive half of the operation.
                mem.begin(VersionId(1));
                for i in 0..8u64 {
                    mem.read(VersionId(1), Addr(i));
                }
                mem
            },
            |mem| mem.rollback(VersionId(0)),
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

fn bench_pipeline_mixes(c: &mut Criterion) {
    let mut g = c.benchmark_group("specmem/mix");
    g.sample_size(20);
    for mix in [Mix::LowConflict, Mix::HighConflict, Mix::SilentHeavy] {
        for &t in THREADS {
            g.bench_function(format!("{}/{t}threads", mix.label()), |b| {
                b.iter_batched(
                    ConcurrentVersionedMemory::new,
                    |mem| pipeline(&mem, t, mix),
                    BatchSize::SmallInput,
                );
            });
        }
    }
    g.finish();
}

fn bench_shard_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("specmem/shards");
    g.sample_size(20);
    for shards in [1usize, 4, 16, 64] {
        for mix in [Mix::LowConflict, Mix::HighConflict] {
            g.bench_function(format!("{}/{shards}shards/8threads", mix.label()), |b| {
                b.iter_batched(
                    || ConcurrentVersionedMemory::with_shards(shards),
                    |mem| pipeline(&mem, 8, mix),
                    BatchSize::SmallInput,
                );
            });
        }
    }
    g.finish();
}

fn bench_reclaim_cadence(c: &mut Criterion) {
    let mut g = c.benchmark_group("specmem/reclaim");
    g.sample_size(20);
    // A long single-threaded commit chain: every version writes a
    // disjoint address and commits immediately, so the measured cost is
    // begin + write + try_commit + the amortized reclamation fold.
    const CHAIN: u64 = 256;
    for cadence in [1u64, 8, 64] {
        g.bench_function(format!("cadence{cadence}/chain{CHAIN}"), |b| {
            b.iter_batched(
                || {
                    ConcurrentVersionedMemory::with_config(MemConfig {
                        reclaim_cadence: cadence,
                        ..MemConfig::default()
                    })
                },
                |mem| {
                    for i in 0..CHAIN {
                        let v = VersionId(i);
                        mem.begin(v);
                        mem.write(v, Addr(i % 32), i);
                        mem.try_commit(v).expect("nothing conflicts");
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_primitive_ops,
    bench_pipeline_mixes,
    bench_shard_counts,
    bench_reclaim_cadence,
);
criterion_main!(benches);
