//! Sequential-equivalence property for [`ConcurrentVersionedMemory`]:
//! for ANY thread interleaving of version open/read/write activity,
//! driving the commit frontier in order with squash-and-replay must
//! leave exactly the committed state of running the versions' programs
//! in program order — the same guarantee the paper's versioned memory
//! hardware gives the sequential programming model.
//!
//! Each generated case is a per-version straight-line program whose
//! writes *depend on reads* (`dst = src + delta`), so a stale forwarded
//! or too-early read that escaped conflict detection would corrupt the
//! final state rather than vanish. Every case is run (a) concurrently,
//! one real thread per version, with an in-order commit loop that rolls
//! back and re-executes squashed versions — repeated at shard counts
//! {1, 4, 16, 64} so the configurable shard knob cannot silently break
//! linearized equivalence — and (b) single-threaded in program order
//! through the plain [`VersionedMemory`] — all must land on the model
//! interpreter's state.

use proptest::prelude::*;
use seqpar_specmem::{Addr, CommitError, ConcurrentVersionedMemory, VersionId, VersionedMemory};
use std::collections::HashMap;
use std::sync::Barrier;

/// One memory operation of a version's program.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Tracked read (its value feeds nothing, but its recording must
    /// not cause spurious state either).
    Read { addr: u64 },
    /// Store a constant.
    Put { addr: u64, val: u64 },
    /// `dst = read(src) + delta` — the read-dependent write that makes
    /// stale reads observable in committed state.
    Accum { src: u64, dst: u64, delta: u64 },
}

fn op_strategy(addrs: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..addrs).prop_map(|addr| Op::Read { addr }),
        (0..addrs, 0..5u64).prop_map(|(addr, val)| Op::Put { addr, val }),
        (0..addrs, 0..addrs, 1..4u64).prop_map(|(src, dst, delta)| Op::Accum { src, dst, delta }),
    ]
}

/// Interprets `programs` in program order against a flat map — the
/// sequential semantics both memories must reproduce.
fn interpret(programs: &[Vec<Op>]) -> HashMap<u64, u64> {
    let mut state: HashMap<u64, u64> = HashMap::new();
    for program in programs {
        for op in program {
            match *op {
                Op::Read { .. } => {}
                Op::Put { addr, val } => {
                    state.insert(addr, val);
                }
                Op::Accum { src, dst, delta } => {
                    let v = state.get(&src).copied().unwrap_or(0) + delta;
                    state.insert(dst, v);
                }
            }
        }
    }
    state
}

/// Runs one attempt of version `v`'s program (the version must not be
/// active yet).
fn run_attempt(mem: &ConcurrentVersionedMemory, v: VersionId, program: &[Op]) {
    mem.begin(v);
    for op in program {
        match *op {
            Op::Read { addr } => {
                mem.read(v, Addr(addr));
            }
            Op::Put { addr, val } => {
                mem.write(v, Addr(addr), val);
            }
            Op::Accum { src, dst, delta } => {
                let got = mem.read(v, Addr(src));
                mem.write(v, Addr(dst), got + delta);
            }
        }
    }
}

/// Shard counts the concurrent check is repeated across: the degenerate
/// single-shard lock, the default, and an over-sharded extreme. The
/// shard knob must never change linearized equivalence, only contention.
const SHARD_COUNTS: &[usize] = &[1, 4, 16, 64];

/// Races one thread per version against `mem`, then drives the in-order
/// commit frontier with squash-and-replay and checks the committed
/// state against the model interpreter's. Panics on divergence (the
/// vendored proptest stub reports failures by panic).
fn check_concurrent(
    mem: &ConcurrentVersionedMemory,
    programs: &[Vec<Op>],
    expected: &HashMap<u64, u64>,
) {
    let barrier = Barrier::new(programs.len());
    std::thread::scope(|scope| {
        for (i, program) in programs.iter().enumerate() {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                run_attempt(mem, VersionId(i as u64), program);
            });
        }
    });
    // In-order commit frontier with squash-and-replay, exactly the
    // executor's protocol.
    let mut replays = 0u64;
    for (i, program) in programs.iter().enumerate() {
        let v = VersionId(i as u64);
        loop {
            match mem.try_commit(v) {
                Ok(()) => break,
                Err(CommitError::Squashed { .. }) => {
                    mem.rollback(v);
                    replays += 1;
                    assert!(replays <= 64, "squash/replay failed to converge");
                    run_attempt(mem, v, program);
                }
                Err(e) => panic!("commit of {v} failed: {e}"),
            }
        }
    }
    assert_eq!(mem.active_count(), 0);
    for (addr, val) in expected {
        assert_eq!(
            mem.committed(Addr(*addr)).unwrap_or(0),
            *val,
            "concurrent state diverged at {} (shards {})",
            addr,
            mem.shard_count()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_interleaving_commits_program_order_state(
        programs in proptest::collection::vec(
            proptest::collection::vec(op_strategy(5), 1..8),
            2..6,
        )
    ) {
        let expected = interpret(&programs);

        // (a) Concurrent: one thread per version, racing freely —
        // repeated at every shard count so the configurable knob can't
        // silently break linearized equivalence.
        for &shards in SHARD_COUNTS {
            let mem = ConcurrentVersionedMemory::with_shards(shards);
            check_concurrent(&mem, &programs, &expected);
        }

        // (b) The plain single-threaded memory, driven in program order,
        // agrees (concurrent refactor preserved the semantics).
        let mut plain = VersionedMemory::new();
        for (i, program) in programs.iter().enumerate() {
            let v = VersionId(i as u64);
            plain.begin(v);
            for op in program {
                match *op {
                    Op::Read { addr } => {
                        plain.read(v, Addr(addr));
                    }
                    Op::Put { addr, val } => {
                        plain.write(v, Addr(addr), val);
                    }
                    Op::Accum { src, dst, delta } => {
                        let got = plain.read(v, Addr(src));
                        plain.write(v, Addr(dst), got + delta);
                    }
                }
            }
            prop_assert_eq!(plain.try_commit(v), Ok(()));
        }
        for (addr, val) in &expected {
            prop_assert_eq!(plain.committed(Addr(*addr)).unwrap_or(0), *val);
        }
    }
}
