//! Property-based tests for the versioned memory: against arbitrary
//! operation schedules, the subsystem must preserve the sequential
//! semantics of whatever commits.

use proptest::prelude::*;
use seqpar_specmem::{Addr, VersionId, VersionedMemory};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Read { v: u64, addr: u64 },
    Write { v: u64, addr: u64, val: u64 },
}

fn op_strategy(versions: u64, addrs: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..versions, 0..addrs).prop_map(|(v, addr)| Op::Read { v, addr }),
        (0..versions, 0..addrs, 0..16u64).prop_map(|(v, addr, val)| Op::Write { v, addr, val }),
    ]
}

proptest! {
    /// Issuing operations in version order (each version finishes all its
    /// operations before the next starts) is sequential execution: no
    /// version is ever squashed, and the final committed state matches a
    /// plain interpreter.
    #[test]
    fn in_order_execution_never_squashes(
        ops in proptest::collection::vec((0..8u64, 0..8u64, 0..2u8, 0..16u64), 1..200)
    ) {
        let mut vm = VersionedMemory::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        // Sort by version to make issue order sequential.
        let mut ops = ops;
        ops.sort_by_key(|(v, ..)| *v);
        let versions: Vec<u64> = {
            let mut vs: Vec<u64> = ops.iter().map(|(v, ..)| *v).collect();
            vs.dedup();
            vs
        };
        for v in &versions {
            vm.begin(VersionId(*v));
        }
        for (v, addr, kind, val) in &ops {
            if *kind == 0 {
                let got = vm.read(VersionId(*v), Addr(*addr));
                prop_assert_eq!(got, model.get(addr).copied().unwrap_or(0));
            } else {
                vm.write(VersionId(*v), Addr(*addr), *val);
                model.insert(*addr, *val);
            }
        }
        for v in &versions {
            prop_assert!(!vm.is_squashed(VersionId(*v)));
            prop_assert_eq!(vm.try_commit(VersionId(*v)), Ok(()));
        }
        for (addr, val) in model {
            // Silent stores of the default value are elided, so compare
            // the *observable* value (absent reads as 0).
            prop_assert_eq!(vm.committed(Addr(addr)).unwrap_or(0), val);
        }
        prop_assert_eq!(vm.stats().violations, 0);
    }

    /// Under arbitrary interleavings, versions that survive commit in
    /// order and the committed state equals replaying only the committed
    /// versions' writes sequentially.
    #[test]
    fn committed_state_matches_surviving_writes(
        ops in proptest::collection::vec(op_strategy(6, 6), 1..150)
    ) {
        let mut vm = VersionedMemory::new();
        for v in 0..6u64 {
            vm.begin(VersionId(v));
        }
        // Replay the interleaving, remembering each version's final
        // writes in issue order.
        let mut writes_of: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 6];
        for op in &ops {
            match *op {
                Op::Read { v, addr } => {
                    if !vm.is_squashed(VersionId(v)) {
                        let _ = vm.read(VersionId(v), Addr(addr));
                    }
                }
                Op::Write { v, addr, val } => {
                    if !vm.is_squashed(VersionId(v)) {
                        vm.write(VersionId(v), Addr(addr), val);
                        writes_of[v as usize].push((addr, val));
                    }
                }
            }
        }
        // Commit or roll back in version order.
        let mut model: HashMap<u64, u64> = HashMap::new();
        for v in 0..6u64 {
            if vm.is_squashed(VersionId(v)) {
                vm.rollback(VersionId(v));
            } else if vm.try_commit(VersionId(v)).is_ok() {
                for (addr, val) in &writes_of[v as usize] {
                    model.insert(*addr, *val);
                }
            }
        }
        for addr in 0..6u64 {
            prop_assert_eq!(
                vm.committed(Addr(addr)).unwrap_or(0),
                model.get(&addr).copied().unwrap_or(0),
                "address {}", addr
            );
        }
    }

    /// Silent stores never squash anyone.
    #[test]
    fn silent_stores_are_harmless(
        addrs in proptest::collection::vec(0..4u64, 1..40)
    ) {
        let mut vm = VersionedMemory::new();
        vm.begin(VersionId(0));
        vm.begin(VersionId(1));
        // The later version reads everything first.
        for a in 0..4u64 {
            let _ = vm.read(VersionId(1), Addr(a));
        }
        // The earlier version rewrites the values already there (all 0).
        for a in &addrs {
            let squashed = vm.write(VersionId(0), Addr(*a), 0);
            prop_assert!(squashed.is_empty());
        }
        prop_assert!(!vm.is_squashed(VersionId(1)));
        prop_assert_eq!(vm.stats().silent_stores, addrs.len() as u64);
    }
}
