//! Undo logging for *Commutative* functions.
//!
//! A Commutative function executes in non-transactional memory (its
//! internal dependences must not trigger versioning conflicts), so when a
//! speculative task that called it is squashed, its effects must be
//! unwound explicitly. The paper requires "a rollback function ... to
//! undo the effects of calls to the Commutative function — for example,
//! the rollback function for `malloc` was `free`" (§2.3.2).
//!
//! [`UndoLog`] records such rollback actions per speculative version and
//! replays them in reverse order on squash.

use crate::memory::VersionId;
use std::collections::HashMap;
use std::fmt;

type Action = Box<dyn FnOnce() + Send>;

/// A per-version log of rollback actions.
#[derive(Default)]
pub struct UndoLog {
    actions: HashMap<VersionId, Vec<Action>>,
}

impl fmt::Debug for UndoLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut counts: Vec<(VersionId, usize)> =
            self.actions.iter().map(|(v, a)| (*v, a.len())).collect();
        counts.sort();
        f.debug_struct("UndoLog").field("pending", &counts).finish()
    }
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the rollback action for one commutative call made by
    /// version `v`.
    pub fn record(&mut self, v: VersionId, rollback: impl FnOnce() + Send + 'static) {
        self.actions.entry(v).or_default().push(Box::new(rollback));
    }

    /// Number of pending actions for `v`.
    pub fn pending(&self, v: VersionId) -> usize {
        self.actions.get(&v).map(Vec::len).unwrap_or(0)
    }

    /// Unwinds version `v`: runs its rollback actions newest-first.
    /// Returns how many actions ran.
    pub fn unwind(&mut self, v: VersionId) -> usize {
        let Some(actions) = self.actions.remove(&v) else {
            return 0;
        };
        let n = actions.len();
        for action in actions.into_iter().rev() {
            action();
        }
        n
    }

    /// Discards the actions of a successfully committed version: its
    /// commutative effects are now permanent.
    pub fn retire(&mut self, v: VersionId) {
        self.actions.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn unwind_runs_actions_in_reverse_order() {
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut log = UndoLog::new();
        for i in 0..3 {
            let order = Arc::clone(&order);
            log.record(VersionId(0), move || order.lock().push(i));
        }
        assert_eq!(log.pending(VersionId(0)), 3);
        assert_eq!(log.unwind(VersionId(0)), 3);
        assert_eq!(*order.lock(), vec![2, 1, 0]);
        assert_eq!(log.pending(VersionId(0)), 0);
    }

    #[test]
    fn retire_discards_without_running() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut log = UndoLog::new();
        let r = Arc::clone(&ran);
        log.record(VersionId(1), move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        log.retire(VersionId(1));
        assert_eq!(log.unwind(VersionId(1)), 0);
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn versions_are_independent() {
        let count = Arc::new(AtomicUsize::new(0));
        let mut log = UndoLog::new();
        for v in [VersionId(0), VersionId(1)] {
            let c = Arc::clone(&count);
            log.record(v, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        log.unwind(VersionId(0));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(log.pending(VersionId(1)), 1);
    }

    #[test]
    fn malloc_free_pairing_models_the_paper_example() {
        // A tiny allocator whose undo action is `free`.
        #[derive(Default)]
        struct Arena {
            live: Vec<usize>,
        }
        let arena = Arc::new(parking_lot::Mutex::new(Arena::default()));
        let mut log = UndoLog::new();
        // Speculative task allocates two blocks commutatively.
        for block in [10usize, 11] {
            arena.lock().live.push(block);
            let a = Arc::clone(&arena);
            log.record(VersionId(3), move || {
                a.lock().live.retain(|b| *b != block);
            });
        }
        assert_eq!(arena.lock().live.len(), 2);
        // The task misspeculates: unwinding frees the blocks.
        log.unwind(VersionId(3));
        assert!(arena.lock().live.is_empty());
    }
}
