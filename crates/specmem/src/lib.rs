//! Versioned speculative memory — the TLS-style hardware substrate.
//!
//! The paper's framework assumes "a versioned memory hardware subsystem
//! \[33\], allowing for privatization of data and memory alias
//! speculation" (§3.1), with two refinements called out in §2.1: **silent
//! stores** must not trigger alias misspeculation, and stored values are
//! **eagerly forwarded** to later threads to avoid misspeculation.
//!
//! [`VersionedMemory`] models that subsystem in software:
//!
//! * each speculative task opens a [`VersionId`]-ordered *version* holding
//!   a private write buffer (privatization comes for free: writes are
//!   invisible to earlier versions),
//! * reads search the newest write among versions at or before the reader
//!   (eager forwarding), falling back to committed state,
//! * a non-silent write that invalidates a later version's already-taken
//!   read squashes that version (eager conflict detection),
//! * versions commit strictly in order, publishing their buffers.
//!
//! The *Commutative* annotation's escape hatch (§2.3.2) is modelled by
//! [`undo::UndoLog`]: commutative functions execute in non-transactional
//! memory and register rollback actions (e.g. `free` undoes `malloc`).
//!
//! # Example
//!
//! ```
//! use seqpar_specmem::{Addr, VersionId, VersionedMemory};
//!
//! let mut vm = VersionedMemory::new();
//! let a = Addr(0x10);
//! let (v0, v1) = (VersionId(0), VersionId(1));
//! vm.begin(v0);
//! vm.begin(v1);
//! vm.write(v0, a, 7);
//! // Eager forwarding: the later version sees the uncommitted store.
//! assert_eq!(vm.read(v1, a), 7);
//! vm.try_commit(v0).unwrap();
//! vm.try_commit(v1).unwrap();
//! assert_eq!(vm.committed(a), Some(7));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod concurrent;
pub mod memory;
pub mod predictor;
pub mod stats;
pub mod undo;

pub use concurrent::{ConcurrentVersionedMemory, MemConfig, VersionProbe};
pub use memory::{Addr, CommitError, VersionId, VersionedMemory};
pub use predictor::{Confident, LastValue, Predictor, PredictorStats, Stride};
pub use stats::MemStats;
pub use undo::UndoLog;
