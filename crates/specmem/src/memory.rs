//! The versioned memory model.

use crate::stats::MemStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// An abstract memory address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A speculative version token. Ordering is commit order: lower ids are
/// logically earlier iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(pub u64);

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Why a commit failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The version was squashed by a conflicting earlier write.
    Squashed {
        /// The version whose write invalidated this one.
        by: VersionId,
    },
    /// An earlier version is still active; commits are in order.
    NotOldest,
    /// The version is unknown (never begun or already finished).
    Unknown,
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Squashed { by } => write!(f, "version was squashed by {by}"),
            CommitError::NotOldest => write!(f, "an earlier version has not committed yet"),
            CommitError::Unknown => write!(f, "version is not active"),
        }
    }
}

impl Error for CommitError {}

#[derive(Clone, Debug, Default)]
struct Version {
    writes: BTreeMap<Addr, u64>,
    /// Address -> value observed at first read (for eager invalidation).
    reads: HashMap<Addr, u64>,
    squashed_by: Option<VersionId>,
}

/// A software model of TLS versioned memory.
///
/// See the [crate documentation](crate) for semantics. All operations are
/// `O(active versions)` in the worst case, which is bounded by the core
/// count in the simulator.
#[derive(Clone, Debug, Default)]
pub struct VersionedMemory {
    committed: HashMap<Addr, u64>,
    active: BTreeMap<VersionId, Version>,
    stats: MemStats,
}

impl VersionedMemory {
    /// Creates an empty memory (all addresses read as `0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new speculative version.
    ///
    /// # Panics
    ///
    /// Panics if the version is already active.
    pub fn begin(&mut self, v: VersionId) {
        let prev = self.active.insert(v, Version::default());
        assert!(prev.is_none(), "version {v} is already active");
        self.stats.begins += 1;
    }

    /// Whether `v` is currently active (begun, not yet finished).
    pub fn is_active(&self, v: VersionId) -> bool {
        self.active.contains_key(&v)
    }

    /// Whether `v` has been squashed by a conflicting write.
    pub fn is_squashed(&self, v: VersionId) -> bool {
        self.active
            .get(&v)
            .map(|ver| ver.squashed_by.is_some())
            .unwrap_or(false)
    }

    /// The committed value at `addr`, if any write has ever committed.
    pub fn committed(&self, addr: Addr) -> Option<u64> {
        self.committed.get(&addr).copied()
    }

    /// The value visible to `v` at `addr` and whether it was *forwarded*
    /// — satisfied from another (earlier, uncommitted) active version's
    /// write buffer rather than from `v`'s own buffer or committed
    /// state.
    fn lookup(&self, v: VersionId, addr: Addr) -> (u64, bool) {
        match self
            .active
            .range(..=v)
            .rev()
            .find_map(|(id, ver)| ver.writes.get(&addr).map(|&value| (*id, value)))
        {
            Some((id, value)) => (value, id != v),
            None => (self.committed(addr).unwrap_or(0), false),
        }
    }

    /// The value visible to `v` at `addr`: the newest write among versions
    /// `<= v` (eager forwarding), else the committed value, else `0`.
    fn visible(&self, v: VersionId, addr: Addr) -> u64 {
        self.lookup(v, addr).0
    }

    /// Looks up the value visible to `v` at `addr` **without** recording
    /// it in `v`'s read set: pure lookup, split from the read-tracking
    /// side effect of [`VersionedMemory::read`]. A peeked value is not
    /// validated at commit, so a computation whose *result* depends on
    /// the value must use `read` — `peek` is for instrumentation and
    /// diagnostics only.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not active.
    pub fn peek(&self, v: VersionId, addr: Addr) -> u64 {
        assert!(
            self.active.contains_key(&v),
            "peek from inactive version {v}"
        );
        self.visible(v, addr)
    }

    /// Reads `addr` from version `v`, recording the first observation in
    /// the read set so a later conflicting store can invalidate it
    /// (lookup alone, without the tracking side effect, is
    /// [`VersionedMemory::peek`]).
    ///
    /// The read set also holds the *bets* placed by elided silent stores
    /// (see [`VersionedMemory::write`]), so "observed at `addr`" below
    /// covers both genuinely-read and silently-stored values.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not active.
    pub fn read(&mut self, v: VersionId, addr: Addr) -> u64 {
        assert!(
            self.active.contains_key(&v),
            "read from inactive version {v}"
        );
        let (value, forwarded) = self.lookup(v, addr);
        if forwarded {
            self.stats.forwards += 1;
        }
        let ver = self.active.get_mut(&v).expect("checked active");
        // Reads after the version's own write need no validation; only
        // record the first observation.
        if !ver.writes.contains_key(&addr) {
            ver.reads.entry(addr).or_insert(value);
        }
        self.stats.reads += 1;
        value
    }

    /// Writes `value` to `addr` in version `v`.
    ///
    /// **The silent-store rule** (paper §2.1, citing Lepak & Lipasti): a
    /// store whose value equals what `v` already observes at `addr` is
    /// *elided* — it enters no write buffer and can never squash a later
    /// reader. The elision is a bet that the visible value stays as
    /// observed, so the elided value is recorded into `v`'s **read set**
    /// and validated like a read: if an earlier version later writes a
    /// *different* value to `addr`, `v` is squashed even though it
    /// "only" stored. A store over `v`'s own previous write is never
    /// silent (the buffer entry must be updated).
    ///
    /// A genuine store eagerly invalidates every later active version
    /// that has observed a different value at `addr`, returning the
    /// squashed versions.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not active.
    pub fn write(&mut self, v: VersionId, addr: Addr, value: u64) -> Vec<VersionId> {
        assert!(
            self.active.contains_key(&v),
            "write from inactive version {v}"
        );
        self.stats.writes += 1;
        if self.visible(v, addr) == value && !self.active[&v].writes.contains_key(&addr) {
            self.stats.silent_stores += 1;
            // Eliding the store is a bet that the visible value stays as
            // observed; validate it like a read so a later conflicting
            // write by an earlier version still squashes this version.
            self.active
                .get_mut(&v)
                .expect("checked active")
                .reads
                .entry(addr)
                .or_insert(value);
            return Vec::new();
        }
        self.active
            .get_mut(&v)
            .expect("checked active")
            .writes
            .insert(addr, value);
        // Eager conflict detection against later readers.
        let mut squashed = Vec::new();
        let laters: Vec<VersionId> = self
            .active
            .range((std::ops::Bound::Excluded(v), std::ops::Bound::Unbounded))
            .map(|(id, _)| *id)
            .collect();
        for w in laters {
            let visible_now = self.visible(w, addr);
            let ver = self.active.get_mut(&w).expect("iterating active");
            if ver.squashed_by.is_some() {
                continue;
            }
            if let Some(&observed) = ver.reads.get(&addr) {
                if observed != visible_now {
                    ver.squashed_by = Some(v);
                    squashed.push(w);
                    self.stats.violations += 1;
                }
            }
        }
        squashed
    }

    /// Attempts to commit `v`, publishing its writes.
    ///
    /// # Errors
    ///
    /// * [`CommitError::Unknown`] — `v` is not active;
    /// * [`CommitError::NotOldest`] — an earlier version must commit first;
    /// * [`CommitError::Squashed`] — `v` was invalidated; roll it back
    ///   with [`VersionedMemory::rollback`] and re-execute.
    pub fn try_commit(&mut self, v: VersionId) -> Result<(), CommitError> {
        let Some(ver) = self.active.get(&v) else {
            return Err(CommitError::Unknown);
        };
        if let Some(by) = ver.squashed_by {
            return Err(CommitError::Squashed { by });
        }
        if let Some((&oldest, _)) = self.active.iter().next() {
            if oldest != v {
                return Err(CommitError::NotOldest);
            }
        }
        let ver = self.active.remove(&v).expect("checked active");
        for (addr, value) in ver.writes {
            self.committed.insert(addr, value);
        }
        self.stats.commits += 1;
        Ok(())
    }

    /// Discards version `v` entirely (its writes never happened). Later
    /// versions that observed its forwarded writes are squashed too.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not active.
    pub fn rollback(&mut self, v: VersionId) -> Vec<VersionId> {
        let ver = self
            .active
            .remove(&v)
            .unwrap_or_else(|| panic!("rollback of inactive {v}"));
        self.stats.rollbacks += 1;
        let mut squashed = Vec::new();
        // Any later version that read an address this version wrote may
        // have consumed a forwarded (now-revoked) value: re-validate.
        let laters: Vec<VersionId> = self
            .active
            .range((std::ops::Bound::Excluded(v), std::ops::Bound::Unbounded))
            .map(|(id, _)| *id)
            .collect();
        for w in laters {
            for (addr, _) in ver.writes.iter() {
                let visible_now = self.visible(w, *addr);
                let wv = self.active.get_mut(&w).expect("iterating active");
                if wv.squashed_by.is_some() {
                    break;
                }
                if let Some(&observed) = wv.reads.get(addr) {
                    if observed != visible_now {
                        wv.squashed_by = Some(v);
                        squashed.push(w);
                        self.stats.violations += 1;
                        break;
                    }
                }
            }
        }
        squashed
    }

    /// Writes directly to committed state, bypassing versioning.
    ///
    /// This is the non-transactional path used by *Commutative* functions
    /// (§2.3.2): their internal state lives outside versioned memory and
    /// is unwound by an [`crate::undo::UndoLog`] instead of by squashing.
    /// Returns the previous committed value for undo logging.
    pub fn write_committed(&mut self, addr: Addr, value: u64) -> Option<u64> {
        self.stats.nontransactional_writes += 1;
        self.committed.insert(addr, value)
    }

    /// Removes a committed entry (used by undo actions).
    pub fn erase_committed(&mut self, addr: Addr) {
        self.committed.remove(&addr);
    }

    /// The number of currently active versions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> VersionedMemory {
        VersionedMemory::new()
    }

    #[test]
    fn committed_state_starts_empty_and_reads_zero() {
        let mut m = vm();
        m.begin(VersionId(0));
        assert_eq!(m.committed(Addr(1)), None);
        assert_eq!(m.read(VersionId(0), Addr(1)), 0);
    }

    #[test]
    fn writes_are_private_to_later_versions_only() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        m.write(VersionId(1), Addr(5), 42);
        // Privatization: the earlier version does not see the later write.
        assert_eq!(m.read(VersionId(0), Addr(5)), 0);
        assert_eq!(m.read(VersionId(1), Addr(5)), 42);
    }

    #[test]
    fn eager_forwarding_to_later_versions() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        m.write(VersionId(0), Addr(5), 7);
        assert_eq!(m.read(VersionId(1), Addr(5)), 7);
    }

    #[test]
    fn stale_read_is_squashed_by_earlier_write() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        assert_eq!(m.read(VersionId(1), Addr(5)), 0); // reads before producer writes
        let squashed = m.write(VersionId(0), Addr(5), 9);
        assert_eq!(squashed, vec![VersionId(1)]);
        assert!(m.is_squashed(VersionId(1)));
        assert_eq!(
            m.try_commit(VersionId(1)),
            Err(CommitError::Squashed { by: VersionId(0) })
        );
    }

    #[test]
    fn silent_store_does_not_squash() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        assert_eq!(m.read(VersionId(1), Addr(5)), 0);
        // Writing the value already there is silent: no violation.
        let squashed = m.write(VersionId(0), Addr(5), 0);
        assert!(squashed.is_empty());
        assert!(!m.is_squashed(VersionId(1)));
        assert_eq!(m.stats().silent_stores, 1);
    }

    #[test]
    fn reads_after_own_write_never_invalidate() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        m.write(VersionId(1), Addr(5), 3);
        assert_eq!(m.read(VersionId(1), Addr(5)), 3);
        // Earlier version writes the same address: v1 only ever saw its
        // own value, so no squash.
        let squashed = m.write(VersionId(0), Addr(5), 8);
        assert!(squashed.is_empty());
    }

    #[test]
    fn commits_must_be_in_order() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        assert_eq!(m.try_commit(VersionId(1)), Err(CommitError::NotOldest));
        assert_eq!(m.try_commit(VersionId(0)), Ok(()));
        assert_eq!(m.try_commit(VersionId(1)), Ok(()));
        assert_eq!(m.try_commit(VersionId(2)), Err(CommitError::Unknown));
    }

    #[test]
    fn commit_publishes_writes() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.write(VersionId(0), Addr(1), 11);
        m.try_commit(VersionId(0)).unwrap();
        assert_eq!(m.committed(Addr(1)), Some(11));
        m.begin(VersionId(1));
        assert_eq!(m.read(VersionId(1), Addr(1)), 11);
    }

    #[test]
    fn rollback_revokes_forwarded_values() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        m.write(VersionId(0), Addr(5), 7);
        assert_eq!(m.read(VersionId(1), Addr(5)), 7); // consumed forward
        let squashed = m.rollback(VersionId(0));
        assert_eq!(squashed, vec![VersionId(1)]);
        assert!(m.is_squashed(VersionId(1)));
    }

    #[test]
    fn rollback_leaves_unrelated_readers_alone() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        m.write(VersionId(0), Addr(5), 7);
        assert_eq!(m.read(VersionId(1), Addr(6)), 0); // different address
        let squashed = m.rollback(VersionId(0));
        assert!(squashed.is_empty());
        assert_eq!(m.try_commit(VersionId(1)), Ok(()));
    }

    #[test]
    fn nontransactional_writes_bypass_versioning() {
        let mut m = vm();
        m.begin(VersionId(0));
        let old = m.write_committed(Addr(9), 5);
        assert_eq!(old, None);
        assert_eq!(m.read(VersionId(0), Addr(9)), 5);
        assert_eq!(m.write_committed(Addr(9), 6), Some(5));
        m.erase_committed(Addr(9));
        assert_eq!(m.committed(Addr(9)), None);
    }

    #[test]
    fn stats_count_operations() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        m.read(VersionId(1), Addr(1));
        m.write(VersionId(0), Addr(1), 2);
        let s = m.stats();
        assert_eq!(s.begins, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.violations, 1);
    }

    #[test]
    fn peek_does_not_enter_the_read_set() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(1));
        // An untracked lookup: the later conflicting write must NOT
        // squash, because nothing was recorded to validate.
        assert_eq!(m.peek(VersionId(1), Addr(5)), 0);
        let squashed = m.write(VersionId(0), Addr(5), 9);
        assert!(squashed.is_empty());
        assert!(!m.is_squashed(VersionId(1)));
        // A tracked read of the same address IS validated.
        assert_eq!(m.read(VersionId(1), Addr(5)), 9);
        assert_eq!(m.try_commit(VersionId(0)), Ok(()));
        assert_eq!(m.try_commit(VersionId(1)), Ok(()));
    }

    #[test]
    fn forwards_count_uncommitted_cross_version_reads_only() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.write(VersionId(0), Addr(1), 7);
        assert_eq!(m.read(VersionId(0), Addr(1)), 7); // own buffer: not a forward
        m.begin(VersionId(1));
        assert_eq!(m.read(VersionId(1), Addr(1)), 7); // forwarded
        m.try_commit(VersionId(0)).unwrap();
        m.begin(VersionId(2));
        assert_eq!(m.read(VersionId(2), Addr(1)), 7); // committed: not a forward
        assert_eq!(m.stats().forwards, 1);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_begin_panics() {
        let mut m = vm();
        m.begin(VersionId(0));
        m.begin(VersionId(0));
    }

    #[test]
    fn chain_of_versions_commits_like_sequential_execution() {
        // Three "iterations" each incrementing a counter in order.
        let mut m = vm();
        for i in 0..3 {
            m.begin(VersionId(i));
        }
        for i in 0..3 {
            let v = VersionId(i);
            let cur = m.read(v, Addr(0));
            m.write(v, Addr(0), cur + 1);
        }
        for i in 0..3 {
            m.try_commit(VersionId(i)).unwrap();
        }
        assert_eq!(m.committed(Addr(0)), Some(3));
        // Every read happened after the producing write (in-order issue
        // here), so no violations.
        assert_eq!(m.stats().violations, 0);
    }
}
